"""Snapshot the PR's headline benchmark numbers into BENCH_PR10.json.

Run with:  python scripts/bench_snapshot_pr10.py [--quick] [output.json]

Records, for the crash-consistency stack, the macro and micro cost of
the write-ahead journal (the pay-per-use story: disabled must stay at
seed cost, journaled pays a bounded constant factor), the journal-
disabled bit-for-bit event-stream equivalence, and the kill-anywhere
evidence: a seeded crash suite where every journaled scenario recovers
to an invariant-clean volume while the unjournaled control arm
demonstrably corrupts — plus enough machine information to interpret
the numbers later.  Extends the PR2 (fast paths) / PR3 (obs) / PR6
(record) / PR7 (compiled dispatch) / PR8 (introspection) snapshot
trajectory.
"""

import datetime
import json
import os
import platform
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.dirname(_HERE))
sys.path.insert(0, os.path.join(os.path.dirname(_HERE), "src"))
sys.path.insert(0, _HERE)

from benchmarks import bench_journal_overhead as bench  # noqa: E402


def _event_equivalence():
    """Journal disabled == seed, event for event (single-process run)."""
    from repro.programs.libc import Sys
    from repro.workloads import boot_world

    def _run(**kwargs):
        kernel = boot_world(obs="metrics", **kwargs)
        events = []
        kernel.obs.bus.subscribe(lambda e: events.append(e.to_tuple()))

        def loader(ctx):
            sys_ = Sys(ctx)
            sys_.mkdir("/tmp/d")
            sys_.write_whole("/tmp/d/f", b"data\n")
            sys_.link("/tmp/d/f", "/tmp/d/g")
            sys_.unlink("/tmp/d/f")
            sys_.unlink("/tmp/d/g")
            sys_.rmdir("/tmp/d")
            return 0

        kernel.run_entry(loader)
        return events

    seed = _run()
    disabled = _run(journal=False)
    return {
        "journal_disabled_matches_seed": disabled == seed,
        "events_compared": len(seed),
    }


def _crash_suite(count=100, control=30):
    """The kill-anywhere evidence: journaled recovers, control corrupts."""
    from repro.kernel.faultsite import CRASH_SITES
    from repro.workloads.chaos import run_crash_suite

    journaled = run_crash_suite(count=count, journal=True)
    unjournaled = run_crash_suite(count=control, journal=False)
    crashed = [r for r in journaled if r.outcome == "crashed"]
    return {
        "scenarios": count,
        "crashed": len(crashed),
        "torn_tags_exercised":
            sorted({r.crashed for r in crashed} & set(CRASH_SITES)),
        "journaled_violations":
            sum(1 for r in journaled if not r.passed),
        "control_scenarios": control,
        "control_violations":
            sum(1 for r in unjournaled if not r.passed),
    }


def snapshot(runs=9, micro_calls=2000, suite_count=100):
    """Collect every headline number as one JSON-ready document."""
    doc = {
        "pr": 10,
        "title": "crash-consistent storage: UFS write-ahead journal, "
                 "savepointed transactions, kill-anywhere recovery",
        "generated": datetime.datetime.now().isoformat(timespec="seconds"),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "processor": platform.processor() or "unknown",
        },
        "protocol": {
            "macro_runs": runs,
            "micro_calls": micro_calls,
            "crash_suite_scenarios": suite_count,
            "method": "interleaved rounds, paired per-round slowdowns, "
                      "minimum over rounds (see repro.bench.timing)",
        },
    }
    print("macro: format scenario across %s ..." % (bench.CONFIGS,),
          flush=True)
    doc["macro"] = [
        {"config": config, "seconds": round(seconds, 4),
         "slowdown_vs_disabled_pct": round(pct, 2)}
        for config, seconds, pct in bench.macro_rows(runs)
    ]
    print("micro: one link+unlink pair per config ...", flush=True)
    doc["micro"] = [
        {"config": config, "usec": round(usec, 3)}
        for config, usec in bench.micro_metadata_rows(calls=micro_calls)
    ]
    print("equivalence: journal disabled vs seed event stream ...",
          flush=True)
    doc["equivalence"] = _event_equivalence()
    print("crash suite: %d journaled + control scenarios ..." % suite_count,
          flush=True)
    doc["crash_suite"] = _crash_suite(count=suite_count)
    return doc


def main(argv):
    quick = "--quick" in argv
    paths = [a for a in argv[1:] if not a.startswith("--")]
    out = paths[0] if paths else "BENCH_PR10.json"
    doc = snapshot(runs=3 if quick else 9,
                   micro_calls=500 if quick else 2000,
                   suite_count=50 if quick else 100)
    with open(out, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    print("wrote %s" % out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
