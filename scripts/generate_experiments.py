"""Regenerate EXPERIMENTS.md: run every paper table and record the results.

Run with:  python scripts/generate_experiments.py
"""

import datetime
import io
import os
import platform
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.agents import load_all  # noqa: E402

load_all()

from benchmarks import (  # noqa: E402
    bench_ablation_layers as ablation,
    bench_agent_placement as placement,
    bench_kernel_fastpath as fastpath_bench,
    bench_obs_overhead as obs_bench,
    bench_sec_3_5_3_dfstrace as dfs,
    bench_table_3_1_agent_sizes as t31,
    bench_table_3_2_format as t32,
    bench_table_3_3_make as t33,
    bench_table_3_4_lowlevel as t34,
    bench_table_3_5_syscalls as t35,
)

HEADER = """\
# EXPERIMENTS — paper vs. measured

Reproduction of the evaluation of *Interposition Agents: Transparently
Interposing User Code at the System Interface* (Michael B. Jones,
SOSP '93).  Regenerate this file with
``python scripts/generate_experiments.py``; each table can also be run
individually (``python -m benchmarks.bench_table_3_2_format``) or through
pytest-benchmark (``pytest benchmarks/ --benchmark-only``).

The paper measured a Mach 2.5 / 4.3BSD system on a VAX 6250 and a
25 MHz Intel 486; this reproduction measures a simulated 4.3BSD kernel
in Python (see DESIGN.md).  Absolute numbers therefore differ by
construction; the claims under test are the *shapes* recorded for each
table below.

"""


def _rows_to_md(headers, rows, fmt):
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        out.append("| " + " | ".join(fmt(cell) for cell in row) + " |")
    return "\n".join(out)


def _fmt(cell):
    if isinstance(cell, float):
        return "%.3f" % cell
    return str(cell)


def table_3_1(out):
    out.write("## Table 3-1 — sizes of agents (statements)\n\n")
    out.write("Paper (semicolon counts of C/C++): timex 2467 toolkit + 35 "
              "agent; trace 2467 + 1348; union 3977 + 166.\n\n")
    out.write("Measured (Python AST statements):\n\n")
    rows = t31.rows()
    out.write(_rows_to_md(("agent", "toolkit", "agent-specific", "total"),
                          rows, _fmt))
    by_name = {r[0]: r for r in rows}
    out.write("\n\nShape checks: toolkit dominates timex by %.0fx (paper "
              "70x); trace/timex agent-code ratio %.0fx (paper 39x); union "
              "changes ~70 calls in %d statements (paper 166); the "
              "object-layer toolkit is %.2fx the symbolic-only toolkit "
              "(paper 1.61x).\n\n"
              % (by_name["timex"][1] / by_name["timex"][2],
                 by_name["trace"][2] / by_name["timex"][2],
                 by_name["union"][2],
                 by_name["union"][1] / by_name["timex"][1]))


def table_3_2(out):
    out.write("## Table 3-2 — time to format a dissertation\n\n")
    out.write("Paper (VAX 6250, 716 syscalls, 81.3 s base): timex +0.5%, "
              "trace +2.5%, union +3.5%.\n\nMeasured (interleaved rounds, "
              "slowdown = median of per-round paired ratios; our "
              "manuscript drives ~750 syscalls in a single process):\n\n")
    rows = [(n, "%.3f s" % s, "%+.1f%%" % p) for n, s, p in t32.rows()]
    out.write(_rows_to_md(("agent", "seconds", "slowdown"), rows, _fmt))
    out.write("\n\nShape: every slowdown is in the single-digit band the "
              "paper reports, an order of magnitude below Table 3-3's — "
              "the workload is dominated by formatting CPU, and agent "
              "cost is pay-per-use.  timex is cheapest; trace and union "
              "sit within a couple of points of each other, as in the "
              "paper (its spread across all three agents was only 3 "
              "percentage points).\n\n")


def table_3_3(out):
    out.write("## Table 3-3 — time to make 8 programs\n\n")
    out.write("Paper (25 MHz i486, 64 fork/execve pairs, 16.0 s base): "
              "timex +19%, union +82%, trace +107%.\n\nMeasured (same 64 "
              "fork/execve pairs):\n\n")
    rows = [(n, "%.3f s" % s, "%+.1f%%" % p) for n, s, p in t33.rows()]
    out.write(_rows_to_md(("agent", "seconds", "slowdown"), rows, _fmt))
    out.write("\n\nShape: slowdowns are an order of magnitude larger than "
              "Table 3-2's (heavy system call use); timex is the "
              "cheapest agent, trace the most expensive (two trace-log "
              "writes per traced call), union in between — the paper's "
              "ordering.  Our magnitudes run higher than the paper's "
              "because the simulated kernel's per-call work is small "
              "relative to Python-level interposition.\n\n")


def table_3_4(out):
    out.write("## Table 3-4 — low-level operation costs\n\n")
    out.write("Paper (usec): procedure call 1.22; virtual call 1.94; "
              "intercept+return 30; htg_unix_syscall overhead 37.\n\n"
              "Measured (usec):\n\n")
    rows = [(k, "%.3f" % v) for k, v in t34.measurements().items()]
    out.write(_rows_to_md(("operation", "usec"), rows, _fmt))
    out.write("\n\nShape: plain call <= virtual call << intercept-and-"
              "return ~ htg overhead, the paper's ordering and ratios "
              "(interception costs tens of calls, and the bypass trap "
              "costs about as much as interception).\n\n")


def table_3_5(out):
    out.write("## Table 3-5 — per-system-call costs under time_symbolic\n\n")
    out.write("Paper (usec, no agent / with agent / overhead): getpid "
              "25/165/140; gettimeofday 47/201/154; fstat 128/320/192; "
              "read-1K 370/512/142; stat 892/1056/164; fork+wait+_exit "
              "and execve overheads ~10 ms (roughly doubling).\n\n"
              "Measured (usec):\n\n")
    rows = [(op, "%.1f" % a, "%.1f" % b, "%.1f" % c)
            for op, a, b, c in t35.rows()]
    out.write(_rows_to_md(("operation", "no agent", "with agent",
                           "overhead"), rows, _fmt))
    out.write("\n\nShape: the interception overhead is roughly constant "
              "across the cheap calls, so its relative cost is large for "
              "getpid/gettimeofday and modest for stat; fork and "
              "(especially) the toolkit's reimplemented execve cost "
              "several times the cheap-call overhead.  Our execve factor "
              "is higher than the paper's ~2x because the reimplementation "
              "performs ~40 real downcalls whose relative cost is larger "
              "on this substrate.\n\n")


def section_3_5_3(out):
    out.write("## Section 3.5.3 — DFSTrace: agent vs. monolithic\n\n")
    out.write("Paper: kernel-based 3.0% slowdown vs agent-based 64% on the "
              "AFS benchmarks; 1627 vs 1584 statements; 26 kernel files "
              "modified vs 0.\n\nMeasured (Andrew-style 5-phase "
              "benchmark):\n\n")
    rows = [(m, "%.3f s" % s, "%+.1f%%" % p) for m, s, p in dfs.timing_rows()]
    out.write(_rows_to_md(("mode", "seconds", "slowdown"), rows, _fmt))
    out.write("\n\n")
    size_rows = dfs.size_rows()
    files_rows = dfs.kernel_files_modified()
    out.write(_rows_to_md(("implementation", "statements"), size_rows, _fmt))
    out.write("\n\n")
    out.write(_rows_to_md(("implementation", "kernel files modified"),
                          files_rows, _fmt))
    kernel_records, agent_records = dfs.record_equivalence()
    out.write("\n\nShape: the monolithic implementation's slowdown is far "
              "below the agent's; the two implementations are the same "
              "size ballpark; the agent modifies no kernel files; and the "
              "traces are compatible (agent run captured %d records, "
              "kernel collector %d including the agent's own machinery).\n\n"
              % (len(agent_records), len(kernel_records)))


def ablation_section(out):
    out.write("## Ablation (ours) — layer depth and tracer layer choice\n\n")
    out.write("Not a paper table; quantifies two design choices the paper "
              "argues qualitatively.\n\n**A. Per-call cost by interposition "
              "depth** (pass-through agents at successive layers):\n\n")
    rows = [(label, "%.2f" % g, "%.2f" % s)
            for label, g, s in ablation.layer_cost_rows()]
    out.write(_rows_to_md(("configuration", "getpid usec", "stat usec"),
                          rows, _fmt))
    out.write("\n\n**B. Tracer code size by layer** (the trade behind Table "
              "3-1's trace row — symbolic-layer tracing formats every call, "
              "so its size is proportional to the interface):\n\n")
    out.write(_rows_to_md(("tracer", "statements"), ablation.tracer_rows(),
                          _fmt))
    out.write("\n\nShape: each layer adds a measurable per-call cost over "
              "the bare kernel, and the numeric tracer is several times "
              "smaller than the symbolic one at the price of raw, "
              "uninterpreted output.\n\n")
    out.write("**C. Agent placement** (the paper: its numbers \"are "
              "strongly shaped by agents residing in the address spaces "
              "of their clients\"; the same pass-through agent placed in "
              "a separate agent task reached by message-passing IPC):\n\n")
    rows = [(p, "%.2f" % u) for p, u in placement.placement_rows()]
    out.write(_rows_to_md(("placement", "getpid usec"), rows, _fmt))
    out.write("\n\nShape: the separate-address-space placement costs many "
              "times the in-space one per intercepted call — the cost a "
              "ptrace- or server-based interposition mechanism pays, and "
              "the reason the Mach same-space design matters.\n\n")


def obs_overhead_section(out):
    out.write("## Observability overhead (ours) — the observer's own "
              "pay-per-use\n\n")
    out.write("Not a paper table; the kernel's observability layer "
              "(`repro.obs`: event bus, metrics registry, ktrace ring "
              "buffer) applied the paper's pay-per-use standard to "
              "itself.  Disabled — the default — every instrumentation "
              "site is a single `is None` test; the acceptance bar is "
              "the disabled format-dissertation run staying within 3% "
              "of the pre-observability baseline.\n\n**A. Format "
              "workload** (no agent; interleaved rounds, paired "
              "slowdowns against the disabled configuration):\n\n")
    rows = [(c, "%.3f s" % s, "%+.1f%%" % p)
            for c, s, p in obs_bench.macro_rows()]
    out.write(_rows_to_md(("observability", "seconds", "slowdown"),
                          rows, _fmt))
    out.write("\n\n**B. One uninterposed getpid trap**:\n\n")
    rows = [(c, "%.3f" % u) for c, u in obs_bench.micro_rows()]
    out.write(_rows_to_md(("observability", "usec"), rows, _fmt))
    out.write("\n\n**C. In-band layer attribution** (pass-through "
              "agents; must order as the external ablation table "
              "does):\n\n")
    rows = [(layer, count, "%.2f" % mean)
            for layer, count, mean in obs_bench.attribution_rows()]
    out.write(_rows_to_md(("layer", "calls", "mean handler usec"),
                          rows, _fmt))
    out.write("\n\n**D. Agent attribution on the format workload** "
              "(what the trace and union agents' layers cost, read "
              "from the registry after the run):\n\n")
    rows = [(name, layer, count, "%.2f" % mean, "%.0f" % total)
            for name, layer, count, mean, total
            in obs_bench.agent_attribution_rows()]
    out.write(_rows_to_md(("agent", "layer", "calls", "mean usec",
                           "total usec"), rows, _fmt))
    out.write("\n\nShape: the disabled configuration is indistinguishable "
              "from the Table 3-2 baseline (pay-per-use holds for the "
              "observer); metrics cost single-digit percent on this "
              "CPU-dominated workload and full firehose tracing a few "
              "points more; the in-band layer means reproduce the "
              "ablation's external ordering; and the trace agent's "
              "per-call handler time exceeds union's (it formats and "
              "logs every call), matching Table 3-3's agent ordering.\n\n")


def fastpath_section(out):
    out.write("## Kernel fast paths (ours) — name cache, trap dispatch, "
              "zero-copy\n\n")
    out.write("Not a paper table; PR 2's flag-gated kernel fast paths "
              "(`repro.kernel.fastpath`), measured against the seed code "
              "paths (`off` = every flag disabled, bit-for-bit the seed "
              "kernel — `tests/test_fastpath_equivalence.py` checks "
              "that).  See docs/PERFORMANCE.md for the design.\n\n"
              "**A. Whole workloads per flag configuration** (interleaved "
              "rounds, paired slowdowns vs `off`; negative = faster):\n\n")
    for workload in fastpath_bench.WORKLOADS:
        rows = [(c, "%.3f s" % s, "%+.1f%%" % p)
                for c, s, p in fastpath_bench.macro_rows(workload)]
        out.write("*%s*:\n\n" % workload)
        out.write(_rows_to_md(("config", "seconds", "vs off"), rows, _fmt))
        out.write("\n\n")
    out.write("**B. Per-operation costs** (the operations the fast paths "
              "actually target):\n\n")
    rows = [(op, c, "%.3f" % u) for op, c, u in fastpath_bench.micro_rows()]
    out.write(_rows_to_md(("operation", "config", "usec"), rows, _fmt))
    out.write("\n\n**C. Name cache counters after one format run** "
              "(config `all`):\n\n")
    stats = fastpath_bench.cache_stats_after("format", "all")
    out.write(_rows_to_md(("counter", "value"),
                          sorted(stats.items()), _fmt))
    out.write("\n\nShape: the per-operation wins are real and targeted — "
              "the uninterposed trap and the large read get markedly "
              "cheaper, the deep stat slightly (component lookups were "
              "already dict hits; the cache mostly removes inode-probe "
              "and symlink-test work, and permission checks remain "
              "per-component by design).  Whole-workload effect is "
              "bounded by Amdahl's law: format is ~98% formatter CPU, "
              "and make's wall clock is dominated by process joins, so "
              "single-digit macro deltas are the honest expectation — "
              "the pay-per-use shape (Tables 3-2/3-3, obs overhead) is "
              "unchanged by the fast paths.\n\n")


def lint_section(out):
    from repro.lint import RULES, run_lint

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    result = run_lint([os.path.join(root, "src", "repro", "agents"),
                       os.path.join(root, "src", "repro", "toolkit"),
                       os.path.join(root, "src", "repro", "kernel")])
    summary = result.to_dict()["summary"]
    out.write("## Static protocol analysis (ours) — agentlint self-scan\n\n")
    out.write("Not a paper table; the result of running `repro-lint` "
              "(`repro.lint`, see docs/LINTING.md) over the shipped agents, "
              "toolkit, and kernel.  The linter statically proves the "
              "protocol obligations the paper states qualitatively — "
              "Goal 2's \"use and provide the entire system interface\" "
              "(L001, L007), Section 2.3's invocation, refcount, errno and "
              "signal disciplines (L002-L005), and the layering that "
              "makes agents stack (L006) — without importing or "
              "executing the code under analysis.  The flow rules "
              "(F001-F005) go further: path-sensitive dataflow over "
              "per-function CFGs catches statically the error-path bugs "
              "(inode leak on a failed commit, refcount imbalance on an "
              "early return, unbounded blocking in a handler) that the "
              "fault-injection campaign caught dynamically.\n\n")
    rows = []
    for rule_id in sorted(RULES):
        rows.append((rule_id, RULES[rule_id].summary,
                     summary["by_rule"].get(rule_id, 0),
                     summary["suppressed_by_rule"].get(rule_id, 0)))
    out.write(_rows_to_md(("rule", "checks", "active", "suppressed"),
                          rows, _fmt))
    out.write("\n\nShape: %d file(s), %d active finding(s), %d "
              "suppressed with in-source justifications (ownership-"
              "transfer points in the descriptor refcount machinery and "
              "the separate-space agent's IPC syscall/signal "
              "forwarding).  CI fails on any non-suppressed finding, so "
              "this table staying all-zeros in the `active` column is "
              "enforced, not aspirational.\n\n"
              % (len(result.files), summary["active"],
                 summary["suppressed"]))


def main():
    out = io.StringIO()
    out.write(HEADER)
    out.write("Measured on: Python %s, %s. Generated %s.\n\n"
              % (platform.python_version(), platform.platform(),
                 datetime.date.today().isoformat()))
    print("Table 3-1 ...", flush=True)
    table_3_1(out)
    print("Table 3-2 ...", flush=True)
    table_3_2(out)
    print("Table 3-3 ...", flush=True)
    table_3_3(out)
    print("Table 3-4 ...", flush=True)
    table_3_4(out)
    print("Table 3-5 ...", flush=True)
    table_3_5(out)
    print("Section 3.5.3 ...", flush=True)
    section_3_5_3(out)
    print("Ablation ...", flush=True)
    ablation_section(out)
    print("Observability overhead ...", flush=True)
    obs_overhead_section(out)
    print("Kernel fast paths ...", flush=True)
    fastpath_section(out)
    print("agentlint self-scan ...", flush=True)
    lint_section(out)
    path = "EXPERIMENTS.md"
    if len(sys.argv) > 1:
        path = sys.argv[1]
    with open(path, "w") as f:
        f.write(out.getvalue())
    print("wrote", path)


if __name__ == "__main__":
    main()
