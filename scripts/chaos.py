#!/usr/bin/env python3
"""chaos — run seeded fault-containment scenarios and check invariants.

The CI entry point for the chaos harness (:mod:`repro.workloads.chaos`).
Runs a suite of seeded scenarios — each a workload driven under a
randomly-crashing agent with kernel fault sites armed — and fails
loudly if any machine invariant is violated afterwards::

    PYTHONPATH=src python scripts/chaos.py --count 25

Every scenario is deterministic in its seed, so a failing report line
can be replayed exactly::

    PYTHONPATH=src python scripts/chaos.py --seed 21 \\
        --policy fail-open --mechanism rail --workload files

See docs/ROBUSTNESS.md for what the invariants are and why.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.workloads.chaos import (  # noqa: E402
    CRASH_TAGS,
    MECHANISMS,
    POLICIES,
    WORKLOADS,
    run_crash_scenario,
    run_crash_suite,
    run_scenario,
    run_suite,
)


def _parse_args(argv):
    """The chaos CLI's argument parser (suite mode vs. replay mode)."""
    parser = argparse.ArgumentParser(
        prog="chaos", description=__doc__.splitlines()[0])
    parser.add_argument("--count", type=int, default=25,
                        help="scenarios to run in suite mode (default 25)")
    parser.add_argument("--base-seed", type=int, default=0,
                        help="seed of the first scenario (default 0)")
    parser.add_argument("--seed", type=int, default=None,
                        help="replay a single scenario with this seed")
    parser.add_argument("--policy", choices=POLICIES, default="fail-open",
                        help="guard policy for --seed replay")
    parser.add_argument("--mechanism", choices=MECHANISMS, default="wrapper",
                        help="containment mechanism for --seed replay")
    parser.add_argument("--workload", choices=sorted(WORKLOADS),
                        default="files", help="workload for --seed replay")
    parser.add_argument("--workloads", default="files,pipes,procs",
                        help="comma-separated workload cycle for suite mode")
    parser.add_argument("--agent-rate", type=float, default=0.05,
                        help="per-call agent fault probability")
    parser.add_argument("--site-rate", type=float, default=0.01,
                        help="per-check kernel fault-site probability")
    parser.add_argument("--json", action="store_true",
                        help="emit one JSON report per line")
    parser.add_argument("--crash", action="store_true",
                        help="kill-and-remount mode: halt the machine at "
                             "fault sites, run recovery, walk the invariants")
    parser.add_argument("--tag", choices=CRASH_TAGS, default="ufs.link.torn",
                        help="crash site for --crash --seed replay")
    parser.add_argument("--nth", type=int, default=1,
                        help="which site consultation crashes (--crash replay)")
    parser.add_argument("--no-journal", action="store_true",
                        help="with --crash: boot unjournaled (the control "
                             "arm; exits 0 only when corruption IS observed)")
    return parser.parse_args(argv)


def _record_hint(report, agent_rate, site_rate):
    """A ready-to-paste record command for a failing scenario.

    Every scenario is deterministic in its parameters, so re-running it
    under the recorder captures the same failure into an ``.rrlog`` for
    ``scripts/replay.py replay``/``bisect`` time travel.
    """
    return ("PYTHONPATH=src python scripts/replay.py record"
            " --seed %d --policy %s --mechanism %s --workload %s"
            " --agent-rate %s --site-rate %s"
            % (report.seed, report.policy, report.mechanism, report.workload,
               agent_rate, site_rate))


def _show(report, as_json):
    """Print one scenario report in the chosen format."""
    if as_json:
        print(json.dumps(report.to_dict(), sort_keys=True))
    else:
        print(report)
        for violation in report.violations:
            print("   ", violation)


def _main_crash(args):
    """Kill-and-remount mode: every scenario must recover cleanly.

    With ``--no-journal`` the gate inverts: the unjournaled control arm
    exists to prove torn metadata corrupts a volume, so it *fails* when
    no corruption shows up.
    """
    journal = not args.no_journal
    if args.seed is not None:
        reports = [run_crash_scenario(
            args.seed, workload=args.workload, tag=args.tag,
            nth=args.nth, journal=journal)]
    else:
        reports = run_crash_suite(
            count=args.count, base_seed=args.base_seed, journal=journal)
    failed = 0
    for report in reports:
        _show(report, args.json)
        if not report.passed:
            failed += 1
    crashed = sum(1 for r in reports if r.outcome == "crashed")
    if not args.json:
        print("%d scenario(s), %d crash(es), %d violation(s), journal %s"
              % (len(reports), crashed, failed, "on" if journal else "off"))
    if not journal:
        if failed == 0:
            print("chaos: control arm saw no corruption — the crash sites "
                  "are not biting", file=sys.stderr)
            return 1
        return 0
    return 1 if failed else 0


def main(argv=None):
    """Run the suite (or one replay); exit 1 on any invariant violation."""
    args = _parse_args(argv)
    if args.crash:
        return _main_crash(args)
    if args.seed is not None:
        reports = [run_scenario(
            args.seed, policy=args.policy, mechanism=args.mechanism,
            workload=args.workload, agent_rate=args.agent_rate,
            site_rate=args.site_rate)]
    else:
        workloads = tuple(w for w in args.workloads.split(",") if w)
        for workload in workloads:
            if workload not in WORKLOADS:
                print("chaos: unknown workload %r" % workload, file=sys.stderr)
                return 2
        reports = run_suite(
            count=args.count, base_seed=args.base_seed,
            workloads=workloads, agent_rate=args.agent_rate,
            site_rate=args.site_rate)
    failed = 0
    for report in reports:
        _show(report, args.json)
        if not report.passed:
            failed += 1
            print("    record this failure for time-travel debugging:",
                  file=sys.stderr)
            print("    " + _record_hint(report, args.agent_rate,
                                        args.site_rate), file=sys.stderr)
    faults = sum(r.agent_faults for r in reports)
    fired = sum(sum(r.site_stats.get("fired", {}).values()) for r in reports)
    if not args.json:
        print("%d scenario(s), %d agent fault(s), %d site fault(s), "
              "%d violation(s)" % (len(reports), faults, fired, failed))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
