"""Record a causal span trace of a workload and export it for Perfetto.

Run with:

    PYTHONPATH=src python scripts/trace_timeline.py
    PYTHONPATH=src python scripts/trace_timeline.py --workload format \\
        --agent monitor --out format_trace.json
    PYTHONPATH=src python scripts/trace_timeline.py --agent union+txn --quick

Boots a fresh world with span tracing on (``Kernel(obs="spans")``),
runs the chosen workload — the 3-stage ``sh`` pipeline or the paper's
format-dissertation run — optionally under a stack of agents, then:

* writes the Chrome trace-event JSON (one track per simulated pid, flow
  arrows for fork/exec/pipe/signal causality) to ``--out``; load the
  file in https://ui.perfetto.dev or ``chrome://tracing``;
* validates the export against the trace-event spec before writing;
* prints the critical-path report (longest dependency chain, bucketed
  virtual-clock attribution) and, when agents were interposed, the
  per-layer host-time attribution table.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.kernel.proc import WEXITSTATUS  # noqa: E402
from repro.obs import critical as obs_critical  # noqa: E402
from repro.obs import export as obs_export  # noqa: E402
from repro.workloads import boot_world  # noqa: E402

#: pipeline sizes: enough lines that every stage genuinely blocks
LINES = 3000
LINES_QUICK = 400


def build_agents(spec, workload):
    """Agent instances (bottom-up) from a ``+``-separated spec string."""
    from repro.agents.monitor import MonitorAgent
    from repro.agents.trace import TraceSymbolicSyscall
    from repro.agents.txn import TxnAgent
    from repro.agents.union_dirs import UnionAgent

    agents = []
    for name in spec.split("+"):
        name = name.strip()
        if name in ("", "none"):
            continue
        if name == "monitor":
            agents.append(MonitorAgent())
        elif name == "trace":
            agents.append(TraceSymbolicSyscall("/tmp/timeline.trace"))
        elif name == "union":
            union = UnionAgent()
            if workload == "format":
                union.pset.add_union("/home/mbj/diss",
                                     ["/home/mbj/diss", "/usr/tmp"])
            else:
                union.pset.add_union("/view", ["/data"])
            agents.append(union)
        elif name == "txn":
            agents.append(TxnAgent(scratch_dir="/tmp/timeline.txn",
                                   outcome="commit"))
        else:
            raise SystemExit("unknown agent %r (monitor, trace, union, txn)"
                             % name)
    return agents


def run_stacked(kernel, agents, path, argv):
    """Attach *agents* bottom-up, then exec the client through the top."""

    def loader(ctx):
        for agent in agents:
            agent.attach(ctx)
        agents[-1].exec_client(path, argv, {})

    return kernel.run_entry(loader)


def run_pipeline(world, agents, lines):
    """The 3-stage ``cat | sort | wc`` pipeline, big enough to block."""
    world.mkdir_p("/data")
    world.write_file("/data/corpus", b"interpose all the things\n" * lines)
    source = "/view/corpus" if any(
        type(a).__name__ == "UnionAgent" for a in agents) else "/data/corpus"
    command = "cat %s | sort | wc" % source
    argv = ["sh", "-c", command]
    if agents:
        return run_stacked(world, agents, "/bin/sh", argv), command
    return world.run("/bin/sh", argv), command


def run_format(world, agents):
    """The paper's format-dissertation workload (Table 3-2)."""
    import repro.workloads.format_dissertation as fmt

    fmt.setup(world)
    if not agents:
        return fmt.run(world), "scribe (format dissertation)"
    argv = ["scribe", fmt.MANUSCRIPT, fmt.OUTPUT]
    return (run_stacked(world, agents, "/usr/bin/scribe", argv),
            "scribe (format dissertation)")


def main(argv=None):
    """Parse arguments, run the workload, export and report."""
    parser = argparse.ArgumentParser(
        description="record and export a causal span timeline")
    parser.add_argument("--workload", choices=("pipeline", "format"),
                        default="pipeline")
    parser.add_argument("--agent", default="none",
                        help="'+'-separated stack, bottom-up: "
                             "monitor, trace, union, txn (default none)")
    parser.add_argument("--out", default=None,
                        help="Chrome trace JSON path "
                             "(default trace_<workload>.json)")
    parser.add_argument("--lines", type=int, default=None,
                        help="pipeline corpus size in lines")
    parser.add_argument("--quick", action="store_true",
                        help="smaller corpus for CI smoke runs")
    args = parser.parse_args(argv)

    world = boot_world(obs="spans")
    agents = build_agents(args.agent, args.workload)
    if args.workload == "pipeline":
        lines = args.lines or (LINES_QUICK if args.quick else LINES)
        status, label = run_pipeline(world, agents, lines)
    else:
        status, label = run_format(world, agents)
    code = WEXITSTATUS(status)
    if code != 0:
        raise SystemExit("workload failed with exit code %d" % code)

    assembler = world.obs.spans
    assembler.close_open()
    doc = obs_export.chrome_trace(assembler, workload=label)
    summary = obs_export.validate_chrome_trace(doc)
    out = args.out or ("trace_%s.json" % args.workload)
    with open(out, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)

    counts = assembler.counts()
    print("workload: %s (exit 0)" % label)
    print("spans: %(spans)d closed, %(edges)d causal edges, "
          "%(events)d events" % counts)
    print("chrome trace: %s (%d slices, %d flow arrows, %d tracks; "
          "spec-valid)" % (out, summary["X"], summary["flows"],
                           summary["tracks"]))
    print()
    report = obs_critical.critical_path(assembler)
    print(report.render())
    chain = []
    for seg in report.segments:
        if not chain or chain[-1] != seg.pid:
            chain.append(seg.pid)
    print("pid chain (latest first): %s"
          % " -> ".join(str(p) for p in chain))
    rows = obs_export.layer_rows(world.obs.metrics)
    if rows:
        print()
        print("agent-layer host-time attribution:")
        print("%-24s %8s %10s %12s" % ("layer", "calls", "mean usec",
                                       "total usec"))
        for layer, calls, mean, total in rows:
            print("%-24s %8d %10.1f %12.0f" % (layer, calls, mean, total))
    return 0


if __name__ == "__main__":
    sys.exit(main())
