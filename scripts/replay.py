#!/usr/bin/env python3
"""replay — record, re-execute, and bisect deterministic runs.

The CLI for :mod:`repro.obs.timetravel`.  Four subcommands::

    PYTHONPATH=src python scripts/replay.py record --seed 21 \\
        --policy fail-open --mechanism rail --workload files \\
        -o run21.rrlog
    PYTHONPATH=src python scripts/replay.py replay run21.rrlog
    PYTHONPATH=src python scripts/replay.py bisect run21.rrlog
    PYTHONPATH=src python scripts/replay.py smoke --seeds 5 -o logs/

``record`` runs one seeded chaos scenario with the recorder attached
and writes the nondeterminism log (an ``.rrlog``: one decision per
line, scenario parameters in the header — greppable and diffable).
``replay`` re-executes it and verifies the log is consumed exactly;
exit 1 with the structured divergence on any departure.  ``bisect``
replays once per recorded fault-site firing with that one injection
suppressed, naming the first fault the outcome depends on.  ``smoke``
is the CI job: record + replay the format-dissertation run plus a
cycle of chaos seeds, demanding bit-identical event streams.

See docs/OBSERVABILITY.md ("Record, replay, bisect") for the model.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.obs import rrlog  # noqa: E402
from repro.obs.recorder import ReplayDivergence  # noqa: E402
from repro.obs.timetravel import (  # noqa: E402
    bisect_run,
    compare_runs,
    record_run,
    replay_run,
)
from repro.workloads.chaos import (  # noqa: E402
    MECHANISMS,
    POLICIES,
    WORKLOADS,
)


def _add_scenario_args(parser):
    parser.add_argument("--seed", type=int, default=0,
                        help="scenario seed (default 0)")
    parser.add_argument("--policy", choices=POLICIES, default="fail-open")
    parser.add_argument("--mechanism", choices=MECHANISMS, default="wrapper")
    parser.add_argument("--workload", choices=sorted(WORKLOADS),
                        default="files")
    parser.add_argument("--agent-rate", type=float, default=0.05,
                        help="per-call agent fault probability")
    parser.add_argument("--site-rate", type=float, default=0.01,
                        help="per-check kernel fault-site probability")


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="replay", description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    rec = sub.add_parser("record", help="record one scenario to an .rrlog")
    _add_scenario_args(rec)
    rec.add_argument("-o", "--output", default=None,
                     help="log path (default run<seed>.rrlog)")

    rep = sub.add_parser("replay", help="re-execute an .rrlog faithfully")
    rep.add_argument("log", help="the .rrlog to replay")

    bis = sub.add_parser("bisect", help="find the first fault the "
                                        "recorded outcome depends on")
    bis.add_argument("log", help="the .rrlog to bisect")

    smoke = sub.add_parser("smoke", help="CI: record+replay format run "
                                         "and a chaos seed cycle")
    smoke.add_argument("--seeds", type=int, default=5,
                       help="chaos seeds to cycle (default 5)")
    smoke.add_argument("-o", "--outdir", default=None,
                       help="keep the .rrlog files in this directory")
    return parser.parse_args(argv)


def _report_line(result):
    report = result.report
    return ("seed=%d %s/%s/%s outcome=%s status=%r decisions=%d "
            "invariants=%s"
            % (report.seed, report.policy, report.mechanism, report.workload,
               report.outcome, report.status, len(result.decisions),
               "ok" if report.passed else "VIOLATED"))


def cmd_record(args):
    result = record_run(args.seed, policy=args.policy,
                        mechanism=args.mechanism, workload=args.workload,
                        agent_rate=args.agent_rate, site_rate=args.site_rate)
    path = args.output or ("run%d.rrlog" % args.seed)
    rrlog.write_file(path, result.meta, result.decisions)
    print("recorded", _report_line(result))
    print("wrote %s (%d decision(s))" % (path, len(result.decisions)))
    return 0


def cmd_replay(args):
    meta, decisions = rrlog.read_file(args.log)
    try:
        result = replay_run(meta, decisions)
    except ReplayDivergence as err:
        print("replay DIVERGED:", err, file=sys.stderr)
        return 1
    print("replayed", _report_line(result))
    residual = len(decisions) - result.recorder.position
    if residual:
        print("replay INCOMPLETE: %d decision(s) never consumed" % residual,
              file=sys.stderr)
        return 1
    return 0


def cmd_bisect(args):
    meta, decisions = rrlog.read_file(args.log)
    result = bisect_run(meta, decisions, progress=lambda s: print("  " + s))
    if not result.found:
        print("no recorded fault changes the outcome "
              "(baseline %r)" % (result.baseline,))
        return 0
    print("first outcome-changing fault: #%d %r at decision %d"
          % (result.index, result.decision.value, result.position))
    print("  with it:    %r" % (result.baseline,))
    print("  without it: %r" % (result.flipped,))
    return 0


def _smoke_cases(seeds):
    """The smoke matrix: the format run plus a cycled chaos seed range."""
    cases = [dict(seed=0, workload="format", agent_rate=0.0, site_rate=0.0)]
    for i in range(seeds):
        cases.append(dict(
            seed=i,
            policy=POLICIES[i % len(POLICIES)],
            mechanism=MECHANISMS[i % len(MECHANISMS)],
            workload=("files", "pipes", "procs")[i % 3],
        ))
    return cases


def cmd_smoke(args):
    failures = 0
    for case in _smoke_cases(args.seeds):
        recorded = record_run(**case)
        if args.outdir:
            os.makedirs(args.outdir, exist_ok=True)
            name = "%s-seed%d.rrlog" % (case.get("workload", "files"),
                                        case["seed"])
            rrlog.write_file(os.path.join(args.outdir, name),
                             recorded.meta, recorded.decisions)
        try:
            replayed = replay_run(recorded.meta, recorded.decisions)
            differences = compare_runs(recorded, replayed)
        except ReplayDivergence as err:
            differences = [str(err)]
        verdict = "ok" if not differences else "FAILED"
        print("%-6s %s" % (verdict, _report_line(recorded)))
        for line in differences:
            print("       " + line)
        if differences:
            failures += 1
    return 1 if failures else 0


def main(argv=None):
    args = _parse_args(argv)
    return {"record": cmd_record, "replay": cmd_replay,
            "bisect": cmd_bisect, "smoke": cmd_smoke}[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
