"""Profile a workload on the simulated machine's virtual clock.

Run with:

    PYTHONPATH=src python scripts/profile.py
    PYTHONPATH=src python scripts/profile.py --workload format \\
        --agent monitor+trace --out format.folded
    PYTHONPATH=src python scripts/profile.py --agent union+txn --quick

Boots a fresh world, attaches the simulated-time sampling profiler
(:mod:`repro.obs.profile`), runs the chosen workload — the 3-stage
``sh`` pipeline or the paper's format-dissertation run — optionally
under a stack of interposition agents, then:

* writes Brendan-Gregg collapsed stacks (``user;agent:x;kernel:read
  42``) to ``--out``; feed the file to flamegraph.pl or speedscope;
* prints the per-frame self/total sample table, which shows where the
  machine's virtual time went (agent frames appear when agents were
  interposed);
* with ``--chrome PATH``, writes the samples-per-bucket counter track
  as Chrome trace-event JSON, loadable alongside ``trace_timeline``
  output in https://ui.perfetto.dev.

The profile is a pure function of the run: sample points come from the
virtual clock and the per-pid agent stacks, never host time, so two
runs of the same deterministic workload produce identical files.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.kernel.proc import WEXITSTATUS  # noqa: E402
from repro.obs.profile import enable_profile  # noqa: E402
from repro.workloads import boot_world  # noqa: E402

#: pipeline sizes: enough lines that every stage genuinely blocks
LINES = 3000
LINES_QUICK = 400


def build_agents(spec, workload):
    """Agent instances (bottom-up) from a ``+``-separated spec string."""
    from repro.agents.monitor import MonitorAgent
    from repro.agents.trace import TraceSymbolicSyscall
    from repro.agents.txn import TxnAgent
    from repro.agents.union_dirs import UnionAgent

    agents = []
    for name in spec.split("+"):
        name = name.strip()
        if name in ("", "none"):
            continue
        if name == "monitor":
            agents.append(MonitorAgent())
        elif name == "trace":
            agents.append(TraceSymbolicSyscall("/tmp/profile.trace"))
        elif name == "union":
            union = UnionAgent()
            if workload == "format":
                union.pset.add_union("/home/mbj/diss",
                                     ["/home/mbj/diss", "/usr/tmp"])
            else:
                union.pset.add_union("/view", ["/data"])
            agents.append(union)
        elif name == "txn":
            agents.append(TxnAgent(scratch_dir="/tmp/profile.txn",
                                   outcome="commit"))
        else:
            raise SystemExit("unknown agent %r (monitor, trace, union, txn)"
                             % name)
    return agents


def run_stacked(kernel, agents, path, argv):
    """Attach *agents* bottom-up, then exec the client through the top."""

    def loader(ctx):
        for agent in agents:
            agent.attach(ctx)
        agents[-1].exec_client(path, argv, {})

    return kernel.run_entry(loader)


def run_pipeline(world, agents, lines):
    """The 3-stage ``cat | sort | wc`` pipeline, big enough to block."""
    world.mkdir_p("/data")
    world.write_file("/data/corpus", b"interpose all the things\n" * lines)
    source = "/view/corpus" if any(
        type(a).__name__ == "UnionAgent" for a in agents) else "/data/corpus"
    command = "cat %s | sort | wc" % source
    argv = ["sh", "-c", command]
    if agents:
        return run_stacked(world, agents, "/bin/sh", argv), command
    return world.run("/bin/sh", argv), command


def run_format(world, agents):
    """The paper's format-dissertation workload (Table 3-2)."""
    import repro.workloads.format_dissertation as fmt

    fmt.setup(world)
    if not agents:
        return fmt.run(world), "scribe (format dissertation)"
    argv = ["scribe", fmt.MANUSCRIPT, fmt.OUTPUT]
    return (run_stacked(world, agents, "/usr/bin/scribe", argv),
            "scribe (format dissertation)")


def render_table(prof, limit=20):
    """The per-frame self/total table as printable lines."""
    total = prof.sample_total or 1
    lines = ["%7s %7s %6s  %s" % ("SELF", "TOTAL", "TOT%", "FRAME")]
    for frame, self_count, total_count in prof.table()[:limit]:
        lines.append("%7d %7d %5.1f%%  %s" % (
            self_count, total_count, 100.0 * total_count / total, frame))
    return lines


def main(argv=None):
    """Parse arguments, profile the workload, export and report."""
    parser = argparse.ArgumentParser(
        description="sample a workload on the virtual clock")
    parser.add_argument("--workload", choices=("pipeline", "format"),
                        default="pipeline")
    parser.add_argument("--agent", default="none",
                        help="'+'-separated stack, bottom-up: "
                             "monitor, trace, union, txn (default none)")
    parser.add_argument("--interval", type=int, default=1000,
                        help="virtual usec between samples (default 1000)")
    parser.add_argument("--out", default=None,
                        help="collapsed-stack output path "
                             "(default profile_<workload>.folded)")
    parser.add_argument("--chrome", default=None,
                        help="also write the counter track as Chrome "
                             "trace JSON to this path")
    parser.add_argument("--per-pid", action="store_true",
                        help="prefix stacks with pid<N> instead of "
                             "folding processes together")
    parser.add_argument("--lines", type=int, default=None,
                        help="pipeline corpus size in lines")
    parser.add_argument("--quick", action="store_true",
                        help="smaller corpus for CI smoke runs")
    args = parser.parse_args(argv)

    world = boot_world()
    prof = enable_profile(world, interval_usec=args.interval)
    agents = build_agents(args.agent, args.workload)
    if args.workload == "pipeline":
        lines = args.lines or (LINES_QUICK if args.quick else LINES)
        status, label = run_pipeline(world, agents, lines)
    else:
        status, label = run_format(world, agents)
    code = WEXITSTATUS(status)
    if code != 0:
        raise SystemExit("workload failed with exit code %d" % code)

    folded = prof.collapsed(per_pid=args.per_pid)
    out = args.out or ("profile_%s.folded" % args.workload)
    with open(out, "w") as fh:
        fh.write("\n".join(folded) + "\n")

    print("workload: %s (exit 0)" % label)
    print("samples: %d over %d stacks (interval %d virtual usec)"
          % (prof.sample_total, len(prof.samples), prof.interval_usec))
    print("collapsed stacks: %s (%d lines; flamegraph.pl-compatible)"
          % (out, len(folded)))
    if args.chrome:
        doc = {"traceEvents": prof.chrome_counters(),
               "displayTimeUnit": "ms",
               "otherData": {"workload": label}}
        with open(args.chrome, "w") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
        print("chrome counter track: %s (%d buckets)"
              % (args.chrome, len(prof.timeline)))
    print()
    for line in render_table(prof):
        print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
