"""Tests for the transactional agent (paper Section 1.4)."""

import pytest

from repro.agents.txn import TxnAgent
from repro.kernel.proc import WEXITSTATUS
from repro.toolkit import run_under_agent


def run_txn(world, command, outcome="commit", scratch="/tmp/txn.s"):
    agent = TxnAgent(scratch_dir=scratch, outcome=outcome)
    status = run_under_agent(world, agent, "/bin/sh", ["sh", "-c", command])
    return agent, status, world.console.take_output().decode()


def test_client_sees_its_own_writes(world):
    world.write_file("/home/mbj/f", "before")
    agent, status, out = run_txn(
        world, "echo after > /home/mbj/f; cat /home/mbj/f", outcome="abort"
    )
    assert out == "after\n"


def test_abort_discards_everything(world):
    world.write_file("/home/mbj/keep", "original")
    agent, status, out = run_txn(
        world,
        "echo changed > /home/mbj/keep; echo new > /home/mbj/created; rm /etc/passwd",
        outcome="abort",
    )
    assert world.read_file("/home/mbj/keep") == b"original"
    assert not world.lookup_host("/home/mbj").contains("created")
    assert world.read_file("/etc/passwd")


def test_commit_applies_everything(world):
    world.write_file("/home/mbj/live", "v0")
    world.write_file("/home/mbj/doomed", "x")
    agent, status, out = run_txn(
        world,
        "echo v1 > /home/mbj/live; rm /home/mbj/doomed; mkdir /home/mbj/fresh; echo in > /home/mbj/fresh/f",
        outcome="commit",
    )
    assert world.read_file("/home/mbj/live") == b"v1\n"
    assert not world.lookup_host("/home/mbj").contains("doomed")
    assert world.read_file("/home/mbj/fresh/f") == b"in\n"


def test_removed_file_invisible_within_txn(world):
    world.write_file("/home/mbj/gone", "x")
    agent, status, out = run_txn(
        world,
        "rm /home/mbj/gone; cat /home/mbj/gone; true",
        outcome="abort",
    )
    assert "ENOENT" in out
    assert world.read_file("/home/mbj/gone") == b"x"


def test_listing_reflects_overlay(world):
    world.write_file("/home/mbj/old1", "")
    world.write_file("/home/mbj/old2", "")
    agent, status, out = run_txn(
        world,
        "rm /home/mbj/old1; echo x > /home/mbj/new1; ls /home/mbj",
        outcome="abort",
    )
    names = out.split()
    assert "old1" not in names
    assert "new1" in names
    assert "old2" in names


def test_recreate_after_remove(world):
    world.write_file("/home/mbj/cycle", "first")
    agent, status, out = run_txn(
        world,
        "rm /home/mbj/cycle; echo second > /home/mbj/cycle; cat /home/mbj/cycle",
        outcome="commit",
    )
    assert "second" in out
    assert world.read_file("/home/mbj/cycle") == b"second\n"


def test_append_seeds_from_original(world):
    world.write_file("/home/mbj/log", "line1\n")
    agent, status, out = run_txn(
        world,
        "echo line2 >> /home/mbj/log; cat /home/mbj/log",
        outcome="abort",
    )
    assert out == "line1\nline2\n"
    assert world.read_file("/home/mbj/log") == b"line1\n"


def test_rename_within_txn(world):
    world.write_file("/home/mbj/a", "payload")
    agent, status, out = run_txn(
        world,
        "mv /home/mbj/a /home/mbj/b; cat /home/mbj/b; true",
        outcome="commit",
    )
    assert "payload" in out
    assert world.read_file("/home/mbj/b") == b"payload"
    assert not world.lookup_host("/home/mbj").contains("a")


def test_ask_mode_reads_terminal(world):
    world.write_file("/home/mbj/q", "old")
    world.console.feed("y\n")
    agent, status, out = run_txn(
        world, "echo new > /home/mbj/q", outcome="ask"
    )
    assert "commit changes?" in out
    assert world.read_file("/home/mbj/q") == b"new\n"


def test_ask_mode_abort_on_n(world):
    world.write_file("/home/mbj/q2", "old")
    world.console.feed("n\n")
    agent, status, out = run_txn(
        world, "echo new > /home/mbj/q2", outcome="ask"
    )
    assert world.read_file("/home/mbj/q2") == b"old"


def test_nested_transactions(world):
    """A transactional invocation inside another: the inner abort rolls
    back within the outer, which then commits its own changes."""
    world.write_file("/home/mbj/n", "v0\n")
    agent, status, out = run_txn(
        world,
        "echo v1 > /home/mbj/n;"
        "agentrun txn abort /tmp/inner -- sh -c"
        " 'echo v2 > /home/mbj/n; cat /home/mbj/n';"
        "cat /home/mbj/n",
        outcome="commit",
        scratch="/tmp/outer",
    )
    lines = out.split()
    assert lines == ["v2", "v1"]
    assert world.read_file("/home/mbj/n") == b"v1\n"


def test_nested_commit_flows_into_outer(world):
    world.write_file("/home/mbj/m", "v0\n")
    agent, status, out = run_txn(
        world,
        "agentrun txn commit /tmp/inner2 -- sh -c 'echo inner > /home/mbj/m';"
        "cat /home/mbj/m",
        outcome="abort",
        scratch="/tmp/outer2",
    )
    assert "inner" in out  # the inner commit is visible inside the outer
    assert world.read_file("/home/mbj/m") == b"v0\n"  # outer aborted it all


def test_truncate_recorded(world):
    world.write_file("/home/mbj/t", "0123456789")

    def truncator(sys, argv, envp):
        sys.truncate("/home/mbj/t", 4)
        sys.print_out(sys.read_whole("/home/mbj/t").decode())
        return 0

    from tests.conftest import install_program

    install_program(world, "truncator", truncator)
    agent = TxnAgent(scratch_dir="/tmp/txn.t", outcome="abort")
    status = run_under_agent(world, agent, "/bin/truncator", ["truncator"])
    assert world.console.take_output().decode() == "0123"
    assert world.read_file("/home/mbj/t") == b"0123456789"


def test_scratch_cleaned_after_commit(world):
    agent, status, out = run_txn(
        world, "echo data > /home/mbj/c", outcome="commit",
        scratch="/tmp/txnclean",
    )
    scratch = world.lookup_host("/tmp/txnclean")
    leftovers = [n for n in scratch.entries if n.startswith("shadow")]
    assert leftovers == []
