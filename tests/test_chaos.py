"""The chaos harness: the acceptance instrument, tested itself.

Scenarios must be deterministic in their seed, the invariant checker
must actually catch corruption (proven by breaking a world by hand),
and a representative suite must pass — agent faults and kernel faults
together never violate machine invariants under any guard policy.
"""

import pytest

from repro.agents.chaos import ChaosAgent, ChaosFault
from repro.kernel.proc import WEXITSTATUS
from repro.toolkit import run_under_agent
from repro.workloads import boot_world
from repro.workloads.chaos import (
    MECHANISMS,
    POLICIES,
    WORKLOADS,
    check_invariants,
    run_scenario,
    run_suite,
)


# -- the chaos agent ---------------------------------------------------------


def test_chaos_agent_fault_stream_replays_from_the_seed():
    def stream(seed):
        agent = ChaosAgent(seed=seed, rate=0.3)
        fired = []
        for i in range(300):
            try:
                agent._misbehave("call")
            except ChaosFault:
                fired.append(i)
        return fired

    assert stream(5) == stream(5)
    assert stream(5) != stream(6)


def test_chaos_agent_at_rate_zero_is_a_pass_through():
    kernel = boot_world()
    agent = ChaosAgent(seed=1, rate=0.0)
    status = run_under_agent(kernel, agent, "/bin/echo", ["echo", "calm"])
    assert WEXITSTATUS(status) == 0
    assert b"calm" in kernel.console.take_output()
    assert agent.faults_raised == 0


def test_chaos_agent_loader_args():
    agent = ChaosAgent()
    agent.register_interest_many = lambda numbers: None
    agent.register_signal_interest = lambda: None
    agent.init(["seed=42", "rate=0.5"])
    assert agent.seed == 42
    assert agent.rate == 0.5


# -- the invariant checker ---------------------------------------------------


def test_invariants_hold_on_a_clean_world():
    kernel = boot_world()
    assert WEXITSTATUS(kernel.run("/bin/echo", ["echo", "x"])) == 0
    kernel.console.take_output()
    assert check_invariants(kernel) == []


def test_invariants_catch_an_orphaned_inode():
    kernel = boot_world()
    fs = kernel.rootfs
    node = fs.create_file(0o644, kernel._host.cred)  # never linked
    violations = check_invariants(kernel)
    assert any("orphaned ino %d" % node.ino in v for v in violations)


def test_invariants_catch_a_bad_link_count():
    kernel = boot_world()
    kernel.write_file("/tmp/f.txt", "x")
    kernel.lookup_host("/tmp/f.txt").nlink += 1
    violations = check_invariants(kernel)
    assert any("nlink 2 but 1 reachable entry" in v for v in violations)


def test_invariants_catch_a_dangling_directory_entry():
    kernel = boot_world()
    kernel.write_file("/tmp/f.txt", "x")
    node = kernel.lookup_host("/tmp/f.txt")
    kernel.rootfs._inodes.pop(node.ino)
    violations = check_invariants(kernel)
    assert any("dangling entry" in v for v in violations)


def test_invariants_catch_a_leaked_open_count():
    kernel = boot_world()
    kernel.write_file("/tmp/f.txt", "x")
    kernel.lookup_host("/tmp/f.txt").open_count += 1
    violations = check_invariants(kernel)
    assert any("open_count 1 after quiesce" in v for v in violations)


def test_invariants_catch_a_host_panic():
    kernel = boot_world()

    def main(ctx):
        raise RuntimeError("simulated program bug")

    with pytest.raises(Exception):
        kernel.run_entry(main)
    violations = check_invariants(kernel)
    assert any("host panic" in v for v in violations)


# -- scenarios ---------------------------------------------------------------


def test_scenario_reports_are_deterministic_in_the_seed():
    first = run_scenario(11, policy="fail-open", mechanism="wrapper",
                         workload="files")
    second = run_scenario(11, policy="fail-open", mechanism="wrapper",
                          workload="files")
    assert first.passed and second.passed
    assert first.agent_faults == second.agent_faults
    assert first.site_stats["fired"] == second.site_stats["fired"]
    assert first.outcome == second.outcome


def test_scenario_report_shape():
    report = run_scenario(3, policy="quarantine", mechanism="rail",
                          workload="pipes")
    doc = report.to_dict()
    assert sorted(doc) == [
        "agent_faults", "faultsites", "guard", "mechanism", "outcome",
        "passed", "policy", "seed", "status", "violations", "workload"]
    assert doc["policy"] == "quarantine"
    assert doc["mechanism"] == "rail"
    assert "ChaosReport" in repr(report)
    with pytest.raises(ValueError):
        run_scenario(0, workload="nonsense")
    with pytest.raises(ValueError):
        run_scenario(0, mechanism="telepathy")


def test_fail_stop_scenarios_leave_the_machine_clean():
    # High agent fault rate + fail-stop: clients die mid-workload, yet
    # every invariant holds afterwards (the orphan-join and creat-unwind
    # regressions live exactly here).
    for seed in range(4):
        report = run_scenario(seed, policy="fail-stop", mechanism="rail",
                              workload="procs", agent_rate=0.3)
        assert report.passed, report.violations
        assert report.outcome in ("exit", "killed", "error")


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_every_policy_and_mechanism_passes_a_scenario(policy, mechanism):
    report = run_scenario(17, policy=policy, mechanism=mechanism,
                          workload="files", agent_rate=0.2)
    assert report.passed, report.violations


def test_suite_cycles_the_axes_and_passes():
    reports = run_suite(count=9)
    assert len(reports) == 9
    assert {r.policy for r in reports} == set(POLICIES)
    assert {r.mechanism for r in reports} == set(MECHANISMS)
    assert [r.seed for r in reports] == list(range(9))
    failures = [r for r in reports if not r.passed]
    assert failures == [], [r.violations for r in failures]


def test_format_workload_survives_chaos():
    report = run_scenario(2, policy="fail-open", mechanism="wrapper",
                          workload="format", agent_rate=0.02)
    assert report.passed, report.violations
    assert "format" in WORKLOADS
