"""Tests for the observability metrics registry and histograms."""

from repro.obs.metrics import BUCKET_BOUNDS, Histogram, MetricsRegistry


def test_histogram_observations():
    hist = Histogram()
    for usec in (1, 2, 3, 100, 5000):
        hist.observe(usec)
    assert hist.count == 5
    assert hist.total == 5106
    assert hist.min == 1
    assert hist.max == 5000
    assert abs(hist.mean() - 5106 / 5) < 1e-9


def test_histogram_empty_mean_is_zero():
    assert Histogram().mean() == 0.0


def test_histogram_buckets_are_powers_of_two():
    hist = Histogram()
    hist.observe(1)      # le_1
    hist.observe(2)      # le_2
    hist.observe(3)      # le_4
    hist.observe(2 ** 25)  # beyond the last bound: overflow
    snap = hist.snapshot()
    assert snap["buckets"]["le_1"] == 1
    assert snap["buckets"]["le_2"] == 1
    assert snap["buckets"]["le_4"] == 1
    assert snap["buckets"]["overflow"] == 1
    assert snap["count"] == 4


def test_histogram_merged():
    a, b = Histogram(), Histogram()
    a.observe(1)
    a.observe(10)
    b.observe(100)
    merged = a.merged(b)
    assert merged.count == 3
    assert merged.min == 1
    assert merged.max == 100
    assert merged.total == 111
    # The originals are untouched.
    assert a.count == 2 and b.count == 1


def test_registry_counters():
    reg = MetricsRegistry()
    reg.inc(("trap", "open"))
    reg.inc(("trap", "open"), 2)
    reg.inc(("trap", "read"))
    assert reg.counter(("trap", "open")) == 3
    assert reg.counter(("trap", "read")) == 1
    assert reg.counter(("trap", "close")) == 0
    assert reg.counter(("trap", "close"), default=-1) == -1


def test_registry_group_unwraps_single_label():
    reg = MetricsRegistry()
    reg.inc(("trap", "open"), 3)
    reg.inc(("trap", "read"), 1)
    reg.inc(("trap.error", "open", "ENOENT"), 2)
    assert reg.group("trap") == {"open": 3, "read": 1}
    # Two remaining labels stay a tuple.
    assert reg.group("trap.error") == {("open", "ENOENT"): 2}


def test_registry_histogram_group_label_len():
    reg = MetricsRegistry()
    reg.observe(("layer.usec", "symbolic"), 10)
    reg.observe(("layer.usec", "symbolic", "open"), 10)
    all_keys = reg.histogram_group("layer.usec")
    assert set(all_keys) == {"symbolic", ("symbolic", "open")}
    only_layer = reg.histogram_group("layer.usec", label_len=1)
    assert set(only_layer) == {"symbolic"}


def test_registry_snapshot_is_jsonable():
    import json

    reg = MetricsRegistry()
    reg.inc(("trap", "open"))
    reg.observe(("trap.vusec", "open"), 100)
    snap = reg.snapshot()
    assert snap["counters"] == {"trap|open": 1}
    assert snap["histograms"]["trap.vusec|open"]["count"] == 1
    json.dumps(snap)  # must not raise


def test_registry_clear():
    reg = MetricsRegistry()
    reg.inc(("trap", "open"))
    reg.observe(("trap.vusec", "open"), 1)
    reg.clear()
    assert reg.snapshot() == {"counters": {}, "histograms": {}}


def test_bucket_bounds_shape():
    assert BUCKET_BOUNDS[0] == 1
    assert all(b == 2 * a for a, b in zip(BUCKET_BOUNDS, BUCKET_BOUNDS[1:]))
