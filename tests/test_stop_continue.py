"""Tests for job-control style stop/continue signal semantics."""

import pytest

from repro.kernel import signals as sig
from repro.kernel.proc import WEXITSTATUS, WIFSIGNALED, WTERMSIG
from repro.kernel.sysent import number_of

NR = {n: number_of(n) for n in (
    "fork", "wait", "kill", "pipe", "read", "write", "close", "getpid",
    "sigvec", "select",
)}


def test_sigstop_suspends_until_sigcont(kernel):
    import time

    def main(ctx):
        rfd, wfd = ctx.trap(NR["pipe"])
        stop_rfd, stop_wfd = ctx.trap(NR["pipe"])

        def child(cctx):
            cctx.trap(NR["close"], rfd)
            cctx.trap(NR["close"], stop_wfd)
            # Stop ourselves; SIGCONT resumes execution right here.
            cctx.trap(NR["kill"], cctx.proc.pid, sig.SIGSTOP)
            cctx.trap(NR["write"], wfd, b"resumed")
            cctx.trap(NR["close"], wfd)
            return 0

        pid, _ = ctx.trap(NR["fork"], child)
        ctx.trap(NR["close"], wfd)
        ctx.trap(NR["close"], stop_rfd)
        # Wait (host-side) until the child has actually suspended.
        child_proc = ctx.kernel._procs[pid]
        deadline = time.time() + 10
        while not child_proc.suspended:
            assert time.time() < deadline, "child never stopped"
            time.sleep(0.005)
        ctx.trap(NR["kill"], pid, sig.SIGCONT)
        assert ctx.trap(NR["read"], rfd, 10) == b"resumed"
        ctx.trap(NR["wait"])
        return 0

    assert WEXITSTATUS(kernel.run_entry(main)) == 0


def test_sigkill_terminates_stopped_process(kernel):
    def main(ctx):
        def child(cctx):
            cctx.trap(NR["kill"], cctx.proc.pid, sig.SIGSTOP)
            return 0

        pid, _ = ctx.trap(NR["fork"], child)
        # Give the child a chance to stop itself, then kill it outright.
        ctx.trap(NR["select"], 1000)
        ctx.trap(NR["kill"], pid, sig.SIGKILL)
        _, status = ctx.trap(NR["wait"])
        assert WIFSIGNALED(status)
        assert WTERMSIG(status) == sig.SIGKILL
        return 0

    assert WEXITSTATUS(kernel.run_entry(main)) == 0


def test_sigcont_default_is_resume_not_terminate(kernel):
    def main(ctx):
        ctx.trap(NR["kill"], ctx.proc.pid, sig.SIGCONT)
        return 0  # still alive

    assert WEXITSTATUS(kernel.run_entry(main)) == 0


def test_sigtstp_catchable(kernel):
    def main(ctx):
        caught = []
        ctx.trap(NR["sigvec"], sig.SIGTSTP, lambda s: caught.append(s), 0)
        ctx.trap(NR["kill"], ctx.trap(NR["getpid"]), sig.SIGTSTP)
        assert caught == [sig.SIGTSTP]  # handled, not stopped
        return 0

    assert WEXITSTATUS(kernel.run_entry(main)) == 0


def test_cont_clears_pending_stop(kernel):
    """Posting SIGCONT discards a pending (blocked) stop signal."""
    from repro.kernel.proc import Process

    def main(ctx):
        proc = ctx.proc
        proc.post(sig.SIGTSTP)
        proc.post(sig.SIGCONT)
        assert not proc.pending & sig.sigmask(sig.SIGTSTP)
        return 0

    assert WEXITSTATUS(kernel.run_entry(main)) == 0
