"""Tests for the fault-injection agent."""

import pytest

from repro.agents.faults import FaultAgent, FaultRule
from repro.kernel.errno import EIO, ENOSPC, SyscallError
from repro.kernel.proc import WEXITSTATUS
from repro.toolkit import run_under_agent


def test_rule_validates_call_name():
    with pytest.raises(ValueError):
        FaultRule("no_such_call", EIO)


def test_always_schedule(world):
    agent = FaultAgent()
    agent.add_rule("open", ENOSPC, "always", path_prefix="/tmp")
    status = run_under_agent(
        world, agent, "/bin/sh", ["sh", "-c", "echo x > /tmp/f || echo denied"]
    )
    assert WEXITSTATUS(status) == 0
    assert "denied" in world.console.take_output().decode()
    assert not world.lookup_host("/tmp").contains("f")


def test_once_schedule(world):
    agent = FaultAgent()
    rule = agent.add_rule("open", EIO, "once", path_prefix="/tmp/flaky")
    status = run_under_agent(
        world, agent, "/bin/sh",
        ["sh", "-c",
         "echo a > /tmp/flaky || echo first-failed; echo b > /tmp/flaky && echo second-worked"],
    )
    out = world.console.take_output().decode()
    assert "first-failed" in out
    assert "second-worked" in out
    assert rule.injected == 1


def test_after_schedule_models_disk_full(world):
    agent = FaultAgent()
    agent.add_rule("write", ENOSPC, ("after", 2))

    from repro.programs.libc import O_CREAT, O_WRONLY, Sys

    outcomes = []

    def loader(ctx):
        agent.attach(ctx)
        sys = Sys(ctx)
        fd = sys.open("/tmp/full", O_WRONLY | O_CREAT, 0o644)
        for _ in range(4):
            try:
                sys.write(fd, b"block")
                outcomes.append("ok")
            except SyscallError as err:
                outcomes.append(err.errno)
        return 0

    world.run_entry(loader)
    assert outcomes == ["ok", "ok", ENOSPC, ENOSPC]


def test_every_schedule(world):
    agent = FaultAgent()
    agent.add_rule("getpid", EIO, ("every", 3))
    from repro.kernel.sysent import number_of

    results = []

    def loader(ctx):
        agent.attach(ctx)
        for _ in range(6):
            try:
                ctx.trap(number_of("getpid"))
                results.append("ok")
            except SyscallError:
                results.append("fail")
        return 0

    world.run_entry(loader)
    assert results == ["ok", "ok", "fail", "ok", "ok", "fail"]


def test_path_prefix_narrows_injection(world):
    agent = FaultAgent()
    agent.add_rule("open", EIO, "always", path_prefix="/tmp/bad")
    status = run_under_agent(
        world, agent, "/bin/sh",
        ["sh", "-c", "echo fine > /tmp/good && cat /tmp/good"],
    )
    assert WEXITSTATUS(status) == 0
    assert "fine" in world.console.take_output().decode()


def test_loader_spec(world):
    status = world.run(
        "/bin/sh",
        ["sh", "-c", "agentrun faults unlink=13 -- sh -c 'rm /etc/passwd; true'"],
    )
    assert WEXITSTATUS(status) == 0
    assert world.read_file("/etc/passwd")  # unlink was made to fail


def test_report_counts(world):
    agent = FaultAgent()
    rule = agent.add_rule("stat", EIO, ("every", 2))
    run_under_agent(
        world, agent, "/bin/sh", ["sh", "-c", "true; true"]
    )
    report = dict(
        (name, (seen, injected))
        for name, _, seen, injected in agent.report()
    )
    assert "stat" in report
    seen, injected = report["stat"]
    assert injected == seen // 2
