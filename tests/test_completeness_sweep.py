"""Completeness sweep (paper Goal 2, Section 3.2).

"Agents can both use and provide the entire system interface."  For
every implemented BSD system call, drive one representative invocation
twice — bare, and under the pass-through agent — and require identical
observable results.  If completeness did not hold there would be two
classes of programs: those agents can handle and those they cannot.
"""

import pytest

from repro.agents.time_symbolic import TimeSymbolic
from repro.kernel import signals as sig
from repro.kernel import stat as st
from repro.kernel.proc import WEXITSTATUS
from repro.kernel.sysent import (
    bsd_numbers, BY_NAME, MAX_BSD_SYSCALL, SYSCALLS, number_of)
from repro.lint.checks import check_protocol
from repro.lint.protocol import load_protocol
from repro.programs.libc import Sys
from repro.toolkit.symbolic import SymbolicSyscall
from repro.workloads import boot_world


def _exercise(sys, results):
    """One representative call per implemented BSD system call.

    Appends (name, observable) pairs to *results*; observables must not
    depend on run-to-run state like pids or clock readings beyond what
    both runs share.
    """
    from repro.kernel.errno import SyscallError

    out = results.append

    fd = sys.open("/etc/passwd")
    out(("open", fd))
    out(("read", sys.read(fd, 10)))
    out(("lseek", sys.lseek(fd, 2)))
    out(("readv", sys.readv(fd, [3, 3])))
    out(("fstat", sys.fstat(fd).st_size))
    out(("dup", sys.dup(fd)))
    out(("dup2", sys.dup2(fd, 10)))
    out(("fcntl", sys.fcntl(fd, 3, 0)))  # F_GETFL
    out(("close", sys.close(fd)))

    wfd = sys.creat("/tmp/sweep.txt", 0o644)
    out(("write", sys.write(wfd, b"sweep")))
    out(("writev", sys.writev(wfd, [b"a", b"bc"])))
    out(("ftruncate", sys.ftruncate(wfd, 4)))
    out(("fsync", sys.fsync(wfd)))
    out(("fchmod", sys.fchmod(wfd, 0o600)))
    out(("fchown", sys.fchown(wfd, 5, 6)))
    out(("flock", sys.flock(wfd, 2)))
    sys.close(wfd)

    out(("link", sys.link("/tmp/sweep.txt", "/tmp/sweep2.txt")))
    out(("stat", sys.stat("/tmp/sweep2.txt").st_nlink))
    out(("lstat", st.S_ISREG(sys.lstat("/tmp/sweep2.txt").st_mode)))
    out(("access", sys.access("/tmp/sweep.txt", 0)))
    out(("rename", sys.rename("/tmp/sweep2.txt", "/tmp/sweep3.txt")))
    out(("unlink", sys.unlink("/tmp/sweep3.txt")))
    out(("symlink", sys.symlink("/etc/passwd", "/tmp/sweeplink")))
    out(("readlink", sys.readlink("/tmp/sweeplink")))
    out(("truncate", sys.truncate("/tmp/sweep.txt", 2)))
    out(("utimes", sys.utimes("/tmp/sweep.txt", 1_000_000, 2_000_000)))
    out(("mkdir", sys.mkdir("/tmp/sweepdir", 0o755)))
    dfd = sys.open("/tmp/sweepdir")
    out(("getdirentries", [d.d_name for d in sys.getdirentries(dfd, 10)]))
    sys.close(dfd)
    out(("rmdir", sys.rmdir("/tmp/sweepdir")))
    out(("mknod", sys.mknod("/tmp/sweepfifo", st.S_IFIFO | 0o644, 0)))
    sys.unlink("/tmp/sweepfifo")
    out(("chdir", sys.chdir("/tmp")))
    sys.chdir("/")
    out(("chmod", sys.chmod("/tmp/sweep.txt", 0o640)))
    out(("chown", sys.chown("/tmp/sweep.txt", 7, 8)))
    out(("umask", sys.umask(0o022)))
    out(("sync", sys.sync()))

    rfd, wfd2 = sys.pipe()
    sys.write(wfd2, b"pipe!")
    out(("pipe", sys.read(rfd, 10)))
    sys.close(rfd)
    sys.close(wfd2)

    pid = sys.fork(lambda child: 7)
    reaped, status = sys.wait()
    out(("fork/wait", (reaped == pid, WEXITSTATUS(status))))

    out(("getpid-positive", sys.getpid() > 0))
    tty = sys.open("/dev/tty", 2)
    from repro.kernel.devices import TIOCGWINSZ

    out(("ioctl", sys.ioctl(tty, TIOCGWINSZ)))
    sys.close(tty)

    out(("getuid", sys.getuid()))
    out(("geteuid", sys.geteuid()))
    out(("getgid", sys.getgid()))
    out(("getegid", sys.getegid()))
    out(("getgroups", sys.getgroups()))
    out(("setgroups", sys.setgroups([1, 2])))
    out(("getpgrp-own", sys.getpgrp() == sys.getpid()))
    out(("setpgrp", sys.setpgrp(0, 0)))
    out(("getppid", sys.getppid()))
    out(("getdtablesize", sys.getdtablesize()))
    out(("getpagesize", sys.getpagesize()))
    out(("gethostname", sys.gethostname()))
    out(("brk", sys.brk(0x40000)))
    out(("setuid-noop", sys.setuid(0)))

    caught = []
    out(("sigvec", sys.sigvec(sig.SIGUSR1, lambda s: caught.append(s))))
    out(("kill", sys.kill(sys.getpid(), sig.SIGUSR1)))
    out(("caught", caught))
    out(("killpg", sys.killpg(sys.getpgrp(), 0)))
    out(("sigblock", sys.sigblock(0)))
    out(("sigsetmask", sys.sigsetmask(0)))
    out(("alarm", sys.alarm(0)))
    out(("setitimer", sys.setitimer(0, 0, 0)))
    out(("getitimer", sys.getitimer(0)))
    sys.sigvec(sig.SIGALRM, lambda s: None)
    sys.alarm(1)
    try:
        sys.syscall("sigpause", 0)
    except SyscallError as err:
        out(("sigpause", err.errno))
    out(("select", sys.select_timeout(1000)))

    tv = sys.gettimeofday()
    out(("gettimeofday-type", type(tv).__name__))
    out(("settimeofday", sys.settimeofday(tv.tv_sec, tv.tv_usec)))
    out(("getrusage", sys.getrusage(0).ru_nsyscalls > 0))

    # ktrace: enable on self, disable, and clear the buffer.  Only the
    # return codes are observables — the records themselves carry
    # clock/seq values that legitimately differ under an agent.
    from repro.kernel.ktrace import KTROP_CLEAR, KTROP_CLEARBUF, KTROP_SET

    out(("ktrace-on", sys.ktrace(KTROP_SET, 0)))
    out(("ktrace-off", sys.ktrace(KTROP_CLEAR, 0)))
    out(("ktrace-clearbuf", sys.ktrace(KTROP_CLEARBUF)))

    # exit(1) and execve/vfork are exercised by the run itself and by
    # dedicated tests; chroot last (it confines the rest).
    out(("chroot", sys.chroot("/tmp")))
    return 0


#: calls covered implicitly rather than by _exercise
_IMPLICIT = {"exit", "execve", "vfork"}


def _run_sweep(with_agent):
    kernel = boot_world()
    results = []

    def main(ctx):
        if with_agent:
            TimeSymbolic().attach(ctx)
        return _exercise(Sys(ctx), results)

    status = kernel.run_entry(main)
    from repro.kernel.proc import WIFEXITED

    assert WIFEXITED(status) and WEXITSTATUS(status) == 0, status
    return results


def test_sweep_covers_every_bsd_call():
    names = {name for name, _ in _run_sweep(with_agent=False)}
    mentioned = set()
    for name in names:
        for piece in name.replace("/", "-").split("-"):
            mentioned.add(piece)
    missing = []
    for number in bsd_numbers():
        call = SYSCALLS[number].name
        if call in _IMPLICIT:
            continue
        if call not in mentioned:
            missing.append(call)
    assert not missing, "sweep does not exercise: %s" % missing


def test_static_protocol_model_matches_runtime():
    """agentlint's parsed view of sysent must equal the imported table.

    The linter (repro.lint) judges agents against a *statically*
    recovered protocol; if its model ever drifted from the runtime
    objects, it could pass agents the sweep would fail or vice versa.
    """
    model = load_protocol()
    static = {name: info.number for name, info in model.syscalls.items()}
    runtime = {entry.name: entry.number for entry in SYSCALLS.values()}
    assert static == runtime
    assert model.max_bsd == MAX_BSD_SYSCALL
    static_methods = set(model.symbolic_methods)
    runtime_methods = {name for name in dir(SymbolicSyscall)
                       if name.startswith("sys_")}
    assert static_methods == runtime_methods


def test_sysent_and_symbolic_layer_agree_bidirectionally():
    """The static L007 cross-check: table ↔ methods, both directions.

    Every BSD table entry must have a sys_* method on the symbolic
    layer (or agents cannot provide that call) and every sys_* method
    must name a table entry (or it is unreachable) — checked here
    against the *runtime* objects and through the linter's static pass,
    so the dynamic sweep and agentlint can never drift apart.
    """
    runtime_methods = {name for name in dir(SymbolicSyscall)
                       if name.startswith("sys_")}
    for number in bsd_numbers():
        assert "sys_" + SYSCALLS[number].name in runtime_methods, (
            "sysent entry %d (%s) has no SymbolicSyscall method"
            % (number, SYSCALLS[number].name))
    for method in runtime_methods:
        assert method[len("sys_"):] in BY_NAME, (
            "%s names no sysent entry" % method)
    assert check_protocol(load_protocol()) == []


def test_agent_is_observably_transparent_for_every_call():
    bare = _run_sweep(with_agent=False)
    agented = _run_sweep(with_agent=True)
    assert len(bare) == len(agented)
    for (name_a, value_a), (name_b, value_b) in zip(bare, agented):
        assert name_a == name_b
        assert value_a == value_b, (name_a, value_a, value_b)
