"""Integration tests: several agents simultaneously interposed.

The paper's motivation (Section 1.4): interposition "can allow for a
multiplicity of simultaneously coexisting implementations of the system
call services, which in turn may utilize one another without requiring
changes to existing client binaries."  These tests stack the shipped
agents in combinations and check that each layer's semantics compose.
"""

import pytest

from repro.agents.monitor import MonitorAgent
from repro.agents.sandbox import SandboxAgent, SandboxPolicy
from repro.agents.timex import TimexSymbolicSyscall
from repro.agents.trace import TraceSymbolicSyscall
from repro.agents.txn import TxnAgent
from repro.agents.union_dirs import UnionAgent
from repro.kernel.proc import WEXITSTATUS
from repro.workloads import boot_world


def run_stacked(kernel, agents, path, argv):
    """Attach *agents* bottom-up, then exec the client through the top."""

    def loader(ctx):
        for agent in agents:
            agent.attach(ctx)
        agents[-1].exec_client(path, argv, {})

    return kernel.run_entry(loader)


def test_trace_over_union_sees_logical_names(world):
    world.mkdir_p("/m1")
    world.mkdir_p("/m2")
    world.write_file("/m2/deep.txt", "found in member two")
    world.mkdir_p("/u")
    union = UnionAgent()
    union.pset.add_union("/u", ["/m1", "/m2"])
    trace = TraceSymbolicSyscall("/tmp/stack.trace")

    # union below, trace on top: the trace shows what the APPLICATION
    # asked for (the logical /u name), while the union resolves it.
    status = run_stacked(
        world, [union, trace], "/bin/sh", ["sh", "-c", "cat /u/deep.txt"]
    )
    assert WEXITSTATUS(status) == 0
    assert "found in member two" in world.console.take_output().decode()
    log = world.read_file("/tmp/stack.trace").decode()
    assert "open('/u/deep.txt'" in log.replace('"', "'")


def test_union_over_trace_sees_physical_names(world):
    world.mkdir_p("/m1")
    world.write_file("/m1/f.txt", "payload")
    world.mkdir_p("/u")
    union = UnionAgent()
    union.pset.add_union("/u", ["/m1"])
    trace = TraceSymbolicSyscall("/tmp/stack2.trace")

    # trace below, union on top: the union's downcalls carry the
    # resolved physical names, and that's what the lower tracer records.
    status = run_stacked(
        world, [trace, union], "/bin/sh", ["sh", "-c", "cat /u/f.txt"]
    )
    assert WEXITSTATUS(status) == 0
    log = world.read_file("/tmp/stack2.trace").decode().replace('"', "'")
    assert "open('/m1/f.txt'" in log


def test_txn_over_sandbox(world):
    """A transactional session inside a sandbox: the sandbox's rules
    apply to the transaction's own machinery too."""
    world.write_file("/home/mbj/data", "v0")
    sandbox = SandboxAgent(SandboxPolicy(writable=("/tmp", "/home/mbj")))
    txn = TxnAgent(scratch_dir="/tmp/stack.txn", outcome="abort")
    status = run_stacked(
        world, [sandbox, txn], "/bin/sh",
        ["sh", "-c", "echo v1 > /home/mbj/data; cat /home/mbj/data"],
    )
    assert WEXITSTATUS(status) == 0
    assert "v1" in world.console.take_output().decode()
    assert world.read_file("/home/mbj/data") == b"v0"  # aborted
    assert sandbox.violations == []  # txn stayed within policy


def test_sandbox_blocks_txn_commit_outside_policy(world):
    """If the transaction tries to commit outside the sandbox's writable
    set, the sandbox (below it) refuses the commit's writes."""
    world.write_file("/etc/motd", "original")
    sandbox = SandboxAgent(SandboxPolicy(writable=("/tmp",)))
    txn = TxnAgent(scratch_dir="/tmp/stack.txn2", outcome="commit")
    status = run_stacked(
        world, [sandbox, txn], "/bin/sh",
        ["sh", "-c", "echo hacked > /etc/motd; true"],
    )
    # Client saw its write inside the txn; commit hit the sandbox wall.
    assert WEXITSTATUS(status) == 0
    assert world.read_file("/etc/motd") == b"original"
    assert any(path == "/etc/motd" for _, path in sandbox.violations)
    assert any(logical == "/etc/motd" for logical, _ in txn.pset.commit_failures)


def test_three_deep_stack(world):
    """monitor + timex + trace all at once."""
    monitor = MonitorAgent("/tmp/stack.mon")
    timex = TimexSymbolicSyscall(offset=1000)
    trace = TraceSymbolicSyscall("/tmp/stack3.trace")
    status = run_stacked(
        world, [monitor, timex, trace], "/bin/date", ["date"]
    )
    assert WEXITSTATUS(status) == 0
    shown = int(world.console.take_output().decode().split(".")[0])
    assert shown - world.clock.now().tv_sec >= 990  # timex applied
    assert "gettimeofday()" in world.read_file("/tmp/stack3.trace").decode()
    assert "system call usage:" in world.read_file("/tmp/stack.mon").decode()


def test_stack_survives_exec_and_fork(world):
    monitor = MonitorAgent("/tmp/stack.mon2")
    trace = TraceSymbolicSyscall("/tmp/stack4.trace")
    status = run_stacked(
        world, [monitor, trace], "/bin/sh",
        ["sh", "-c", "echo a | cat; sh -c 'echo b'"],
    )
    assert WEXITSTATUS(status) == 0
    out = world.console.take_output().decode()
    assert "a" in out and "b" in out
    log = world.read_file("/tmp/stack4.trace").decode()
    assert log.count("execve(") >= 3
    assert monitor.forks >= 3
