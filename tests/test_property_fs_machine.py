"""Stateful property test: name-space operations against a model tree.

A hypothesis rule machine drives mkdir/rmdir/create/unlink/rename on
the simulated filesystem and mirrors each operation in a nested-dict
model; after every step the two views of the tree must agree, including
which operations fail and why.
"""

from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.kernel import Kernel
from repro.kernel.cred import Cred
from repro.kernel.errno import SyscallError
from repro.kernel.namei import lookup
from repro.kernel.sysent import number_of
from repro.kernel.trap import UserContext

NR = {n: number_of(n) for n in (
    "mkdir", "rmdir", "open", "close", "unlink", "rename",
    "getdirentries", "stat",
)}

O_CREAT = 0x0200
O_WRONLY = 1

NAMES = ("n1", "n2", "n3")
DIRS = ("", "d1", "d1/d2")  # candidate parent directories under /w


class FsMachine(RuleBasedStateMachine):
    @initialize()
    def boot(self):
        self.kernel = Kernel()
        self.kernel.mkdir_p("/w")
        proc = self.kernel._create_initial_process()
        self.ctx = UserContext(self.kernel, proc)
        # model: nested dicts for directories, None for files
        self.model = {}

    # -- model helpers -----------------------------------------------

    def _model_dir(self, rel):
        node = self.model
        if rel:
            for part in rel.split("/"):
                node = node.get(part)
                if not isinstance(node, dict):
                    return None
        return node

    def _path(self, rel, name):
        base = "/w/" + rel if rel else "/w"
        return base + "/" + name

    # -- rules ---------------------------------------------------------------

    @rule(rel=st.sampled_from(DIRS), name=st.sampled_from(NAMES + ("d2",)))
    def mkdir(self, rel, name):
        parent = self._model_dir(rel)
        try:
            self.ctx.trap(NR["mkdir"], self._path(rel, name), 0o755)
            real_ok = True
        except SyscallError:
            real_ok = False
        model_ok = parent is not None and name not in parent
        assert real_ok == model_ok, ("mkdir", rel, name)
        if model_ok:
            parent[name] = {}

    @rule(rel=st.sampled_from(DIRS), name=st.sampled_from(NAMES))
    def create(self, rel, name):
        parent = self._model_dir(rel)
        try:
            fd = self.ctx.trap(
                NR["open"], self._path(rel, name), O_WRONLY | O_CREAT, 0o644
            )
            self.ctx.trap(NR["close"], fd)
            real_ok = True
        except SyscallError:
            real_ok = False
        model_ok = parent is not None and not isinstance(
            parent.get(name), dict
        )
        assert real_ok == model_ok, ("create", rel, name)
        if model_ok:
            parent[name] = None

    @rule(rel=st.sampled_from(DIRS), name=st.sampled_from(NAMES + ("d2",)))
    def unlink(self, rel, name):
        parent = self._model_dir(rel)
        try:
            self.ctx.trap(NR["unlink"], self._path(rel, name))
            real_ok = True
        except SyscallError:
            real_ok = False
        model_ok = parent is not None and name in parent and parent[name] is None
        assert real_ok == model_ok, ("unlink", rel, name)
        if model_ok:
            del parent[name]

    @rule(rel=st.sampled_from(DIRS), name=st.sampled_from(NAMES + ("d2",)))
    def rmdir(self, rel, name):
        parent = self._model_dir(rel)
        try:
            self.ctx.trap(NR["rmdir"], self._path(rel, name))
            real_ok = True
        except SyscallError:
            real_ok = False
        entry = parent.get(name) if parent is not None else None
        model_ok = isinstance(entry, dict) and not entry
        assert real_ok == model_ok, ("rmdir", rel, name)
        if model_ok:
            del parent[name]

    @rule(
        src_rel=st.sampled_from(DIRS),
        src_name=st.sampled_from(NAMES),
        dst_rel=st.sampled_from(DIRS),
        dst_name=st.sampled_from(NAMES),
    )
    def rename_file(self, src_rel, src_name, dst_rel, dst_name):
        src_parent = self._model_dir(src_rel)
        dst_parent = self._model_dir(dst_rel)
        if src_parent is None or src_parent.get(src_name, "?") is not None:
            # Only plain-file renames are modelled here; directory
            # renames (with their subtree and emptiness rules) are
            # covered by the unit tests.
            return
        try:
            self.ctx.trap(
                NR["rename"],
                self._path(src_rel, src_name),
                self._path(dst_rel, dst_name),
            )
            real_ok = True
        except SyscallError:
            real_ok = False
        source_is_file = (
            src_parent is not None and src_parent.get(src_name, "?") is None
        )
        target = dst_parent.get(dst_name, "missing") if dst_parent is not None else "?"
        model_ok = (
            source_is_file
            and dst_parent is not None
            and not isinstance(target, dict)
        )
        # Renaming a file onto itself succeeds and changes nothing.
        same = src_rel == dst_rel and src_name == dst_name
        assert real_ok == model_ok, ("rename", src_rel, src_name, dst_rel, dst_name)
        if model_ok and not same:
            del src_parent[src_name]
            dst_parent[dst_name] = None

    # -- the big invariant ------------------------------------------------------

    @invariant()
    def trees_agree(self):
        if not hasattr(self, "kernel"):
            return

        def walk(path, model_node):
            real = lookup(_Ctx(self.kernel), path)
            names = sorted(
                name for name in real.entries if name not in (".", "..")
            ) if real.is_dir() else None
            assert names == sorted(model_node), (path, names, model_node)
            for name, child in model_node.items():
                child_path = path + "/" + name
                node = lookup(_Ctx(self.kernel), child_path)
                if isinstance(child, dict):
                    assert node.is_dir(), child_path
                    walk(child_path, child)
                else:
                    assert node.is_reg(), child_path

        walk("/w", self.model)


class _Ctx:
    def __init__(self, kernel):
        self.cwd = kernel.rootfs.root
        self.root_dir = kernel.rootfs.root
        self.cred = Cred(0, 0)


FsMachine.TestCase.settings = settings(
    max_examples=30,
    stateful_step_count=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

TestFsMachine = FsMachine.TestCase
