"""Tests for the /proc pseudo-filesystem and its in-world viewers.

Covers the node catalog (content synthesized at read time from live
kernel state), the read-only contract, stale-node semantics, the
kernel_stats schema/section-order golden, the in-world ``ps``/``top``/
``vmstat`` programs — including ``top`` under a union+txn+monitor agent
stack — and the pay-per-use guarantee: a world that never mounts /proc
runs bit-for-bit like the seed.
"""

import json

import pytest

from repro.kernel.errno import EROFS, ENOENT, SyscallError
from repro.kernel.procfs import (
    KERNEL_FILES,
    PID_BASE,
    PID_FILES,
    PID_STRIDE,
    TOOL_NAMES,
    mount_procfs,
    umount_procfs,
)
from repro.kernel.proc import WEXITSTATUS
from repro.kernel.sysent import number_of
from repro.kernel.syscalls.obscalls import (
    KERNEL_STATS_SCHEMA_VERSION,
    KERNEL_STATS_SECTIONS,
    kernel_stats_payload,
)
from repro.kernel.trap import UserContext


@pytest.fixture
def procworld(world):
    mount_procfs(world)
    return world


# -- mounting --------------------------------------------------------------


def test_mount_is_idempotent_and_umount_detaches(world):
    fs = mount_procfs(world)
    assert world.procfs is fs
    assert mount_procfs(world) is fs
    assert fs.mounted_at == "/proc"
    assert umount_procfs(world) is fs
    assert world.procfs is None
    # The viewer binaries stay installed; a re-mount reuses them.
    assert umount_procfs(world) is None


def test_mount_installs_viewer_binaries(procworld):
    for name in TOOL_NAMES:
        assert procworld.read_file("/bin/" + name) is not None


def test_unmounted_world_has_no_proc_or_tools(world):
    assert world.procfs is None
    with pytest.raises(SyscallError):
        world.read_file("/proc/uptime")
    for name in TOOL_NAMES:
        with pytest.raises(SyscallError):
            world.read_file("/bin/" + name)


# -- the node catalog ------------------------------------------------------


def test_uptime_reads_virtual_clock(procworld):
    first = procworld.read_file("/proc/uptime").decode().split()
    up, now = float(first[0]), int(first[1])
    assert up >= 0 and now == procworld.clock.usec()


def test_kernel_dir_lists_every_section_file(sh, world):
    mount_procfs(world)
    code, out = sh("ls /proc/kernel")
    assert code == 0
    names = out.split()
    assert names == sorted(name for name, _render in KERNEL_FILES)


def test_kernel_stats_file_matches_trap_payload_sections(procworld):
    doc = json.loads(procworld.read_file("/proc/kernel/stats").decode())
    assert list(doc) == list(KERNEL_STATS_SECTIONS)
    assert doc["schema_version"] == KERNEL_STATS_SCHEMA_VERSION


def test_kernel_section_files_report_disabled_when_off(procworld):
    for name in ("metrics", "namecache", "guard", "recorder",
                 "profile", "watch"):
        doc = json.loads(
            procworld.read_file("/proc/kernel/" + name).decode())
        if name == "namecache":
            # The name cache is on by default in a booted world.
            assert "hits" in doc
        else:
            assert doc == {"enabled": False}


def test_pid_status_reflects_live_process_state(procworld):
    seen = {}

    def main(ctx):
        text = b""
        fd = ctx.trap(number_of("open"),
                      "/proc/%d/status" % ctx.proc.pid, 0, 0)
        while True:
            chunk = ctx.trap(number_of("read"), fd, 512)
            if not chunk:
                break
            text += chunk
        ctx.trap(number_of("close"), fd)
        for line in text.decode().splitlines():
            key, _, value = line.partition(": ")
            seen[key] = value
        return 0

    status = procworld.run_entry(main)
    assert WEXITSTATUS(status) == 0
    assert set(seen) >= {"pid", "ppid", "state", "comm", "nsyscalls",
                         "vector", "ktrace"}
    assert seen["state"] == "running"
    assert int(seen["nsyscalls"]) >= 2  # the open and first read at least


def test_pid_fds_and_vector_files(sh, world):
    mount_procfs(world)
    code, out = sh("cat /proc/1/fds /proc/1/vector")
    # Whatever pid 1 is doing, the files must parse: "fd describe..."
    # lines and "number name handler" lines, or be empty.
    assert code == 0
    for line in out.splitlines():
        assert line.split()[0].isdigit()


def test_stale_pid_read_fails_with_enoent(procworld):
    fs = procworld.procfs
    pid = 424242
    with pytest.raises(SyscallError) as err:
        fs.inode(PID_BASE + pid * PID_STRIDE)
    assert err.value.errno == ENOENT


def test_ino_decode_is_arithmetic_and_stable(procworld):
    fs = procworld.procfs

    def main(ctx):
        pid = ctx.proc.pid
        for slot, name in enumerate(PID_FILES, start=1):
            ino = PID_BASE + pid * PID_STRIDE + slot
            node = fs.inode(ino)
            assert node.ino == ino and node.name == name
        return 0

    assert WEXITSTATUS(procworld.run_entry(main)) == 0


def test_proc_is_readonly(sh, world):
    mount_procfs(world)
    code, out = sh("sh -c 'echo x > /proc/uptime'")
    assert code != 0

    def main(ctx):
        fd = ctx.trap(number_of("open"), "/proc/uptime", 1, 0)  # O_WRONLY
        try:
            ctx.trap(number_of("write"), fd, b"nope")
        except SyscallError as err:
            assert err.errno == EROFS
        else:
            raise AssertionError("write to /proc succeeded")
        try:
            ctx.trap(number_of("ftruncate"), fd, 0)
        except SyscallError as err:
            assert err.errno == EROFS
        else:
            raise AssertionError("ftruncate of /proc succeeded")
        ctx.trap(number_of("close"), fd)
        try:
            ctx.trap(number_of("unlink"), "/proc/uptime")
        except SyscallError as err:
            assert err.errno == EROFS
        else:
            raise AssertionError("unlink in /proc succeeded")
        return 0

    assert WEXITSTATUS(world.run_entry(main)) == 0


def test_open_file_snapshot_is_coherent_across_short_reads(procworld):
    """Short sequential reads see one rendering, not many."""

    def main(ctx):
        fd = ctx.trap(number_of("open"), "/proc/kernel/stats", 0, 0)
        chunks = []
        while True:
            # 7-byte reads: each read is itself a trap that bumps the
            # counters the file reports, so re-rendering would tear.
            chunk = ctx.trap(number_of("read"), fd, 7)
            if not chunk:
                break
            chunks.append(chunk)
        ctx.trap(number_of("close"), fd)
        doc = json.loads(b"".join(chunks).decode())
        assert list(doc) == list(KERNEL_STATS_SECTIONS)
        return 0

    assert WEXITSTATUS(procworld.run_entry(main)) == 0


def test_read_counters_count_materialisations(procworld):
    before = procworld.procfs.reads
    procworld.read_file("/proc/uptime")
    procworld.read_file("/proc/uptime")
    stats = procworld.procfs.stats()
    assert stats["enabled"] is True
    assert stats["reads"] >= before + 2
    assert stats["reads_by_node"]["uptime"] >= 2


# -- the kernel_stats golden (trap 207) ------------------------------------


def test_kernel_stats_trap_payload_pins_schema_and_order(world):
    """The section order and schema version are a frozen contract:
    future PRs append sections and bump the version, never reorder."""
    payload = kernel_stats_payload(world)
    assert list(payload) == list(KERNEL_STATS_SECTIONS)
    assert payload["schema_version"] == KERNEL_STATS_SCHEMA_VERSION == 3
    assert KERNEL_STATS_SECTIONS == (
        "schema_version", "fastpaths", "trap", "namecache", "spans",
        "guard", "faultsites", "recorder", "procfs", "profile", "watch",
        "journal")
    assert payload["journal"] == {"enabled": False}

    def main(ctx):
        doc = ctx.trap(number_of("kernel_stats"))
        assert list(doc) == list(KERNEL_STATS_SECTIONS)
        assert doc["procfs"] == {"enabled": False}
        return 0

    assert WEXITSTATUS(world.run_entry(main)) == 0


def test_kernel_stats_procfs_section_live_when_mounted(procworld):
    procworld.read_file("/proc/uptime")
    payload = kernel_stats_payload(procworld)
    assert payload["procfs"]["enabled"] is True
    assert payload["procfs"]["mounted_at"] == "/proc"
    assert payload["procfs"]["reads"] >= 1


# -- the in-world viewers --------------------------------------------------


def test_ps_lists_processes(sh, world):
    mount_procfs(world)
    code, out = sh("ps")
    assert code == 0
    lines = out.splitlines()
    assert lines[0].split() == ["PID", "PPID", "STAT", "NSYS", "VECT",
                                "COMM"]
    assert len(lines) >= 2  # at least the sh running ps
    assert any("sh" in line or "ps" in line for line in lines[1:])


def test_ps_without_proc_mounted_fails_gracefully(sh):
    code, out = sh("ps")
    assert code == 127  # not installed: unmounted world has no viewers


def test_vmstat_parses_kernel_stats(sh, world):
    mount_procfs(world)
    code, out = sh("vmstat")
    assert code == 0
    assert "uptime" in out and "schema v3" in out
    assert "traps " in out and "procfs" in out


def test_top_reports_syscall_rates(sh, world):
    mount_procfs(world)
    code, out = sh("top 2 50000")
    assert code == 0
    assert out.count("top: round") == 2
    assert "CALLS/S" in out
    # The process running top makes syscalls between its two samples
    # (the /proc reads themselves), so at least one nonzero rate shows.
    rates = [float(line.split()[1]) for line in out.splitlines()
             if line and line.split()[0].isdigit()]
    assert rates and max(rates) > 0


def test_top_under_union_txn_monitor_stack(world):
    """The acceptance bar: live per-pid rates rendered from /proc while
    a three-agent stack (union + txn + monitor) interposes on top."""
    from repro.agents.monitor import MonitorAgent
    from repro.agents.txn import TxnAgent
    from repro.agents.union_dirs import UnionAgent

    mount_procfs(world)
    world.mkdir_p("/data")
    world.write_file("/data/corpus", b"live introspection\n" * 10)
    union = UnionAgent()
    union.pset.add_union("/view", ["/data"])
    txn = TxnAgent(scratch_dir="/tmp/top.txn", outcome="commit")
    monitor = MonitorAgent("/tmp/top.monitor")
    agents = [union, txn, monitor]

    def loader(ctx):
        for agent in agents:
            agent.attach(ctx)
        agents[-1].exec_client("/bin/top", ["top", "1", "50000"], {})

    status = world.run_entry(loader)
    assert WEXITSTATUS(status) == 0
    out = world.console.take_output().decode()
    assert "CALLS/S" in out and "top: round 1" in out
    rates = [float(line.split()[1]) for line in out.splitlines()
             if line and line.split()[0].isdigit()]
    assert rates and max(rates) > 0
    # The monitor (topmost layer) saw top's /proc traffic as plain I/O.
    assert monitor.opens_by_path.get("/proc/uptime", 0) == 0  # top skips it
    assert any(path.startswith("/proc/") for path in monitor.opens_by_path)


def test_agents_see_proc_reads(world):
    """Interposition works over /proc like any filesystem: a monitor
    over ``cat /proc/uptime`` counts the open."""
    from repro.agents.monitor import MonitorAgent
    from repro.toolkit import run_under_agent

    mount_procfs(world)
    agent = MonitorAgent("/tmp/proc.monitor")
    status = run_under_agent(world, agent, "/bin/sh",
                             ["sh", "-c", "cat /proc/uptime"])
    assert WEXITSTATUS(status) == 0
    assert agent.opens_by_path.get("/proc/uptime") == 1


# -- pay-per-use: unmounted is the seed ------------------------------------


def _format_event_stream(prepare=None):
    """Run the format workload; return the full obs event-tuple stream."""
    from repro import obs
    from repro.workloads import boot_world
    import repro.workloads.format_dissertation as fmt

    world = boot_world()
    if prepare is not None:
        prepare(world)
    switchboard = obs.enable(world, trace_all=True)
    events = []
    switchboard.bus.subscribe(lambda event: events.append(event.to_tuple()))
    fmt.setup(world)
    status = fmt.run(world)
    assert WEXITSTATUS(status) == 0
    return events


def test_profiler_and_watches_disabled_is_bit_for_bit_seed():
    """The equivalence bar: profiler enabled then disabled, watches
    attached then detached, procfs never mounted — the format
    workload's event stream is identical to a never-touched world."""
    from repro.obs.profile import disable_profile, enable_profile
    from repro.obs.watch import disable_watches, enable_watches

    def prepare(world):
        enable_profile(world)
        disable_profile(world)
        enable_watches(world, "gauge_threshold trap|read >= 1 signal 16")
        disable_watches(world)

    baseline = _format_event_stream()
    touched = _format_event_stream(prepare)
    assert touched == baseline


def test_mounted_then_unmounted_procfs_is_bit_for_bit_free():
    """Mounting and unmounting /proc leaves no procfs machinery behind.

    The baseline world creates the bare mountpoint directory (a plain
    rootfs mutation any program could make — it shifts the monotonic
    inode allocator); the compared world mounts a full procfs over it
    and unmounts again.  Beyond the directory itself, the mount must
    cost nothing: identical event streams, bit for bit."""

    def baseline_prepare(world):
        world.mkdir_p("/proc")

    def touched_prepare(world):
        mount_procfs(world, tools=False)
        umount_procfs(world)

    baseline = _format_event_stream(baseline_prepare)
    touched = _format_event_stream(touched_prepare)
    assert touched == baseline
