"""Integration: make drives scribe — the two workload programs composed.

A Makefile whose rule formats a manuscript with scribe, rebuilt only
when the manuscript changes; run bare and under agents.
"""

import pytest

from repro.agents.time_symbolic import TimeSymbolic
from repro.kernel.proc import WEXITSTATUS
from repro.toolkit import run_under_agent


@pytest.fixture
def doc_world(world):
    world.mkdir_p("/home/mbj/book")
    world.write_file(
        "/home/mbj/book/book.mss",
        "@make(report)\n\n@chapter(Only Chapter)\n\nSome body text here.\n",
    )
    world.write_file(
        "/home/mbj/book/Makefile",
        "book.doc: book.mss\n"
        "\tscribe book.mss book.doc\n",
    )
    return world


def test_make_builds_document(doc_world):
    status = doc_world.run(
        "/bin/sh", ["sh", "-c", "cd /home/mbj/book; make"]
    )
    assert WEXITSTATUS(status) == 0
    doc = doc_world.read_file("/home/mbj/book/book.doc").decode()
    assert "Chapter 1.  Only Chapter" in doc


def test_rebuild_only_after_edit(doc_world):
    doc_world.run("/bin/sh", ["sh", "-c", "cd /home/mbj/book; make"])
    doc_world.console.take_output()
    status = doc_world.run("/bin/sh", ["sh", "-c", "cd /home/mbj/book; make"])
    assert "up to date" in doc_world.console.take_output().decode()
    # Edit the manuscript (advancing the clock past the second boundary).
    doc_world.clock.advance(2_000_000)
    doc_world.write_file(
        "/home/mbj/book/book.mss",
        "@make(report)\n\n@chapter(Revised)\n\nNew text.\n",
    )
    doc_world.run("/bin/sh", ["sh", "-c", "cd /home/mbj/book; make"])
    doc = doc_world.read_file("/home/mbj/book/book.doc").decode()
    assert "Revised" in doc


def test_doc_build_under_agent(doc_world):
    status = run_under_agent(
        doc_world, TimeSymbolic(), "/bin/sh",
        ["sh", "-c", "cd /home/mbj/book; make"],
    )
    assert WEXITSTATUS(status) == 0
    assert b"Only Chapter" in doc_world.read_file("/home/mbj/book/book.doc")


def test_doc_pipeline_with_tools(doc_world):
    """Format, then post-process with grep/wc/sort — a realistic session."""
    status = doc_world.run(
        "/bin/sh",
        ["sh", "-c",
         "cd /home/mbj/book; make; grep Chapter book.doc | sort | tee summary"],
    )
    assert WEXITSTATUS(status) == 0
    assert b"Chapter" in doc_world.read_file("/home/mbj/book/summary")
