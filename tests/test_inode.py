"""Unit tests for in-core inodes."""

import pytest

from repro.kernel import stat as st
from repro.kernel.clock import Clock
from repro.kernel.cred import Cred
from repro.kernel.errno import EEXIST, ENOENT, ENOTEMPTY, SyscallError
from repro.kernel.inode import Dirent
from repro.kernel.ufs import Filesystem

ROOT = Cred(0, 0)


@pytest.fixture
def fs():
    return Filesystem(Clock())


def test_regular_file_read_write(fs):
    node = fs.create_file(0o644, ROOT)
    assert node.write_at(0, b"hello") == 5
    assert node.read_at(0, 100) == b"hello"
    assert node.read_at(2, 2) == b"ll"
    assert node.size == 5


def test_read_past_eof_is_empty(fs):
    node = fs.create_file(0o644, ROOT)
    node.write_at(0, b"ab")
    assert node.read_at(2, 10) == b""
    assert node.read_at(100, 10) == b""


def test_write_hole_zero_fills(fs):
    node = fs.create_file(0o644, ROOT)
    node.write_at(4, b"x")
    assert node.read_at(0, 5) == b"\0\0\0\0x"
    assert node.size == 5


def test_overwrite_middle(fs):
    node = fs.create_file(0o644, ROOT)
    node.write_at(0, b"abcdef")
    node.write_at(2, b"XY")
    assert node.read_at(0, 6) == b"abXYef"


def test_truncate_shrink_and_grow(fs):
    node = fs.create_file(0o644, ROOT)
    node.write_at(0, b"abcdef")
    node.truncate_to(3)
    assert node.read_at(0, 10) == b"abc"
    node.truncate_to(5)
    assert node.read_at(0, 10) == b"abc\0\0"


def test_directory_enter_lookup_remove(fs):
    root = fs.root
    node = fs.create_file(0o644, ROOT)
    root.enter("f", node.ino)
    assert root.lookup("f") == node.ino
    assert root.contains("f")
    root.remove("f")
    assert not root.contains("f")


def test_directory_duplicate_entry_raises(fs):
    node = fs.create_file(0o644, ROOT)
    fs.root.enter("f", node.ino)
    with pytest.raises(SyscallError) as exc:
        fs.root.enter("f", node.ino)
    assert exc.value.errno == EEXIST


def test_directory_lookup_missing_raises(fs):
    with pytest.raises(SyscallError) as exc:
        fs.root.lookup("missing")
    assert exc.value.errno == ENOENT


def test_directory_listing_order(fs):
    for name in ("zeta", "alpha", "mid"):
        node = fs.create_file(0o644, ROOT)
        fs.root.enter(name, node.ino)
    names = [d.d_name for d in fs.root.list_entries()]
    # "." and ".." first, then insertion order (on-disk order, not sorted)
    assert names[:2] == [".", ".."]
    assert names[2:] == ["zeta", "alpha", "mid"]


def test_directory_empty_check(fs):
    sub = fs.mkdir_in(fs.root, "d", 0o755, ROOT)
    assert sub.is_empty()
    node = fs.create_file(0o644, ROOT)
    fs.link(sub, "f", node)
    assert not sub.is_empty()
    with pytest.raises(SyscallError) as exc:
        sub.check_empty()
    assert exc.value.errno == ENOTEMPTY


def test_symlink_mode_and_size(fs):
    link = fs.create_symlink("/target/elsewhere", ROOT)
    assert link.is_symlink()
    assert link.size == len("/target/elsewhere")
    assert link.mode & 0o777 == 0o777


def test_stat_record_fields(fs):
    node = fs.create_file(0o640, Cred(7, 8))
    node.write_at(0, b"x" * 1000)
    record = node.stat_record()
    assert record.st_ino == node.ino
    assert record.st_size == 1000
    assert record.st_uid == 7
    assert record.st_gid == 8
    assert st.S_ISREG(record.st_mode)
    assert record.st_mode & 0o777 == 0o640
    assert record.st_blocks == 2  # 1000 bytes in 512-byte blocks


def test_dirent_equality():
    assert Dirent(3, "a") == Dirent(3, "a")
    assert Dirent(3, "a") != Dirent(4, "a")


def test_mtime_tracked(fs):
    clock = fs.clock
    node = fs.create_file(0o644, ROOT)
    before = node.mtime
    clock.advance(5_000_000)
    node.touch_mtime(clock.usec())
    assert node.mtime == before + 5_000_000
    assert node.ctime == node.mtime
