"""Property-based tests: union listing semantics and pipe byte streams."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.kernel import Kernel
from repro.kernel.proc import WEXITSTATUS
from repro.kernel.sysent import number_of
from repro.toolkit import run_under_agent

NR = {n: number_of(n) for n in (
    "open", "read", "write", "close", "pipe", "fork", "wait",
    "getdirentries", "mkdir",
)}

_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_names = st.sets(
    st.text(alphabet=st.sampled_from("abcdef"), min_size=1, max_size=3),
    max_size=6,
)


@given(member1=_names, member2=_names, member3=_names)
@_settings
def test_union_listing_is_ordered_set_union(member1, member2, member3):
    """The union directory's listing equals first-wins set union."""
    from repro.agents.union_dirs import UnionAgent

    kernel = Kernel()
    members = [sorted(member1), sorted(member2), sorted(member3)]
    for index, names in enumerate(members, 1):
        kernel.mkdir_p("/m%d" % index)
        for name in names:
            kernel.write_file("/m%d/%s" % (index, name), "m%d" % index)
    kernel.mkdir_p("/u")

    agent = UnionAgent()
    agent.pset.add_union("/u", ["/m1", "/m2", "/m3"])
    listing = {}

    def main(ctx):
        fd = ctx.trap(NR["open"], "/u", 0, 0)
        entries = ctx.trap(NR["getdirentries"], fd, 1000)
        listing["names"] = [
            e.d_name for e in entries if e.d_name not in (".", "..")
        ]
        return 0

    def loader(ctx):
        agent.attach(ctx)
        return main(ctx)

    kernel.run_entry(loader)
    expected = set(member1) | set(member2) | set(member3)
    assert sorted(listing["names"]) == sorted(expected)
    assert len(listing["names"]) == len(set(listing["names"]))  # no dups


@given(member1=_names, member2=_names)
@_settings
def test_union_lookup_prefers_first_member(member1, member2):
    from repro.agents.union_dirs import UnionAgent

    kernel = Kernel()
    for index, names in enumerate((member1, member2), 1):
        kernel.mkdir_p("/m%d" % index)
        for name in names:
            kernel.write_file("/m%d/%s" % (index, name), "m%d" % index)
    kernel.mkdir_p("/u")
    agent = UnionAgent()
    agent.pset.add_union("/u", ["/m1", "/m2"])
    contents = {}

    def loader(ctx):
        agent.attach(ctx)
        for name in member1 | member2:
            fd = ctx.trap(NR["open"], "/u/" + name, 0, 0)
            contents[name] = ctx.trap(NR["read"], fd, 10)
            ctx.trap(NR["close"], fd)
        return 0

    kernel.run_entry(loader)
    for name in member1 | member2:
        expected = b"m1" if name in member1 else b"m2"
        assert contents[name] == expected


@given(chunks=st.lists(st.binary(min_size=0, max_size=2000), min_size=1,
                       max_size=10))
@_settings
def test_pipe_preserves_byte_stream(chunks):
    """Whatever chunking the writer uses, the reader sees the same bytes."""
    kernel = Kernel()
    received = []

    def main(ctx):
        rfd, wfd = ctx.trap(NR["pipe"])

        def child(cctx):
            cctx.trap(NR["close"], rfd)
            for chunk in chunks:
                cctx.trap(NR["write"], wfd, chunk)
            cctx.trap(NR["close"], wfd)
            return 0

        ctx.trap(NR["fork"], child)
        ctx.trap(NR["close"], wfd)
        while True:
            data = ctx.trap(NR["read"], rfd, 777)
            if not data:
                break
            received.append(data)
        ctx.trap(NR["wait"])
        return 0

    status = kernel.run_entry(main)
    assert WEXITSTATUS(status) == 0
    assert b"".join(received) == b"".join(chunks)
