"""Tests for layer 2 (pathname side) and layer 3 (directories)."""

import pytest

from repro.kernel.errno import EISDIR, SyscallError
from repro.kernel.ofile import O_CREAT, O_RDONLY, O_WRONLY, SEEK_SET
from repro.kernel.proc import WEXITSTATUS
from repro.kernel.sysent import number_of
from repro.toolkit import run_under_agent
from repro.toolkit.directory import Directory
from repro.toolkit.pathnames import (
    Pathname,
    PathnameSet,
    PathSymbolicSyscall,
)

NR = {n: number_of(n) for n in (
    "open", "read", "write", "close", "stat", "unlink", "mkdir",
    "getdirentries", "lseek", "rename", "chdir", "link", "symlink",
    "readlink",
)}


class PrefixPathname(Pathname):
    pass


class PrefixPathnameSet(PathnameSet):
    """Remaps /virtual/... to /tmp/real/... — a toy name space agent."""

    def getpn(self, path, flags=0):
        if path.startswith("/virtual/"):
            return Pathname(self, "/tmp/real/" + path[len("/virtual/"):])
        return Pathname(self, path)


class PrefixAgent(PathSymbolicSyscall):
    DESCRIPTOR_SET_CLASS = PrefixPathnameSet


@pytest.fixture
def remap_world(world):
    world.mkdir_p("/tmp/real")
    world.write_file("/tmp/real/data.txt", "relocated")
    return world


def test_getpn_is_the_central_remap_point(remap_world):
    """Supplying a new getpn() changes the treatment of all pathnames."""

    def main(ctx):
        PrefixAgent().attach(ctx)
        fd = ctx.trap(NR["open"], "/virtual/data.txt", O_RDONLY, 0)
        assert ctx.trap(NR["read"], fd, 100) == b"relocated"
        record = ctx.trap(NR["stat"], "/virtual/data.txt")
        assert record.st_size == 9
        return 0

    assert WEXITSTATUS(remap_world.run_entry(main)) == 0


def test_remap_covers_creation_and_removal(remap_world):
    def main(ctx):
        PrefixAgent().attach(ctx)
        fd = ctx.trap(NR["open"], "/virtual/new.txt", O_WRONLY | O_CREAT, 0o644)
        ctx.trap(NR["write"], fd, b"made")
        ctx.trap(NR["close"], fd)
        ctx.trap(NR["unlink"], "/virtual/data.txt")
        return 0

    remap_world.run_entry(main)
    assert remap_world.read_file("/tmp/real/new.txt") == b"made"
    assert not remap_world.lookup_host("/tmp/real").contains("data.txt")


def test_two_pathname_calls_remap_both(remap_world):
    def main(ctx):
        PrefixAgent().attach(ctx)
        ctx.trap(NR["rename"], "/virtual/data.txt", "/virtual/renamed.txt")
        return 0

    remap_world.run_entry(main)
    real = remap_world.lookup_host("/tmp/real")
    assert real.contains("renamed.txt")
    assert not real.contains("data.txt")


def test_pathname_agent_transparent(world):
    status = run_under_agent(
        world, PrefixAgent(), "/bin/sh",
        ["sh", "-c", "echo hi > /tmp/x; cat /tmp/x"],
    )
    assert WEXITSTATUS(status) == 0
    assert world.console.take_output().decode() == "hi\n"


# -- directory layer --------------------------------------------------------

class HidingDirectory(Directory):
    """Filters entries beginning with '.' plus a configured name."""

    HIDE = "secret"

    def next_direntry(self, fd):
        while True:
            status = super().next_direntry(fd)
            if not status:
                return 0
            if self.direntry.d_name == self.HIDE:
                continue
            return 1


class DirAgentSet(PathnameSet):
    DIRECTORY_CLASS = HidingDirectory


class DirAgent(PathSymbolicSyscall):
    DESCRIPTOR_SET_CLASS = DirAgentSet


def test_directory_layer_wraps_opened_directories(world):
    world.mkdir_p("/tmp/d")
    world.write_file("/tmp/d/visible", "")
    world.write_file("/tmp/d/secret", "")

    def main(ctx):
        agent = DirAgent()
        agent.attach(ctx)
        fd = ctx.trap(NR["open"], "/tmp/d", O_RDONLY, 0)
        names = [e.d_name for e in ctx.trap(NR["getdirentries"], fd, 100)]
        assert "visible" in names
        assert "secret" not in names
        # read() on a directory is refused by the layer
        try:
            ctx.trap(NR["read"], fd, 10)
        except SyscallError as err:
            assert err.errno == EISDIR
        else:
            return 1
        return 0

    assert WEXITSTATUS(world.run_entry(main)) == 0


def test_directory_rewind(world):
    world.mkdir_p("/tmp/rw")
    world.write_file("/tmp/rw/one", "")

    def main(ctx):
        agent = DirAgent()
        agent.attach(ctx)
        fd = ctx.trap(NR["open"], "/tmp/rw", O_RDONLY, 0)
        first = ctx.trap(NR["getdirentries"], fd, 100)
        assert ctx.trap(NR["getdirentries"], fd, 100) == []
        ctx.trap(NR["lseek"], fd, 0, SEEK_SET)
        again = ctx.trap(NR["getdirentries"], fd, 100)
        assert [e.d_name for e in again] == [e.d_name for e in first]
        return 0

    assert WEXITSTATUS(world.run_entry(main)) == 0


def test_default_directory_iteration_matches_kernel(world):
    """The default next_direntry must reproduce the kernel's listing."""
    world.mkdir_p("/tmp/cmp")
    for name in ("b", "a", "c"):
        world.write_file("/tmp/cmp/" + name, "")

    class PlainDirSet(PathnameSet):
        DIRECTORY_CLASS = Directory

    class PlainDirAgent(PathSymbolicSyscall):
        DESCRIPTOR_SET_CLASS = PlainDirSet

    def with_agent(ctx):
        PlainDirAgent().attach(ctx)
        fd = ctx.trap(NR["open"], "/tmp/cmp", O_RDONLY, 0)
        return [e.d_name for e in ctx.trap(NR["getdirentries"], fd, 100)]

    def bare(ctx):
        fd = ctx.trap(NR["open"], "/tmp/cmp", O_RDONLY, 0)
        return [e.d_name for e in ctx.trap(NR["getdirentries"], fd, 100)]

    results = {}

    def main(ctx):
        results["bare"] = bare(ctx)
        return 0

    world.run_entry(main)

    def main2(ctx):
        results["agent"] = with_agent(ctx)
        return 0

    world.run_entry(main2)
    assert results["agent"] == results["bare"]
