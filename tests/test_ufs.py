"""Unit tests for the filesystem object: links, refcounts, reclamation."""

import pytest

from repro.kernel.clock import Clock
from repro.kernel.cred import Cred
from repro.kernel.errno import ENOENT, ENOSPC, SyscallError
from repro.kernel.ufs import Filesystem, ROOT_INO

ROOT = Cred(0, 0)


@pytest.fixture
def fs():
    return Filesystem(Clock())


def test_root_is_ino_2(fs):
    assert fs.root.ino == ROOT_INO
    assert fs.root.lookup(".") == ROOT_INO
    assert fs.root.lookup("..") == ROOT_INO
    assert fs.root.nlink == 2


def test_link_bumps_nlink(fs):
    node = fs.create_file(0o644, ROOT)
    assert node.nlink == 0
    fs.link(fs.root, "a", node)
    assert node.nlink == 1
    fs.link(fs.root, "b", node)
    assert node.nlink == 2


def test_unlink_reclaims_when_unreferenced(fs):
    node = fs.create_file(0o644, ROOT)
    fs.link(fs.root, "f", node)
    ino = node.ino
    fs.unlink(fs.root, "f", node)
    with pytest.raises(SyscallError):
        fs.inode(ino)


def test_unlink_while_open_defers_reclaim(fs):
    node = fs.create_file(0o644, ROOT)
    fs.link(fs.root, "f", node)
    fs.incref(node)  # an open file holds it
    fs.unlink(fs.root, "f", node)
    assert fs.inode(node.ino) is node  # still alive
    node.write_at(0, b"still writable")
    fs.decref(node)
    with pytest.raises(SyscallError):
        fs.inode(node.ino)


def test_second_link_keeps_inode(fs):
    node = fs.create_file(0o644, ROOT)
    fs.link(fs.root, "a", node)
    fs.link(fs.root, "b", node)
    fs.unlink(fs.root, "a", node)
    assert fs.inode(node.ino) is node
    assert node.nlink == 1


def test_mkdir_in_nlink_accounting(fs):
    before = fs.root.nlink
    sub = fs.mkdir_in(fs.root, "d", 0o755, ROOT)
    assert sub.nlink == 2  # "." plus the entry in root
    assert fs.root.nlink == before + 1  # the child's ".."
    assert sub.lookup("..") == fs.root.ino


def test_inode_numbers_unique(fs):
    inos = {fs.create_file(0o644, ROOT).ino for _ in range(50)}
    assert len(inos) == 50


def test_out_of_inodes(fs):
    small = Filesystem(Clock(), max_inodes=3)
    small.create_file(0o644, ROOT)
    small.create_file(0o644, ROOT)
    with pytest.raises(SyscallError) as exc:
        small.create_file(0o644, ROOT)
    assert exc.value.errno == ENOSPC


def test_creation_uses_effective_ids(fs):
    cred = Cred(10, 20, euid=30, egid=40)
    node = fs.create_file(0o644, cred)
    assert node.uid == 30
    assert node.gid == 40


def test_live_inode_count(fs):
    base = fs.live_inode_count()
    node = fs.create_file(0o644, ROOT)
    fs.link(fs.root, "f", node)
    assert fs.live_inode_count() == base + 1
    fs.unlink(fs.root, "f", node)
    assert fs.live_inode_count() == base


def test_stale_inode_lookup_raises(fs):
    with pytest.raises(SyscallError) as exc:
        fs.inode(99999)
    assert exc.value.errno == ENOENT
