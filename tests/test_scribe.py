"""Tests for the Scribe-like document formatter."""

import pytest

from repro.kernel.proc import WEXITSTATUS
from repro.programs.scribe import (
    LINE_WIDTH,
    _fill_paragraph,
    _hyphenation_points,
    _justify,
    _parse_directive,
)


# -- unit: the formatting primitives ---------------------------------------

def test_parse_directive():
    assert _parse_directive("@chapter(Introduction)") == ("chapter", "Introduction")
    assert _parse_directive("@begin(itemize)") == ("begin", "itemize")
    assert _parse_directive("@sync") == ("sync", "")
    assert _parse_directive("plain text") is None


def test_justify_fills_exact_width():
    line = _justify(["alpha", "beta", "gamma"], 30)
    assert len(line) == 30
    assert line.startswith("alpha") and line.endswith("gamma")


def test_justify_single_word():
    assert _justify(["word"], 20) == "word"
    assert _justify([], 20) == ""


def test_justify_distributes_extra_left_first():
    line = _justify(["a", "b", "c"], 9)
    # 3 letters + 6 spaces over 2 gaps -> 3 each
    assert line == "a    b   c" [: len(line)] or len(line) == 9


def test_fill_paragraph_respects_width():
    words = "word " * 60
    lines = _fill_paragraph(words, LINE_WIDTH)
    assert all(len(line) <= LINE_WIDTH for line in lines)
    # All full lines are exactly justified to the width.
    for line in lines[:-1]:
        assert len(line) == LINE_WIDTH


def test_fill_paragraph_indent():
    lines = _fill_paragraph("word " * 40, LINE_WIDTH, indent=5)
    assert all(line.startswith("     ") for line in lines)


def test_fill_paragraph_empty():
    assert _fill_paragraph("", LINE_WIDTH) == []


def test_hyphenation_points_found():
    points = _hyphenation_points("interposition")
    assert points
    assert all(2 <= i < len("interposition") - 2 for i, _ in points)


def test_hyphenation_short_word():
    assert _hyphenation_points("cat") == []


# -- end-to-end formatting --------------------------------------------------------

@pytest.fixture
def formatted(world):
    world.mkdir_p("/home/mbj/doc")
    world.write_file(
        "/home/mbj/doc/test.mss",
        "@make(report)\n"
        "\n"
        "@chapter(First Things)\n"
        "@label(ch1)\n"
        "\n"
        "This chapter cites the toolkit paper @cite(jones93) and points\n"
        "at itself via section @ref(ch1). @index(toolkit)\n"
        "\n"
        "@section(Details)\n"
        "\n"
        "@begin(itemize)\n"
        "First item text.\n"
        "\n"
        "Second item text.\n"
        "@end(itemize)\n"
        "\n"
        "@begin(verbatim)\n"
        "    exact   spacing   kept\n"
        "@end(verbatim)\n"
        "\n"
        "@chapter(Second Things)\n"
        "\n"
        "Closing words about agents and interposition systems of interest.\n",
    )
    status = world.run(
        "/usr/bin/scribe",
        ["scribe", "/home/mbj/doc/test.mss", "/home/mbj/doc/test.doc"],
    )
    assert WEXITSTATUS(status) == 0
    return world, world.read_file("/home/mbj/doc/test.doc").decode()


def test_chapters_numbered(formatted):
    _, doc = formatted
    assert "Chapter 1.  First Things" in doc
    assert "Chapter 2.  Second Things" in doc


def test_sections_numbered(formatted):
    _, doc = formatted
    assert "1.1  Details" in doc


def test_citations_numbered(formatted):
    _, doc = formatted
    assert "[1]" in doc
    assert "@cite" not in doc


def test_references_resolved(formatted):
    _, doc = formatted
    assert "@ref" not in doc
    assert "References" in doc
    assert "Jones" in doc  # the bibliography entry for jones93


def test_index_rendered(formatted):
    _, doc = formatted
    assert "Index" in doc
    assert "toolkit" in doc
    assert "@index" not in doc


def test_verbatim_preserved(formatted):
    _, doc = formatted
    assert "    exact   spacing   kept" in doc


def test_itemize_bullets(formatted):
    _, doc = formatted
    assert "   - First item text." in doc


def test_toc_written(formatted):
    world, _ = formatted
    toc = world.read_file("/home/mbj/doc/test.doc.toc").decode()
    assert "Table of Contents" in toc
    assert "Chapter 1." in toc


def test_includes_resolved(world):
    world.mkdir_p("/home/mbj/inc")
    world.write_file("/home/mbj/inc/part.mss", "@chapter(Included)\nBody text.\n")
    world.write_file(
        "/home/mbj/inc/top.mss", "@make(report)\n@include(part.mss)\n"
    )
    status = world.run(
        "/usr/bin/scribe",
        ["scribe", "/home/mbj/inc/top.mss", "/home/mbj/inc/top.doc"],
    )
    assert WEXITSTATUS(status) == 0
    assert b"Included" in world.read_file("/home/mbj/inc/top.doc")


def test_formatting_is_deterministic(world):
    from repro.workloads import boot_world, format_dissertation

    k1 = boot_world()
    format_dissertation.setup(k1)
    format_dissertation.run(k1)
    doc1 = k1.read_file(format_dissertation.OUTPUT)

    k2 = boot_world()
    format_dissertation.setup(k2)
    format_dissertation.run(k2)
    doc2 = k2.read_file(format_dissertation.OUTPUT)
    assert doc1 == doc2


def test_missing_manuscript_fails(world):
    status = world.run("/usr/bin/scribe", ["scribe", "/no/such.mss"])
    assert WEXITSTATUS(status) != 0


def test_usage_without_args(world):
    status = world.run("/usr/bin/scribe", ["scribe"])
    assert WEXITSTATUS(status) == 2
