"""Property-based tests: namei against a reference resolver.

Random directory trees (optionally with relative symlinks) are built in
both the simulated filesystem and a pure-Python dict model; random path
strings must resolve identically in both.
"""

import posixpath

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.kernel import Kernel
from repro.kernel.cred import Cred
from repro.kernel.errno import SyscallError
from repro.kernel.namei import lookup

_settings = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_seg = st.sampled_from(["a", "b", "c"])
_paths = st.lists(_seg, min_size=1, max_size=3).map("/".join)

#: a small fixed tree: directories and files
TREE_DIRS = ("a", "a/b", "a/b/c", "c")
TREE_FILES = ("a/f.txt", "a/b/g.txt", "c/h.txt")


class _Ctx:
    def __init__(self, kernel):
        self.cwd = kernel.rootfs.root
        self.root_dir = kernel.rootfs.root
        self.cred = Cred(0, 0)


def _build(kernel):
    for d in TREE_DIRS:
        kernel.mkdir_p("/" + d)
    for f in TREE_FILES:
        kernel.write_file("/" + f, f)


def _model_resolve(path):
    """Reference resolution over the fixed tree, component by component
    (normpath-style shortcuts would wrongly erase nonexistent
    intermediates before checking them, which namei never does)."""
    parts = [p for p in path.split("/") if p]
    current = ""  # "" is the root
    for index, component in enumerate(parts):
        if component == ".":
            continue
        if component == "..":
            current = "/".join(current.split("/")[:-1]) if current else ""
            continue
        candidate = (current + "/" + component).lstrip("/")
        if candidate in TREE_DIRS:
            current = candidate
        elif candidate in TREE_FILES:
            if index != len(parts) - 1:
                return ("enoent", None)  # a file mid-path: ENOTDIR
            return ("file", "/" + candidate)
        else:
            return ("enoent", None)
    return ("dir", "/" + current if current else "/")


@given(
    raw=st.lists(
        st.sampled_from(["a", "b", "c", "f.txt", "g.txt", "h.txt", ".", ".."]),
        min_size=1,
        max_size=5,
    )
)
@_settings
def test_lookup_matches_reference_model(raw):
    path = "/" + "/".join(raw)
    kernel = Kernel()
    _build(kernel)
    ctx = _Ctx(kernel)
    kind, normal = _model_resolve(path)
    try:
        node = lookup(ctx, path)
    except SyscallError:
        assert kind == "enoent", path
        return
    if kind == "dir":
        assert node.is_dir(), path
        if normal != "/":
            assert node is kernel.lookup_host(normal)
    elif kind == "file":
        assert node.is_reg(), path
        assert bytes(node.data).decode() == normal.lstrip("/")
    else:
        raise AssertionError("lookup succeeded for %r" % path)


@given(target=_paths, link_at=st.sampled_from(["a/link", "c/link", "link"]))
@_settings
def test_symlink_resolution_equals_target_resolution(target, link_at):
    """Resolving through a symlink equals resolving its target directly."""
    kernel = Kernel()
    _build(kernel)
    ctx = _Ctx(kernel)
    fs = kernel.rootfs
    from repro.kernel.namei import namei

    parent = namei(ctx, "/" + link_at, want_parent=True, follow=False)
    if parent.inode is not None:
        return  # name taken in this draw; skip
    link = fs.create_symlink("/" + target, Cred(0, 0))
    fs.link(parent.parent, parent.name, link)

    try:
        direct = lookup(ctx, "/" + target)
    except SyscallError as err:
        try:
            lookup(ctx, "/" + link_at)
        except SyscallError as err2:
            assert err2.errno == err.errno
            return
        raise AssertionError("link resolved but target did not")
    via_link = lookup(ctx, "/" + link_at)
    assert via_link is direct
