"""Property-based tests for the transactional agent.

Two equivalences over random operation sequences:

* committed transaction == running the same operations directly;
* aborted transaction   == not running them at all.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.agents.txn import TxnAgent
from repro.kernel.errno import SyscallError
from repro.kernel.proc import WEXITSTATUS
from repro.programs.libc import Sys
from repro.toolkit import run_under_agent
from repro.workloads import boot_world

_settings = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_names = st.sampled_from(["a", "b", "c", "d"])

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), _names, st.binary(min_size=1, max_size=30)),
        st.tuples(st.just("append"), _names, st.binary(min_size=1, max_size=20)),
        st.tuples(st.just("unlink"), _names, st.just(b"")),
    ),
    min_size=1,
    max_size=10,
)

BASE = "/home/mbj/txnprop"


def _apply(sys, ops):
    for op, name, payload in ops:
        path = BASE + "/" + name
        try:
            if op == "write":
                sys.write_whole(path, payload)
            elif op == "append":
                sys.append_whole(path, payload)
            elif op == "unlink":
                sys.unlink(path)
        except SyscallError:
            pass  # unlink of a missing name etc.
    return 0


def _snapshot(kernel):
    state = {}
    try:
        node = kernel.lookup_host(BASE)
    except SyscallError:
        return state
    for name in node.entries:
        if name in (".", ".."):
            continue
        state[name] = kernel.read_file(BASE + "/" + name)
    return state


def _seed_world():
    kernel = boot_world()
    kernel.mkdir_p(BASE)
    kernel.write_file(BASE + "/a", "initial-a")
    kernel.write_file(BASE + "/b", "initial-b")
    return kernel


@given(ops=_ops)
@_settings
def test_commit_equals_direct_execution(ops):
    direct = _seed_world()
    direct.run_entry(lambda ctx: _apply(Sys(ctx), ops))
    expected = _snapshot(direct)

    txn = _seed_world()
    agent = TxnAgent(scratch_dir="/tmp/txnprop", outcome="commit")

    def loader(ctx):
        agent.attach(ctx)
        return _apply(Sys(ctx), ops)

    status = txn.run_entry(loader)
    assert WEXITSTATUS(status) == 0
    assert _snapshot(txn) == expected


@given(ops=_ops)
@_settings
def test_abort_equals_no_execution(ops):
    kernel = _seed_world()
    before = _snapshot(kernel)
    agent = TxnAgent(scratch_dir="/tmp/txnprop", outcome="abort")

    def loader(ctx):
        agent.attach(ctx)
        return _apply(Sys(ctx), ops)

    status = kernel.run_entry(loader)
    assert WEXITSTATUS(status) == 0
    assert _snapshot(kernel) == before


@given(ops=_ops)
@_settings
def test_client_view_inside_txn_matches_direct(ops):
    """While the transaction runs, the client's view of the directory
    matches what direct execution would have produced."""
    direct = _seed_world()
    direct.run_entry(lambda ctx: _apply(Sys(ctx), ops))
    expected = _snapshot(direct)

    txn = _seed_world()
    agent = TxnAgent(scratch_dir="/tmp/txnprop", outcome="abort")
    observed = {}

    def loader(ctx):
        agent.attach(ctx)
        sys = Sys(ctx)
        _apply(sys, ops)
        for name in sys.listdir(BASE):
            observed[name] = sys.read_whole(BASE + "/" + name)
        return 0

    txn.run_entry(loader)
    assert observed == expected
