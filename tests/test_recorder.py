"""Tests for deterministic record/replay and time-travel debugging.

Covers the ``.rrlog`` format (:mod:`repro.obs.rrlog`), the recorder's
turn-token protocol (:mod:`repro.obs.recorder`), the record→replay
determinism proof over seeded chaos scenarios and the format workload
(:mod:`repro.obs.timetravel`), structured divergence on tampered logs,
and fault bisection.
"""

import pytest

from repro.kernel import Kernel
from repro.obs import rrlog
from repro.obs.recorder import RECORD, REPLAY, Recorder, ReplayDivergence
from repro.obs.timetravel import (
    bisect_run,
    compare_runs,
    record_run,
    replay_run,
    scenario_kwargs,
    scenario_meta,
    verify_roundtrip,
)
from repro.workloads import boot_world

# -- the .rrlog format ---------------------------------------------------


def test_decision_line_roundtrip():
    d = rrlog.Decision("T", 3, "open")
    assert d.line() == "T 3 open"
    assert rrlog.Decision.parse("T 3 open") == d
    assert d.matches("T", 3, "open")
    assert not d.matches("T", 3, "close")


def test_decision_value_may_contain_spaces():
    d = rrlog.Decision.parse("F 2 namei.lookup EIO")
    assert d.kind == "F" and d.pid == 2
    assert d.value == "namei.lookup EIO"


def test_decision_rejects_unknown_kind():
    with pytest.raises(ValueError):
        rrlog.Decision("X", 1, "huh")
    with pytest.raises(ValueError):
        rrlog.Decision.parse("not a decision line")


def test_rrlog_dump_parse_roundtrip():
    meta = {"seed": "7", "workload": "files"}
    decisions = [rrlog.Decision("P", 0, "1"),
                 rrlog.Decision("T", 1, "open"),
                 rrlog.Decision("W", 1, "pipe")]
    text = rrlog.dump(meta, decisions)
    assert text.splitlines()[0] == "# rrlog v1"
    meta2, decisions2 = rrlog.parse(text)
    assert meta2 == meta
    assert decisions2 == decisions


def test_rrlog_file_roundtrip(tmp_path):
    path = str(tmp_path / "run.rrlog")
    meta = scenario_meta(3, workload="pipes")
    decisions = [rrlog.Decision("T", 1, "fork")]
    rrlog.write_file(path, meta, decisions)
    meta2, decisions2 = rrlog.read_file(path)
    assert meta2 == meta
    assert decisions2 == decisions
    assert scenario_kwargs(meta2)["seed"] == 3


def test_rrlog_rejects_garbage():
    with pytest.raises(ValueError):
        rrlog.parse("not an rrlog\n")
    with pytest.raises(ValueError):
        rrlog.parse("# rrlog v999\n")


def test_scenario_meta_roundtrip():
    meta = scenario_meta(11, policy="fail-stop", mechanism="rail",
                         workload="procs", agent_rate=0.1, site_rate=0.02)
    kwargs = scenario_kwargs(meta)
    assert kwargs == {"seed": 11, "policy": "fail-stop",
                      "mechanism": "rail", "workload": "procs",
                      "agent_rate": 0.1, "site_rate": 0.02}
    with pytest.raises(ValueError):
        scenario_kwargs({"seed": "1"})


# -- recorder construction and wiring ------------------------------------


def test_recorder_mode_validation():
    with pytest.raises(ValueError):
        Recorder(mode="rewind")
    with pytest.raises(ValueError):
        Recorder(mode=REPLAY)  # replay needs the log


def test_kernel_obs_spec_installs_recorder():
    kernel = Kernel(obs="metrics,record")
    assert kernel.recorder is not None
    assert kernel.recorder.mode == RECORD
    snap = kernel.obs.snapshot()
    assert snap["recorder"]["mode"] == RECORD


def test_obs_snapshot_reports_recorder_off():
    kernel = Kernel(obs="metrics")
    assert kernel.recorder is None
    assert kernel.obs.snapshot()["recorder"] == {"enabled": False}


def test_kernel_stats_reports_recorder(world):
    from repro.programs.libc import Sys

    docs = []

    def main(ctx):
        docs.append(Sys(ctx).syscall("kernel_stats"))
        return 0

    world.run_entry(main)
    assert docs[0]["recorder"] == {"enabled": False}

    recorded = Kernel(obs="metrics,record")
    stats = recorded.recorder.stats()
    assert stats["diverged"] is False and stats["passive"] is False


# -- the determinism proof -----------------------------------------------


def test_record_produces_decisions():
    result = record_run(seed=0, workload="files")
    assert len(result.decisions) > 50
    kinds = {d.kind for d in result.decisions}
    assert "T" in kinds          # traps dominate the log
    assert "P" in kinds          # pid allocations are validated
    stats = result.recorder.stats()
    assert stats["mode"] == RECORD and not stats["diverged"]


@pytest.mark.parametrize("case", [
    dict(seed=0, policy="fail-open", mechanism="wrapper", workload="files"),
    dict(seed=1, policy="quarantine", mechanism="rail", workload="pipes",
         site_rate=0.05),
    dict(seed=2, policy="fail-stop", mechanism="wrapper", workload="procs"),
])
def test_replay_is_bit_identical(case):
    recorded, replayed = verify_roundtrip(**case)
    assert recorded.events == replayed.events
    assert recorded.report.to_dict() == replayed.report.to_dict()
    # the whole log was consumed — nothing recorded went unreplayed
    assert replayed.recorder.position == len(recorded.decisions)


def test_format_workload_replays_bit_identical():
    recorded, replayed = verify_roundtrip(
        seed=0, workload="format", agent_rate=0.0, site_rate=0.0)
    assert len(recorded.events) > 1000
    assert compare_runs(recorded, replayed) == []


# -- divergence ----------------------------------------------------------


def _tamper(decisions, kind="T"):
    """Flip the value of the last *kind* decision; returns its index."""
    for i in range(len(decisions) - 1, -1, -1):
        if decisions[i].kind == kind:
            tampered = list(decisions)
            tampered[i] = rrlog.Decision(kind, decisions[i].pid,
                                         decisions[i].value + "-tampered")
            return tampered, i
    raise AssertionError("no %r decision to tamper with" % kind)


def test_tampered_log_raises_structured_divergence():
    recorded = record_run(seed=0, workload="files")
    tampered, index = _tamper(recorded.decisions)
    with pytest.raises(ReplayDivergence) as exc:
        replay_run(recorded.meta, tampered, stall_seconds=3.0)
    err = exc.value
    assert err.position <= index
    assert err.expected is not None or err.reason
    assert "diverged at decision" in str(err)
    assert err.pid >= 0


def test_divergent_replay_drains_the_world():
    # After divergence the recorder goes passive so every thread
    # free-runs to completion: the report is still built, invariants
    # still walk, and the divergence is available on the recorder.
    recorded = record_run(seed=0, workload="files")
    tampered, _ = _tamper(recorded.decisions)
    result = replay_run(recorded.meta, tampered, strict=False,
                        stall_seconds=3.0)
    assert result.recorder.divergence is not None
    assert result.recorder.passive_reason == "divergence"
    assert result.report.outcome is not None
    stats = result.recorder.stats()
    assert stats["diverged"] is True and stats["passive"] is True


def test_divergence_emits_obs_event():
    recorded = record_run(seed=0, workload="files")
    tampered, _ = _tamper(recorded.decisions)
    result = replay_run(recorded.meta, tampered, strict=False,
                        stall_seconds=3.0)
    # META_EVENT_KINDS are filtered from result.events by design, so
    # check the recorder recorded the divergence itself instead.
    assert "expected" in str(result.recorder.divergence)


# -- bisection -----------------------------------------------------------


def _scenario_with_faults():
    """A scenario whose recording contains fault-site firings."""
    for seed in range(30):
        result = record_run(seed=seed, policy="quarantine",
                            mechanism="rail", workload="pipes",
                            site_rate=0.05)
        if any(d.kind == "F" for d in result.decisions):
            return result
    raise AssertionError("no seed in range produced a fault firing")


def test_bisect_finds_outcome_changing_fault():
    recorded = _scenario_with_faults()
    result = bisect_run(recorded.meta, recorded.decisions)
    fault_count = sum(1 for d in recorded.decisions if d.kind == "F")
    if result.found:
        assert 0 <= result.index < fault_count
        assert recorded.decisions[result.position].kind == "F"
        assert result.flipped != result.baseline
        assert "BisectResult" in repr(result)
    else:
        # every recorded fault was harmless for this seed — the probe
        # must then report baseline == flipped for all of them
        assert result.baseline == result.flipped


def test_flip_is_not_a_divergence():
    recorded = _scenario_with_faults()
    flipped = replay_run(recorded.meta, recorded.decisions, flip_fault=0,
                         strict=False)
    assert flipped.recorder.passive_reason in ("flip", "")
    assert flipped.recorder.divergence is None


# -- the chaos CLI hint --------------------------------------------------


def test_chaos_failure_hint_is_pasteable():
    import importlib.util
    import os

    spec = importlib.util.spec_from_file_location(
        "chaos_cli", os.path.join(os.path.dirname(__file__), "..",
                                  "scripts", "chaos.py"))
    chaos_cli = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(chaos_cli)
    from repro.workloads.chaos import ChaosReport

    report = ChaosReport(21, "fail-open", "rail", "files")
    hint = chaos_cli._record_hint(report, 0.05, 0.01)
    assert hint.startswith("PYTHONPATH=src python scripts/replay.py record")
    assert "--seed 21" in hint and "--mechanism rail" in hint
