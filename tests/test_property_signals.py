"""Property-based tests for signal mask algebra and delivery rules."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.kernel import signals as sig
from repro.kernel.proc import WEXITSTATUS
from repro.kernel.sysent import number_of
from repro.workloads import boot_world

_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

NR = {n: number_of(n) for n in ("sigblock", "sigsetmask", "sigvec", "kill",
                                "getpid")}

_masks = st.integers(min_value=0, max_value=(1 << 31) - 1)
_catchable = st.sampled_from(
    [s for s in range(1, sig.NSIG) if s not in sig.UNCATCHABLE]
)


def _uncatchable_bits():
    bits = 0
    for s in sig.UNCATCHABLE:
        bits |= sig.sigmask(s)
    return bits


@given(first=_masks, second=_masks)
@_settings
def test_sigblock_is_bitwise_or(first, second):
    kernel = boot_world()

    def main(ctx):
        ctx.trap(NR["sigsetmask"], 0)
        ctx.trap(NR["sigblock"], first)
        old = ctx.trap(NR["sigblock"], second)
        expected_old = first & ~_uncatchable_bits()
        assert old == expected_old
        final = ctx.trap(NR["sigsetmask"], 0)
        assert final == (first | second) & ~_uncatchable_bits()
        return 0

    assert WEXITSTATUS(kernel.run_entry(main)) == 0


@given(mask=_masks)
@_settings
def test_kill_and_stop_never_blockable(mask):
    kernel = boot_world()

    def main(ctx):
        result = ctx.trap(NR["sigsetmask"], mask)
        final = ctx.trap(NR["sigsetmask"], 0)
        assert final & sig.sigmask(sig.SIGKILL) == 0
        assert final & sig.sigmask(sig.SIGSTOP) == 0
        return 0

    assert WEXITSTATUS(kernel.run_entry(main)) == 0


#: stop signals and SIGCONT cancel each other when posted (BSD rule),
#: so the ordering property uses the remaining catchable signals
_orderable = st.sampled_from(
    [
        s
        for s in range(1, sig.NSIG)
        if s not in sig.UNCATCHABLE
        and s not in (sig.SIGTSTP, sig.SIGTTIN, sig.SIGTTOU, sig.SIGCONT)
    ]
)


@given(signums=st.lists(_orderable, min_size=1, max_size=5, unique=True))
@_settings
def test_blocked_signals_deliver_in_number_order(signums):
    """Multiple pended signals are delivered lowest-number-first when
    unblocked, matching the kernel's take_signal scan order."""
    kernel = boot_world()
    delivered = []

    def main(ctx):
        mask = 0
        for signum in signums:
            ctx.trap(NR["sigvec"], signum,
                     lambda s: delivered.append(s), 0)
            mask |= sig.sigmask(signum)
        ctx.trap(NR["sigsetmask"], mask)
        for signum in signums:
            ctx.trap(NR["kill"], ctx.proc.pid, signum)
        assert delivered == []
        ctx.trap(NR["sigsetmask"], 0)
        ctx.trap(NR["getpid"])  # a trap boundary delivers everything
        return 0

    assert WEXITSTATUS(kernel.run_entry(main)) == 0
    assert delivered == sorted(signums)


@given(signum=_catchable)
@_settings
def test_handler_runs_with_its_signal_blocked(signum):
    kernel = boot_world()
    observed = []

    def main(ctx):
        def handler(s):
            observed.append(ctx.proc.sigmask & sig.sigmask(s) != 0)

        ctx.trap(NR["sigvec"], signum, handler, 0)
        ctx.trap(NR["kill"], ctx.proc.pid, signum)
        # After delivery the mask is restored.
        observed.append(ctx.proc.sigmask & sig.sigmask(signum) == 0)
        return 0

    assert WEXITSTATUS(kernel.run_entry(main)) == 0
    assert observed == [True, True]
