"""Tests for compiled agent-stack dispatch (repro.kernel.compile).

A compiled chain may only fire when it is observably identical to the
layer tower it replaces: no recorder, no obs, no guard, no dfstrace, no
ktrace flag, and no staleness (vector or ``_down`` change since the
build).  These tests pin the table's life cycle, every stand-down
condition, exact behavioural parity (errnos, EINVAL wording, signal
delivery), the batched ``trap_many``/``readv``/``writev`` entry points,
and — via a hypothesis lockstep machine and a record/replay roundtrip —
that compiled-on and compiled-off worlds are indistinguishable.
"""

import pytest

from repro.kernel import Kernel
from repro.kernel import signals as sig
from repro.kernel.compile import _COMPILED_DISABLED, build_compiled_dispatch
from repro.kernel.errno import EBADF, EINVAL, SyscallError
from repro.kernel.ofile import O_CREAT, O_RDONLY, O_TRUNC, O_WRONLY
from repro.kernel.proc import WEXITSTATUS
from repro.kernel.sysent import number_of
from repro.kernel.trap import UserContext
from repro.toolkit.pathnames import PathSymbolicSyscall
from repro.toolkit.symbolic import SymbolicSyscall

NR = {n: number_of(n) for n in (
    "getpid", "open", "close", "read", "write", "readv", "writev",
    "unlink", "rename", "mkdir", "rmdir", "stat", "lseek",
    "task_set_emulation", "sigvec", "kill", "exit",
)}

#: every fast path except compiled dispatch — the tower baseline
TOWER = "namecache,trap_fast,zero_copy"


def run(kernel, entry):
    return WEXITSTATUS(kernel.run_entry(entry))


def _attached(kernel, agent_cls=SymbolicSyscall):
    """A persistent interposed context: agent attached, not exec'd."""
    proc = kernel._create_initial_process()
    ctx = UserContext(kernel, proc)
    agent = agent_cls()
    agent.attach(ctx, [])
    return ctx, agent


# -- life cycle ------------------------------------------------------------


def test_compiled_fires_for_transparent_agent():
    k = Kernel()
    ctx, _ = _attached(k)
    pid = ctx.trap(NR["getpid"])
    for _ in range(4):
        assert ctx.trap(NR["getpid"]) == pid
    assert k.trap_compiled_total >= 5
    assert ctx.proc.compiled_dispatch is not None
    assert NR["getpid"] in ctx.proc.compiled_dispatch


def test_disabled_flag_uses_sentinel():
    k = Kernel(fastpaths=TOWER)
    ctx, _ = _attached(k)
    assert isinstance(ctx.trap(NR["getpid"]), int)
    assert ctx.proc.compiled_dispatch is _COMPILED_DISABLED
    assert k.trap_compiled_total == 0
    assert k.down_compiled_total == 0


def test_opaque_agent_entry_not_compiled_but_downcalls_are():
    from repro.agents.trace import TraceSymbolicSyscall

    k = Kernel()
    ctx, _ = _attached(k, TraceSymbolicSyscall)
    ctx.trap(NR["getpid"])
    # The trace agent overrides handle_syscall — opaque at entry...
    assert k.trap_compiled_total == 0
    # ...but its log writes and forwards run through flattened chains.
    assert k.down_compiled_total > 0


def test_task_set_emulation_invalidates_table():
    k = Kernel()
    ctx, _ = _attached(k)
    ctx.trap(NR["getpid"])
    assert ctx.proc.compiled_dispatch is not None

    def handler(handler_ctx, number, args):
        return 4242

    ctx.trap(NR["task_set_emulation"], [NR["getpid"]], handler)
    assert ctx.proc.compiled_dispatch is None  # invalidated
    assert ctx.trap(NR["getpid"]) == 4242      # opaque handler wins
    table = ctx.proc.compiled_dispatch         # rebuilt lazily
    assert NR["getpid"] not in table           # lambda is not boilerplate


def test_execve_resets_table():
    from repro.workloads import boot_world

    world = boot_world()
    seen = []

    def probe(ctx, argv, envp):
        seen.append(ctx.proc.compiled_dispatch)
        return 0

    world.register_program("probe", probe)
    world.install_binary("/bin/probe", "probe")
    assert WEXITSTATUS(world.run("/bin/probe", ["probe"])) == 0
    assert seen[0] is None  # native exec dropped it with the vector


def test_build_respects_flag():
    on = Kernel()
    off = Kernel(fastpaths=TOWER)
    ctx, _ = _attached(on)
    table = build_compiled_dispatch(on, ctx.proc)
    assert table is not _COMPILED_DISABLED
    assert NR["getpid"] in table
    ctx_off, _ = _attached(off)
    assert build_compiled_dispatch(off, ctx_off.proc) is _COMPILED_DISABLED


def test_down_epoch_retires_stale_chains():
    k = Kernel()
    ctx, first = _attached(k)
    ctx.trap(NR["getpid"])
    assert k.trap_compiled_total >= 1
    # Stacking a second agent re-registers the numbers: the vector
    # change invalidates this proc's table, and the _down mutation bumps
    # the global epoch so chains baked elsewhere also stand down.
    second = SymbolicSyscall()
    second.attach(ctx, [])
    assert ctx.proc.compiled_dispatch is None
    pid = ctx.trap(NR["getpid"])
    assert isinstance(pid, int)
    # The restacked chain compiles too (both layers are transparent).
    assert NR["getpid"] in ctx.proc.compiled_dispatch


# -- stand-down matrix -----------------------------------------------------


def test_obs_stands_down():
    from repro import obs

    k = Kernel()
    obs.enable(k)
    ctx, _ = _attached(k)
    ctx.trap(NR["getpid"])
    assert k.trap_compiled_total == 0
    assert k.down_compiled_total == 0
    assert k.obs.metrics.counter(("trap", "getpid")) >= 1


def test_ktrace_flag_stands_down():
    k = Kernel()
    ctx, _ = _attached(k)
    ctx.trap(NR["getpid"])
    before = k.trap_compiled_total
    ctx.proc.ktrace_on = True
    ctx.trap(NR["getpid"])
    assert k.trap_compiled_total == before
    ctx.proc.ktrace_on = False
    ctx.trap(NR["getpid"])
    assert k.trap_compiled_total == before + 1


def test_dfstrace_stands_down():
    from repro.kernel import dfstrace

    k = Kernel()
    ctx, _ = _attached(k)
    ctx.trap(NR["getpid"])
    before = (k.trap_compiled_total, k.down_compiled_total)
    dfstrace.enable(k)
    ctx.trap(NR["getpid"])
    assert (k.trap_compiled_total, k.down_compiled_total) == before
    dfstrace.disable(k)
    ctx.trap(NR["getpid"])
    assert k.trap_compiled_total == before[0] + 1


def test_guard_stands_down():
    k = Kernel(guard="fail-open")
    ctx, _ = _attached(k)
    assert isinstance(ctx.trap(NR["getpid"]), int)
    assert k.trap_compiled_total == 0


# -- behavioural parity ----------------------------------------------------


def _interposed_outcome(fastpaths, name, *args):
    k = Kernel() if fastpaths is None else Kernel(fastpaths=fastpaths)
    ctx, _ = _attached(k)
    try:
        return ("ok", ctx.trap(NR[name], *args))
    except SyscallError as err:
        return ("err", err.errno, str(err))
    except TypeError as err:
        # The tower's symbolic layer crashes on over-arity (the method
        # call itself fails); the compiled chain must crash identically.
        return ("crash", str(err))


@pytest.mark.parametrize("name,args", [
    ("getpid", (1, 2, 3, 4, 5)),   # over-arity: the tower's TypeError
    ("close", (99,)),              # EBADF through the descriptor layer
    ("stat", ("/missing",)),       # ENOENT through the pathname layer
    ("mkdir", ("/made",)),         # default mode filled by the layer
])
def test_outcome_parity(name, args):
    compiled = _interposed_outcome(None, name, *args)
    tower = _interposed_outcome(TOWER, name, *args)
    if name == "stat" and compiled[0] == "ok":
        pytest.fail("stat of /missing should fail")
    if name == "mkdir":
        assert compiled[0] == tower[0] == "ok"
        return
    assert compiled == tower


def test_over_arity_crash_parity():
    # Argument counts outside the sys_* signature's band are exactly
    # where the tower raises TypeError; the compiled fill must bail to
    # the original handler before any terminal work so the crash is
    # byte-identical.
    compiled = _interposed_outcome(None, "getpid", 1, 2, 3, 4, 5)
    tower = _interposed_outcome(TOWER, "getpid", 1, 2, 3, 4, 5)
    assert compiled == tower
    assert compiled[0] == "crash"


def test_kernel_einval_is_errno_only_both_ways():
    # The kernel's messageful EINVAL (empty iovec) is consumed by the
    # numeric layer on its way back up; the compiled normalization must
    # strip it identically.
    outcomes = {}
    for flags in (None, TOWER):
        k = Kernel() if flags is None else Kernel(fastpaths=flags)
        k.write_file("/e.txt", b"payload")
        ctx, _ = _attached(k)
        fd = ctx.trap(NR["open"], "/e.txt", O_RDONLY)
        try:
            ctx.trap(NR["readv"], fd, [])
        except SyscallError as err:
            outcomes[flags] = (err.errno, str(err))
        ctx.trap(NR["close"], fd)
    assert outcomes[None] == outcomes[TOWER]
    assert outcomes[None][0] == EINVAL
    assert "iovec" not in outcomes[None][1]


def test_signals_delivered_after_compiled_trap():
    k = Kernel()
    delivered = []

    def main(ctx):
        agent = SymbolicSyscall()
        agent.attach(ctx, [])
        ctx.trap(NR["sigvec"], sig.SIGUSR1,
                 lambda s: delivered.append(s), 0)
        before = k.trap_compiled_total
        ctx.trap(NR["kill"], ctx.proc.pid, sig.SIGUSR1)
        assert k.trap_compiled_total > before
        assert delivered == [sig.SIGUSR1]
        return 0

    assert run(k, main) == 0


# -- trap_many -------------------------------------------------------------


def test_trap_many_matches_sequential_uninterposed():
    k = Kernel()

    def main(ctx):
        fd = ctx.trap(NR["open"], "/batch.txt",
                      O_WRONLY | O_CREAT | O_TRUNC, 0o644)
        writes = [(fd, b"one "), (fd, b"two "), (fd, b"three")]
        assert ctx.trap_many(NR["write"], writes) == [4, 4, 5]
        ctx.trap(NR["close"], fd)
        return 0

    assert run(k, main) == 0
    assert k.read_file("/batch.txt") == b"one two three"


def test_trap_many_matches_sequential_interposed():
    results = {}
    for flags in (None, TOWER):
        k = Kernel() if flags is None else Kernel(fastpaths=flags)
        ctx, _ = _attached(k)
        fd = ctx.trap(NR["open"], "/b.txt",
                      O_WRONLY | O_CREAT | O_TRUNC, 0o644)
        out = ctx.trap_many(NR["write"], [(fd, b"x" * n)
                                          for n in (1, 2, 3, 4)])
        ctx.trap(NR["close"], fd)
        results[flags] = (out, k.read_file("/b.txt"))
    assert results[None] == results[TOWER] == ([1, 2, 3, 4], b"x" * 10)


def test_trap_many_error_aborts_at_failing_call():
    k = Kernel()
    ctx, _ = _attached(k)
    fd = ctx.trap(NR["open"], "/part.txt",
                  O_WRONLY | O_CREAT | O_TRUNC, 0o644)
    with pytest.raises(SyscallError) as caught:
        ctx.trap_many(NR["write"], [(fd, b"kept"), (99, b"lost")])
    assert caught.value.errno == EBADF
    ctx.trap(NR["close"], fd)
    # The call before the failure completed, exactly as a loop would.
    assert k.read_file("/part.txt") == b"kept"


def test_trap_many_delivers_signal_mid_batch():
    k = Kernel()
    delivered = []

    def main(ctx):
        ctx.trap(NR["sigvec"], sig.SIGUSR1,
                 lambda s: delivered.append(s), 0)
        kills = [(ctx.proc.pid, sig.SIGUSR1)] * 3
        assert ctx.trap_many(NR["kill"], kills) == [0, 0, 0]
        # Each kill's pending signal was delivered at that call's
        # boundary, not bunched at the end of the batch.
        assert delivered == [sig.SIGUSR1] * 3
        return 0

    assert run(k, main) == 0


def test_trap_many_falls_back_under_obs():
    from repro import obs

    k = Kernel()
    obs.enable(k)
    ctx, _ = _attached(k)
    assert ctx.trap_many(NR["getpid"], [()] * 3) == [ctx.proc.pid] * 3
    assert k.obs.metrics.counter(("trap", "getpid")) >= 3
    assert k.trap_compiled_total == 0


# -- readv / writev through agent stacks (satellite) -----------------------


def _vector_io_run(fastpaths, agents_factory):
    from repro.workloads import boot_world
    from tests.test_agent_stacks import run_stacked

    world = (boot_world() if fastpaths is None
             else boot_world(fastpaths=fastpaths))
    world.write_file("/data.bin", b"abcdefghijklmnopqrstuvwxyz")
    outcome = {}

    def vectored(ctx, argv, envp):
        fd = ctx.trap(NR["open"], "/out.bin",
                      O_WRONLY | O_CREAT | O_TRUNC, 0o644)
        outcome["wrote"] = ctx.trap(
            NR["writev"], fd, [b"alpha ", b"beta ", b"gamma"])
        ctx.trap(NR["close"], fd)
        rfd = ctx.trap(NR["open"], "/data.bin", O_RDONLY)
        outcome["buffers"] = ctx.trap(NR["readv"], rfd, [5, 5, 100, 5])
        ctx.trap(NR["close"], rfd)
        return 0

    world.register_program("vectored", vectored)
    world.install_binary("/bin/vectored", "vectored")
    status = run_stacked(world, agents_factory(), "/bin/vectored",
                         ["vectored"])
    outcome["status"] = WEXITSTATUS(status)
    outcome["out"] = world.read_file("/out.bin")
    return outcome


def _trace_stack():
    from repro.agents.trace import TraceSymbolicSyscall

    return [TraceSymbolicSyscall(log_path="/dev/null")]


def _union_txn_stack():
    from repro.agents.txn import TxnAgent
    from repro.agents.union_dirs import UnionAgent

    return [UnionAgent(), TxnAgent(scratch_dir="/tmp/vec.txn",
                                   outcome="commit")]


@pytest.mark.parametrize("factory", [_trace_stack, _union_txn_stack],
                         ids=["trace", "union+txn"])
def test_vector_io_identical_compiled_on_off(factory):
    compiled = _vector_io_run(None, factory)
    tower = _vector_io_run(TOWER, factory)
    assert compiled == tower
    assert compiled["status"] == 0
    assert compiled["wrote"] == 16
    assert compiled["out"] == b"alpha beta gamma"
    # Short-read cutoff: the 100-byte fragment drains the file, so the
    # trailing fragment is never attempted.
    assert compiled["buffers"] == [b"abcde", b"fghij",
                                   b"klmnopqrstuvwxyz"]


# -- hypothesis lockstep (satellite) ---------------------------------------

try:
    from hypothesis import HealthCheck, settings
    from hypothesis.stateful import RuleBasedStateMachine, rule
    import hypothesis.strategies as strat

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships with the image
    HAVE_HYPOTHESIS = False


if HAVE_HYPOTHESIS:

    _NAMES = strat.sampled_from(["a", "b", "dir1", "deep"])
    _PARENTS = strat.sampled_from(["/", "/dir1", "/dir1/deep"])
    _PATHS = strat.builds(
        lambda parent, name: parent.rstrip("/") + "/" + name,
        _PARENTS, _NAMES)

    class CompiledEquivalence(RuleBasedStateMachine):
        """Random syscall sequences against two interposed kernels —
        compiled dispatch on vs off — in lock step; every outcome,
        errno, and counter-visible piece of state must match.
        """

        def __init__(self):
            super().__init__()
            self.contexts = []
            for flags in (None, TOWER):
                kernel = (Kernel() if flags is None
                          else Kernel(fastpaths=flags))
                ctx, _ = _attached(kernel, PathSymbolicSyscall)
                self.contexts.append(ctx)

        def _both(self, name, *args):
            outcomes = []
            for ctx in self.contexts:
                try:
                    value = ctx.trap(NR[name], *args)
                    if name == "stat":
                        value = (value.st_ino, value.st_mode,
                                 value.st_nlink, value.st_size)
                    outcomes.append(("ok", value))
                except SyscallError as err:
                    outcomes.append(("err", err.errno))
            assert outcomes[0] == outcomes[1], (
                "%s%r diverged: compiled=%r tower=%r"
                % (name, args, outcomes[0], outcomes[1]))
            return outcomes[0]

        @rule(path=_PATHS)
        def creat(self, path):
            outcomes = []
            for ctx in self.contexts:
                try:
                    fd = ctx.trap(NR["open"], path,
                                  O_WRONLY | O_CREAT | O_TRUNC, 0o644)
                    ctx.trap(NR["close"], fd)
                    outcomes.append(("ok", fd))
                except SyscallError as err:
                    outcomes.append(("err", err.errno))
            assert outcomes[0] == outcomes[1], outcomes

        @rule(path=_PATHS)
        def mkdir(self, path):
            self._both("mkdir", path, 0o755)

        @rule(path=_PATHS)
        def mkdir_default_mode(self, path):
            # Exercises the compiled default-fill against the tower's.
            self._both("mkdir", path)

        @rule(path=_PATHS)
        def unlink(self, path):
            self._both("unlink", path)

        @rule(path=_PATHS)
        def rmdir(self, path):
            self._both("rmdir", path)

        @rule(src=_PATHS, dst=_PATHS)
        def rename(self, src, dst):
            self._both("rename", src, dst)

        @rule(path=_PATHS)
        def stat(self, path):
            self._both("stat", path)

        @rule(path=_PATHS, sizes=strat.lists(
                strat.integers(min_value=1, max_value=64),
                min_size=1, max_size=4))
        def vector_read(self, path, sizes):
            outcomes = []
            for ctx in self.contexts:
                try:
                    fd = ctx.trap(NR["open"], path, O_RDONLY)
                    buffers = ctx.trap(NR["readv"], fd, sizes)
                    ctx.trap(NR["close"], fd)
                    outcomes.append(("ok", buffers))
                except SyscallError as err:
                    outcomes.append(("err", err.errno))
            assert outcomes[0] == outcomes[1], outcomes

        def teardown(self):
            for path in ("/", "/dir1", "/dir1/deep"):
                self._both("stat", path)

    CompiledEquivalence.TestCase.settings = settings(
        max_examples=20, stateful_step_count=25, deadline=None,
        suppress_health_check=[HealthCheck.too_slow])

    TestCompiledEquivalence = CompiledEquivalence.TestCase


# -- record/replay (satellite) ---------------------------------------------


def test_record_replay_roundtrip_with_compiled_enabled():
    """A chaos scenario on the default kernel (compiled dispatch on)
    must still record and replay bit-identically: under the recorder
    every compiled chain stands down, so the decision log and event
    stream are exactly the tower's."""
    from repro.obs.timetravel import verify_roundtrip

    recorded, replayed = verify_roundtrip(seed=1107, workload="files")
    assert recorded.report.outcome == replayed.report.outcome
    assert recorded.events == replayed.events


def test_obs_streams_identical_compiled_on_off():
    """With tracing live the compiled path stands down entirely, so the
    event streams of compiled-on and compiled-off kernels match tuple
    for tuple."""
    streams = []
    for flags in (None, TOWER):
        kernel = Kernel(obs="metrics,trace") if flags is None else \
            Kernel(obs="metrics,trace", fastpaths=flags)
        seen = []
        kernel.obs.bus.subscribe(seen.append)
        ctx, _ = _attached(kernel, PathSymbolicSyscall)
        ctx.trap(NR["mkdir"], "/spot", 0o755)
        try:
            ctx.trap(NR["stat"], "/nope")
        except SyscallError:
            pass
        streams.append([e.to_tuple() for e in seen])
    assert streams[0] == streams[1]
    assert streams[0], "expected a non-empty event stream"
