"""Tests for the compiler pipeline: cpp, cc1, as, ld, and the cc driver."""

import pytest

from repro.kernel.proc import WEXITSTATUS
from repro.programs.cc import (
    _assemble,
    _codegen,
    _function_name,
    _parse_object,
    _replace_identifier,
    _strip_comments,
)


# -- unit tests of the passes ------------------------------------------------

def test_strip_block_comments():
    assert _strip_comments("a /* gone */ b") == "a   b"
    assert _strip_comments("x // line comment\ny") == "x \ny"
    assert _strip_comments("/* multi\nline */z") == " z"


def test_replace_identifier_whole_words_only():
    assert _replace_identifier("MAX + MAXIMUM", "MAX", "9") == "9 + MAXIMUM"
    assert _replace_identifier("xMAX", "MAX", "9") == "xMAX"


def test_function_name_parsing():
    assert _function_name("int main()") == "main"
    assert _function_name("static long *helper(int x)") == "helper"
    assert _function_name("") is None
    assert _function_name("123()") is None


def test_codegen_emits_globl_and_ops():
    asm, errors = _codegen("int main() { return 0; }")
    assert not errors
    assert ".globl main" in asm
    assert "main:" in asm
    assert any(line.startswith("\tret") for line in asm)


def test_codegen_call_instruction():
    asm, _ = _codegen("int main() { call helper(1); }")
    assert "\tcall helper" in asm


def test_codegen_syntax_error_reported():
    _, errors = _codegen("12bad() { ; }")
    assert errors


def test_assemble_symbols_and_relocations():
    lines = _assemble(".globl f\nf:\n\tcall g\n\tret 0x1\n")
    text = "\n".join(lines)
    assert text.startswith("!object")
    assert "sym T f 0" in text
    assert "rel 0 g" in text


def test_parse_object_roundtrip():
    lines = _assemble(".globl f\nf:\n\teval 0x10\n")
    symbols, relocations, code = _parse_object("\n".join(lines), "t.o")
    assert symbols == {"f": ("T", 0)}
    assert relocations == []
    assert len(code) == 1


def test_parse_object_bad_magic():
    with pytest.raises(ValueError):
        _parse_object("not an object", "bad.o")


# -- end-to-end through the simulated world ------------------------------------

@pytest.fixture
def src_world(world):
    world.mkdir_p("/home/mbj/cc")
    world.write_file(
        "/home/mbj/cc/prog.c",
        '#include "defs.h"\n'
        "int helper(int v) { v = v * FACTOR; return v; }\n"
        "int main() { int v = 1; call helper(v); call printf(v); return 0; }\n",
    )
    world.write_file("/home/mbj/cc/defs.h", "#define FACTOR 3\n")
    return world


def test_cc_builds_executable(src_world, sh):
    code, out = sh("cd /home/mbj/cc; cc -o prog prog.c")
    assert code == 0, out
    image = src_world.read_file("/home/mbj/cc/prog").decode()
    assert image.startswith("!executable")
    assert "sym T main" in image
    assert "sym T helper" in image


def test_cc_cleans_temporaries(src_world, sh):
    sh("cd /home/mbj/cc; cc -o prog prog.c")
    leftovers = [n for n in src_world.lookup_host("/tmp").entries
                 if n.startswith("cc")]
    assert leftovers == []


def test_cc_undefined_symbol_fails(src_world, sh):
    src_world.write_file(
        "/home/mbj/cc/bad.c", "int main() { call nowhere(1); return 0; }\n"
    )
    code, out = sh("cd /home/mbj/cc; cc -o bad bad.c")
    assert code != 0
    assert "undefined symbol nowhere" in out


def test_cc_missing_include_fails(src_world, sh):
    src_world.write_file(
        "/home/mbj/cc/noinc.c", '#include "missing.h"\nint main() { return 0; }\n'
    )
    code, out = sh("cd /home/mbj/cc; cc -o noinc noinc.c")
    assert code != 0
    assert "cpp:" in out


def test_cc_multiple_sources_link_together(src_world, sh):
    src_world.write_file(
        "/home/mbj/cc/main2.c",
        "int main() { call external(5); return 0; }\n",
    )
    src_world.write_file(
        "/home/mbj/cc/lib2.c", "int external(int v) { return v; }\n"
    )
    code, out = sh("cd /home/mbj/cc; cc -o two main2.c lib2.c")
    assert code == 0, out
    assert b"sym T external" in src_world.read_file("/home/mbj/cc/two")


def test_cc_duplicate_symbol_fails(src_world, sh):
    src_world.write_file("/home/mbj/cc/dup1.c", "int f(int v) { return v; }\nint main() { return 0; }\n")
    src_world.write_file("/home/mbj/cc/dup2.c", "int f(int v) { return v; }\n")
    code, out = sh("cd /home/mbj/cc; cc -o dup dup1.c dup2.c")
    assert code != 0
    assert "multiple definition" in out


def test_cc_requires_main(src_world, sh):
    src_world.write_file("/home/mbj/cc/nomain.c", "int f(int v) { return v; }\n")
    code, out = sh("cd /home/mbj/cc; cc -o nm nomain.c")
    assert code != 0
    assert "undefined symbol main" in out


def test_cc_no_inputs(sh):
    code, out = sh("cc")
    assert code == 2
    assert "no input files" in out


def test_includes_found_in_usr_include(src_world, sh):
    src_world.write_file(
        "/home/mbj/cc/stdio_user.c",
        '#include "stdio.h"\nint main() { return NULL; }\n',
    )
    code, out = sh("cd /home/mbj/cc; cc -o su stdio_user.c")
    assert code == 0, out


def test_libc_symbols_resolve(src_world, sh):
    # printf comes from /usr/lib/libc.o
    code, out = sh("cd /home/mbj/cc; cc -o prog prog.c")
    assert code == 0
    image = src_world.read_file("/home/mbj/cc/prog").decode()
    assert "sym T printf" in image


def test_output_is_executable_mode(src_world, sh):
    sh("cd /home/mbj/cc; cc -o prog prog.c")
    assert src_world.lookup_host("/home/mbj/cc/prog").mode & 0o111
