"""Tests for scatter/gather I/O (readv/writev)."""

import pytest

from repro.kernel.errno import EINVAL, SyscallError
from repro.kernel.proc import WEXITSTATUS
from repro.programs.libc import O_CREAT, O_RDONLY, O_RDWR, Sys
from repro.toolkit import run_under_agent


def _with_sys(kernel, body):
    def main(ctx):
        return body(Sys(ctx))

    return WEXITSTATUS(kernel.run_entry(main))


def test_writev_gathers(world):
    def body(sys):
        fd = sys.open("/tmp/gather", O_RDWR | O_CREAT, 0o644)
        total = sys.writev(fd, [b"one ", b"two ", b"three"])
        assert total == 13
        return 0

    assert _with_sys(world, body) == 0
    assert world.read_file("/tmp/gather") == b"one two three"


def test_readv_scatters(world):
    world.write_file("/tmp/scatter", "abcdefghij")

    def body(sys):
        fd = sys.open("/tmp/scatter", O_RDONLY)
        parts = sys.readv(fd, [3, 4, 10])
        assert parts == [b"abc", b"defg", b"hij"]
        return 0

    assert _with_sys(world, body) == 0


def test_readv_stops_at_eof(world):
    world.write_file("/tmp/short", "ab")

    def body(sys):
        fd = sys.open("/tmp/short", O_RDONLY)
        parts = sys.readv(fd, [1, 5, 5])
        assert parts == [b"a", b"b"]  # second buffer short; third skipped
        return 0

    assert _with_sys(world, body) == 0


def test_vector_calls_share_offset(world):
    world.write_file("/tmp/off", "0123456789")

    def body(sys):
        fd = sys.open("/tmp/off", O_RDONLY)
        sys.readv(fd, [2, 2])
        assert sys.read(fd, 2) == b"45"  # offset advanced by the vector
        return 0

    assert _with_sys(world, body) == 0


def test_empty_iovec_rejected(world):
    world.write_file("/tmp/e", "x")

    def body(sys):
        fd = sys.open("/tmp/e", O_RDONLY)
        for bad in ([], "nope"):
            try:
                sys.readv(fd, bad)
                return 1
            except SyscallError as err:
                assert err.errno == EINVAL
        return 0

    assert _with_sys(world, body) == 0


def test_vector_io_through_transform_agent(world):
    """The descriptor layer builds readv/writev on read/write, so agents
    that change read/write behaviour cover the vector forms for free."""
    from repro.agents.transform import CompressAgent

    world.mkdir_p("/zip")
    agent = CompressAgent("/zip")

    def loader(ctx):
        agent.attach(ctx)
        sys = Sys(ctx)
        fd = sys.open("/zip/v", O_RDWR | O_CREAT, 0o644)
        sys.writev(fd, [b"compressed ", b"vector ", b"write"])
        sys.close(fd)
        fd = sys.open("/zip/v", O_RDONLY)
        parts = sys.readv(fd, [11, 7, 5])
        assert b"".join(parts) == b"compressed vector write"
        sys.close(fd)
        return 0

    status = world.run_entry(loader)
    assert WEXITSTATUS(status) == 0
    stored = world.read_file("/zip/v")
    assert stored.startswith(b"#xform1\n")  # stored compressed
