"""Savepoints, nested transactions, and the commit protocol's hardening
(docs/ROBUSTNESS.md; paper §1.4, "one such transactional program
invocation could occur within another").

Covers:

* ``savepoint``/``rollback_to``/``release`` restoring or keeping the
  overlay exactly — including under an armed kernel fault mid-write;
* the ``begin_nested``/``commit_nested``/``abort_nested`` mapping of
  nested transactions onto savepoints;
* commit/abort hooks and ``hook_failures``;
* the commit deadline: an expired ``timeout_usec`` records every
  remaining effect as ``EDEADLK`` and leaves the level below untouched;
* satellite fixes: ``rename`` through the overlay (whiteout clearing,
  mode carry) and ``commit_failures`` recording refused effects;
* a hypothesis round-trip: savepoint + random ops + rollback_to is
  observationally a no-op.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.agents.txn import TxnAgent
from repro.kernel.errno import EDEADLK, ENOTEMPTY, SyscallError
from repro.kernel.faultsite import FaultSet
from repro.kernel.proc import WEXITSTATUS
from repro.programs.libc import Sys
from repro.toolkit import run_under_agent
from repro.workloads import boot_world

BASE = "/home/mbj/spwork"


def _seed_world():
    kernel = boot_world()
    kernel.mkdir_p(BASE)
    kernel.write_file(BASE + "/a", "initial-a")
    kernel.write_file(BASE + "/b", "initial-b")
    return kernel


def _agent():
    return TxnAgent(scratch_dir="/tmp/sp.scratch", outcome="commit")


def _view(sys):
    """The client's view of BASE: name -> contents."""
    state = {}
    for name in sys.listdir(BASE):
        try:
            state[name] = sys.read_whole(BASE + "/" + name)
        except SyscallError:
            state[name] = "<dir>"
    return state


def _below(kernel):
    """The committed state of BASE as the level below sees it."""
    state = {}
    try:
        node = kernel.lookup_host(BASE)
    except SyscallError:
        return state
    for name in node.entries:
        if name in (".", ".."):
            continue
        try:
            state[name] = kernel.read_file(BASE + "/" + name)
        except SyscallError:
            state[name] = "<dir>"
    return state


def _run(kernel, agent, body):
    """Attach *agent*, run *body(sys)* in-world, return the exit status."""

    def loader(ctx):
        agent.attach(ctx)
        return body(Sys(ctx))

    status = kernel.run_entry(loader)
    assert WEXITSTATUS(status) == 0
    return status


# -- rollback exactness --------------------------------------------------


def test_rollback_restores_the_exact_outer_overlay():
    kernel = _seed_world()
    agent = _agent()
    seen = {}

    def body(sys):
        sys.write_whole(BASE + "/a", b"outer-a")
        sys.unlink(BASE + "/b")
        sys.mkdir(BASE + "/d")
        seen["outer"] = _view(sys)
        sp = agent.savepoint()
        sys.write_whole(BASE + "/a", b"inner-a")  # COW of the outer shadow
        sys.write_whole(BASE + "/new", b"inner-new")
        sys.unlink(BASE + "/a")
        sys.rmdir(BASE + "/d")
        sys.write_whole(BASE + "/b", b"inner-b")  # un-whiteout + fresh shadow
        seen["inner"] = _view(sys)
        agent.rollback_to(sp)
        seen["rolled"] = _view(sys)
        return 0

    _run(kernel, agent, body)
    assert seen["inner"] != seen["outer"]
    assert seen["rolled"] == seen["outer"]
    # The commit applied the *outer* overlay only.
    below = _below(kernel)
    assert below["a"] == b"outer-a"
    assert "b" not in below
    assert below["d"] == "<dir>"
    assert "new" not in below


def test_rollback_under_an_armed_fault_mid_write():
    """A kernel fault tearing an inner write must not damage rollback:
    the undo log restores the outer overlay exactly."""
    kernel = _seed_world()
    agent = _agent()
    seen = {}

    def body(sys):
        sys.write_whole(BASE + "/a", b"outer-a")
        seen["outer"] = _view(sys)
        sp = agent.savepoint()
        # The next fresh shadow allocation below fails ENOSPC.
        kernel.arm_faults(FaultSet({"ufs.make": "once"}))
        try:
            sys.write_whole(BASE + "/burst", b"doomed")
        except SyscallError:
            pass
        finally:
            kernel.disarm_faults()
        agent.rollback_to(sp)
        seen["rolled"] = _view(sys)
        return 0

    _run(kernel, agent, body)
    assert seen["rolled"] == seen["outer"]
    below = _below(kernel)
    assert below["a"] == b"outer-a"
    assert "burst" not in below


def test_release_keeps_the_inner_changes():
    kernel = _seed_world()
    agent = _agent()

    def body(sys):
        sp = agent.savepoint()
        sys.write_whole(BASE + "/a", b"kept")
        sys.unlink(BASE + "/b")
        agent.release(sp)
        return 0

    _run(kernel, agent, body)
    below = _below(kernel)
    assert below["a"] == b"kept"
    assert "b" not in below


def test_savepoints_nest_and_rollback_is_selective():
    kernel = _seed_world()
    agent = _agent()
    seen = {}

    def body(sys):
        sys.write_whole(BASE + "/a", b"level-0")
        outer = agent.savepoint("outer")
        sys.write_whole(BASE + "/a", b"level-1")
        agent.savepoint("inner")
        sys.write_whole(BASE + "/a", b"level-2")
        agent.rollback_to("inner")  # undoes level-2 only
        seen["after_inner"] = sys.read_whole(BASE + "/a")
        agent.rollback_to(outer)  # undoes level-1, destroys "inner"
        seen["after_outer"] = sys.read_whole(BASE + "/a")
        with pytest.raises(SyscallError):
            agent.rollback_to("inner")
        # SQL semantics: "outer" itself survives its own rollback.
        sys.write_whole(BASE + "/a", b"again")
        agent.rollback_to(outer)
        seen["again"] = sys.read_whole(BASE + "/a")
        return 0

    _run(kernel, agent, body)
    assert seen["after_inner"] == b"level-1"
    assert seen["after_outer"] == b"level-0"
    assert seen["again"] == b"level-0"
    assert _below(kernel)["a"] == b"level-0"


def test_rollback_to_unknown_savepoint_raises():
    kernel = _seed_world()
    agent = _agent()

    def body(sys):
        with pytest.raises(SyscallError):
            agent.rollback_to("nope")
        return 0

    _run(kernel, agent, body)


# -- nested transactions (§1.4) ------------------------------------------


def test_nested_txn_abort_inside_commit():
    kernel = _seed_world()
    agent = _agent()

    def body(sys):
        sys.write_whole(BASE + "/a", b"outer")
        agent.begin_nested()
        sys.write_whole(BASE + "/a", b"inner")
        sys.write_whole(BASE + "/x", b"inner-only")
        agent.abort_nested()
        return 0

    _run(kernel, agent, body)
    below = _below(kernel)
    assert below["a"] == b"outer"
    assert "x" not in below


def test_nested_txn_commit_folds_into_parent():
    kernel = _seed_world()
    agent = _agent()

    def body(sys):
        agent.begin_nested()
        sys.write_whole(BASE + "/x", b"folded")
        agent.commit_nested()
        return 0

    _run(kernel, agent, body)
    assert _below(kernel)["x"] == b"folded"


def test_nested_txn_commit_then_outer_abort_discards_all():
    kernel = _seed_world()
    before = _below(kernel)
    agent = TxnAgent(scratch_dir="/tmp/sp.scratch", outcome="abort")

    def body(sys):
        agent.begin_nested()
        sys.write_whole(BASE + "/x", b"folded")
        agent.commit_nested()
        return 0

    _run(kernel, agent, body)
    assert _below(kernel) == before


# -- hooks ---------------------------------------------------------------


def test_commit_and_abort_hooks_fire_on_the_decision():
    calls = []
    kernel = _seed_world()
    agent = _agent()
    agent.on_commit(lambda: calls.append("commit"))
    agent.on_abort(lambda: calls.append("abort"))
    _run(kernel, agent, lambda sys: 0)
    assert calls == ["commit"]

    calls[:] = []
    kernel2 = _seed_world()
    agent2 = TxnAgent(scratch_dir="/tmp/sp.scratch", outcome="abort")
    agent2.on_commit(lambda: calls.append("commit"))
    agent2.on_abort(lambda: calls.append("abort"))
    _run(kernel2, agent2, lambda sys: 0)
    assert calls == ["abort"]


def test_hook_exception_is_contained_not_fatal():
    kernel = _seed_world()
    agent = _agent()

    def bad_hook():
        raise RuntimeError("hook bug")

    agent.on_commit(bad_hook)

    def body(sys):
        sys.write_whole(BASE + "/a", b"still-lands")
        return 0

    _run(kernel, agent, body)  # the client exits 0 despite the bad hook
    assert _below(kernel)["a"] == b"still-lands"
    assert len(agent.hook_failures) == 1
    fn, err = agent.hook_failures[0]
    assert fn is bad_hook
    assert isinstance(err, RuntimeError)


# -- the commit deadline -------------------------------------------------


def test_commit_deadline_expired_records_edeadlk_and_applies_nothing():
    kernel = _seed_world()
    before = _below(kernel)
    agent = _agent()

    def body(sys):
        sys.write_whole(BASE + "/a", b"too-late")
        sys.unlink(BASE + "/b")
        agent.commit(timeout_usec=0)  # the clock has moved by apply time
        return 0

    _run(kernel, agent, body)
    assert _below(kernel) == before  # nothing landed below
    assert len(agent.pset.commit_failures) == 2
    for _logical, err in agent.pset.commit_failures:
        assert err.errno == EDEADLK


def test_commit_with_generous_deadline_applies_fully():
    kernel = _seed_world()
    agent = _agent()
    agent.commit_timeout_usec = 10 ** 12

    def body(sys):
        sys.write_whole(BASE + "/a", b"in-time")
        return 0

    _run(kernel, agent, body)
    assert _below(kernel)["a"] == b"in-time"
    assert agent.pset.commit_failures == []


# -- satellite: rename through the overlay -------------------------------


def test_rename_onto_whiteout_survives_commit():
    """``rm b; mv a b`` inside the transaction: b must exist below with
    a's content after commit (the whiteout on b is cleared by the
    rename, not applied over it)."""
    kernel = _seed_world()
    agent = _agent()

    def body(sys):
        sys.unlink(BASE + "/b")
        sys.rename(BASE + "/a", BASE + "/b")
        return 0

    _run(kernel, agent, body)
    below = _below(kernel)
    assert below == {"b": b"initial-a"}


def test_rename_carries_the_in_txn_chmod():
    kernel = _seed_world()
    agent = _agent()

    def body(sys):
        sys.chmod(BASE + "/a", 0o700)
        sys.rename(BASE + "/a", BASE + "/c")
        return 0

    _run(kernel, agent, body)
    assert _below(kernel)["c"] == b"initial-a"
    assert kernel.lookup_host(BASE + "/c").mode & 0o777 == 0o700


def test_rename_under_shell_mv():
    kernel = _seed_world()
    agent = _agent()
    status = run_under_agent(
        kernel, agent, "/bin/sh",
        ["sh", "-c", "rm %s/b; mv %s/a %s/b" % (BASE, BASE, BASE)],
    )
    assert WEXITSTATUS(status) == 0
    assert _below(kernel) == {"b": b"initial-a"}


# -- satellite: commit_failures records refused effects ------------------


def test_commit_records_rmdir_refused_below():
    """An in-transaction rmdir of a directory that is non-empty below
    surfaces at commit as a recorded ENOTEMPTY, not a crash and not
    silence."""
    kernel = _seed_world()
    kernel.mkdir_p(BASE + "/full")
    kernel.write_file(BASE + "/full/keep", "kept")
    agent = _agent()

    def body(sys):
        sys.rmdir(BASE + "/full")
        return 0

    _run(kernel, agent, body)
    assert len(agent.pset.commit_failures) == 1
    logical, err = agent.pset.commit_failures[0]
    assert logical == BASE + "/full"
    assert err.errno == ENOTEMPTY
    # The refused directory (and its contents) survive below.
    assert _below(kernel)["full"] == "<dir>"
    assert kernel.read_file(BASE + "/full/keep") == b"kept"


def test_commit_skips_chmod_of_a_name_unlinked_in_txn():
    kernel = _seed_world()
    agent = _agent()

    def body(sys):
        sys.chmod(BASE + "/a", 0o600)
        sys.unlink(BASE + "/a")
        return 0

    _run(kernel, agent, body)
    assert "a" not in _below(kernel)
    # The post-unlink chmod's ENOENT is benign, not a recorded failure.
    assert agent.pset.commit_failures == []


# -- hypothesis: savepoint round-trip is a no-op -------------------------

_settings = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_names = st.sampled_from(["a", "b", "c", "d"])

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), _names,
                  st.binary(min_size=1, max_size=30)),
        st.tuples(st.just("append"), _names,
                  st.binary(min_size=1, max_size=20)),
        st.tuples(st.just("unlink"), _names, st.just(b"")),
        st.tuples(st.just("chmod"), _names, st.just(b"")),
    ),
    min_size=1,
    max_size=10,
)


def _apply(sys, ops):
    for op, name, payload in ops:
        path = BASE + "/" + name
        try:
            if op == "write":
                sys.write_whole(path, payload)
            elif op == "append":
                sys.append_whole(path, payload)
            elif op == "unlink":
                sys.unlink(path)
            elif op == "chmod":
                sys.chmod(path, 0o711)
        except SyscallError:
            pass


@given(outer=_ops, inner=_ops)
@_settings
def test_savepoint_rollback_round_trip_is_a_noop(outer, inner):
    """outer ops + (savepoint; inner ops; rollback) commits exactly what
    outer ops alone would have."""
    plain = _seed_world()
    agent_plain = _agent()

    def body_plain(sys):
        _apply(sys, outer)
        return 0

    _run(plain, agent_plain, body_plain)
    expected = _below(plain)

    wrapped = _seed_world()
    agent_wrapped = _agent()

    def body_wrapped(sys):
        _apply(sys, outer)
        sp = agent_wrapped.savepoint()
        _apply(sys, inner)
        agent_wrapped.rollback_to(sp)
        return 0

    _run(wrapped, agent_wrapped, body_wrapped)
    assert _below(wrapped) == expected
