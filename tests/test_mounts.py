"""Tests for mount support and cross-filesystem rules."""

import pytest

from repro.kernel.errno import EBUSY, EINVAL, EXDEV, SyscallError
from repro.kernel.sysent import number_of

NR = {n: number_of(n) for n in ("stat", "link", "rename", "open", "write",
                                "close", "mkdir")}


@pytest.fixture
def mounted(kernel):
    fs = kernel.new_filesystem()
    kernel.mkdir_p("/mnt")
    kernel.mount(fs, "/mnt")
    return kernel, fs


def test_mounted_fs_has_distinct_dev(mounted, run_entry):
    kernel, fs = mounted

    def main(ctx):
        root_dev = ctx.trap(NR["stat"], "/").st_dev
        mnt_dev = ctx.trap(NR["stat"], "/mnt").st_dev
        assert root_dev != mnt_dev
        return 0

    assert run_entry(main) == 0


def test_files_land_in_mounted_fs(mounted, run_entry):
    kernel, fs = mounted

    def main(ctx):
        fd = ctx.trap(NR["open"], "/mnt/newfile", 0x0201 | 0x0200, 0o644)
        ctx.trap(NR["write"], fd, b"on the new volume")
        ctx.trap(NR["close"], fd)
        return 0

    run_entry(main)
    node = kernel.lookup_host("/mnt/newfile")
    assert node.fs is fs


def test_mount_hides_underlying_contents(kernel):
    kernel.mkdir_p("/mnt")
    kernel.write_file("/mnt/underneath", "hidden")
    fs = kernel.new_filesystem()
    kernel.mount(fs, "/mnt")
    with pytest.raises(SyscallError):
        kernel.lookup_host("/mnt/underneath")
    kernel.umount("/mnt")
    assert kernel.read_file("/mnt/underneath") == b"hidden"


def test_double_mount_rejected(mounted):
    kernel, fs = mounted
    another = kernel.new_filesystem()
    with pytest.raises(SyscallError) as exc:
        kernel.mount(another, "/mnt")
    assert exc.value.errno == EBUSY
    kernel.mkdir_p("/mnt2")
    with pytest.raises(SyscallError) as exc:
        kernel.mount(fs, "/mnt2")  # fs already mounted elsewhere
    assert exc.value.errno == EBUSY


def test_umount_non_mountpoint(kernel):
    kernel.mkdir_p("/plain")
    with pytest.raises(SyscallError) as exc:
        kernel.umount("/plain")
    assert exc.value.errno == EINVAL


def test_link_across_filesystems_exdev(mounted, run_entry):
    kernel, fs = mounted
    kernel.write_file("/tmp/src", "x")

    def main(ctx):
        try:
            ctx.trap(NR["link"], "/tmp/src", "/mnt/dst")
        except SyscallError as err:
            return 10 if err.errno == EXDEV else 1
        return 1

    assert run_entry(main) == 10


def test_rename_across_filesystems_exdev(mounted, run_entry):
    kernel, fs = mounted
    kernel.write_file("/tmp/src2", "x")

    def main(ctx):
        try:
            ctx.trap(NR["rename"], "/tmp/src2", "/mnt/dst2")
        except SyscallError as err:
            return 10 if err.errno == EXDEV else 1
        return 1

    assert run_entry(main) == 10


def test_mkdir_inside_mounted_fs(mounted, run_entry):
    kernel, fs = mounted

    def main(ctx):
        ctx.trap(NR["mkdir"], "/mnt/sub", 0o755)
        assert ctx.trap(NR["stat"], "/mnt/sub").st_dev == ctx.trap(
            NR["stat"], "/mnt"
        ).st_dev
        return 0

    assert run_entry(main) == 0
