"""Tests for tee, sort, cmp, and resource-exhaustion behaviour."""

import pytest

from repro.kernel.errno import EMFILE, ENOSPC, SyscallError
from repro.kernel.proc import WEXITSTATUS
from repro.programs.libc import O_RDONLY, Sys


def test_tee_duplicates_stream(world, sh):
    world.write_file("/tmp/in", "teed line\n")
    code, out = sh("cat /tmp/in | tee /tmp/copy1 /tmp/copy2")
    assert code == 0
    assert out == "teed line\n"
    assert world.read_file("/tmp/copy1") == b"teed line\n"
    assert world.read_file("/tmp/copy2") == b"teed line\n"


def test_tee_append(world, sh):
    sh("echo first | tee /tmp/tlog")
    sh("echo second | tee -a /tmp/tlog")
    assert world.read_file("/tmp/tlog") == b"first\nsecond\n"


def test_sort_basic(world, sh):
    world.write_file("/tmp/unsorted", "pear\napple\nmango\n")
    code, out = sh("sort /tmp/unsorted")
    assert out == "apple\nmango\npear\n"


def test_sort_reverse_and_unique(world, sh):
    world.write_file("/tmp/dups", "b\na\nb\nc\na\n")
    code, out = sh("sort -u /tmp/dups")
    assert out == "a\nb\nc\n"
    code, out = sh("sort -r /tmp/dups")
    assert out == "c\nb\nb\na\na\n"


def test_sort_stdin(world, sh):
    world.write_file("/tmp/s", "2\n1\n3\n")
    code, out = sh("cat /tmp/s | sort")
    assert out == "1\n2\n3\n"


def test_cmp_equal_and_different(world, sh):
    world.write_file("/tmp/c1", "same content")
    world.write_file("/tmp/c2", "same content")
    world.write_file("/tmp/c3", "same cXntent")
    assert sh("cmp /tmp/c1 /tmp/c2")[0] == 0
    code, out = sh("cmp /tmp/c1 /tmp/c3")
    assert code == 1
    assert "differ: char 7" in out


def test_cmp_eof(world, sh):
    world.write_file("/tmp/c4", "short")
    world.write_file("/tmp/c5", "short but longer")
    code, out = sh("cmp /tmp/c4 /tmp/c5")
    assert code == 1
    assert "EOF" in out


def test_cmp_missing_file(world, sh):
    assert sh("cmp /tmp/absent /etc/passwd")[0] == 2


# -- resource exhaustion ---------------------------------------------------

def test_descriptor_table_exhaustion(world):
    def main(ctx):
        sys = Sys(ctx)
        fds = []
        try:
            while True:
                fds.append(sys.open("/dev/null", O_RDONLY))
        except SyscallError as err:
            assert err.errno == EMFILE
        assert len(fds) == 61  # 64 slots minus stdin/stdout/stderr
        # Closing one slot makes the table usable again.
        sys.close(fds.pop())
        sys.open("/dev/null", O_RDONLY)
        return 0

    assert WEXITSTATUS(world.run_entry(main)) == 0


def test_inode_exhaustion():
    from repro.kernel import Kernel

    kernel = Kernel()
    kernel.rootfs.max_inodes = kernel.rootfs.live_inode_count() + 2

    def main(ctx):
        sys = Sys(ctx)
        sys.write_whole("/tmp/one", "x")
        sys.write_whole("/tmp/two", "x")
        try:
            sys.write_whole("/tmp/three", "x")
            return 1
        except SyscallError as err:
            assert err.errno == ENOSPC
        # Freeing an inode makes room.
        sys.unlink("/tmp/one")
        sys.write_whole("/tmp/three", "x")
        return 0

    assert WEXITSTATUS(kernel.run_entry(main)) == 0


def test_exhaustion_surfaces_cleanly_through_shell(world):
    """A shell loop that leaks descriptors gets EMFILE, not a crash."""

    def main(ctx):
        sys = Sys(ctx)
        for _ in range(61):
            sys.open("/dev/null", O_RDONLY)
        # Now even the shell's own machinery is constrained; spawn_wait
        # still reports rather than crashing the world.
        from repro.programs.libc import exit_code

        status = sys.spawn_wait("/bin/echo", ["echo", "hi"])
        return exit_code(status)

    # The child inherits the full table; echo's write still works since
    # it needs no new descriptors.
    assert WEXITSTATUS(world.run_entry(main)) == 0
