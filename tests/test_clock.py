"""Unit tests for the virtual clock."""

import pytest

from repro.kernel.clock import Clock, Timeval, TRAP_TICK_USEC


def test_timeval_roundtrip():
    tv = Timeval(5, 250_000)
    assert Timeval.from_usec(tv.to_usec()) == tv


def test_timeval_from_usec_splits():
    tv = Timeval.from_usec(3_000_017)
    assert tv.tv_sec == 3
    assert tv.tv_usec == 17


def test_timeval_equality():
    assert Timeval(1, 2) == Timeval(1, 2)
    assert Timeval(1, 2) != Timeval(1, 3)


def test_clock_tick_advances():
    clock = Clock(epoch_usec=0)
    clock.tick()
    assert clock.usec() == TRAP_TICK_USEC


def test_clock_advance():
    clock = Clock(epoch_usec=0)
    clock.advance(1_500_000)
    assert clock.now() == Timeval(1, 500_000)


def test_clock_advance_rejects_negative():
    clock = Clock()
    with pytest.raises(ValueError):
        clock.advance(-1)


def test_clock_advance_zero_is_a_noop():
    # advance(0) is legal (a degenerate sleep) and leaves time alone.
    clock = Clock(epoch_usec=42)
    clock.advance(0)
    assert clock.usec() == 42


def test_clock_rejects_backwards_even_after_set():
    # settimeofday stepping backwards does not license advance() to:
    # the monotonic rule is about the *delta*, not the absolute value.
    clock = Clock()
    clock.set(Timeval(50, 0))
    with pytest.raises(ValueError):
        clock.advance(-1)
    assert clock.now() == Timeval(50, 0)


def test_clock_ticks_resume_from_stepped_time():
    # After a backwards step the clock ticks forward from the new base.
    clock = Clock(epoch_usec=100 * 1_000_000)
    clock.set(Timeval(50, 0))
    clock.tick()
    clock.advance(1_000_000)
    assert clock.usec() == 51 * 1_000_000 + TRAP_TICK_USEC


def test_clock_set_steps_absolute():
    clock = Clock()
    clock.set(Timeval(100, 7))
    assert clock.now() == Timeval(100, 7)
    clock.set(Timeval(50, 0))  # settimeofday may step backwards
    assert clock.now() == Timeval(50, 0)


def test_default_epoch_is_1992():
    clock = Clock()
    assert 690_000_000 < clock.now().tv_sec < 740_000_000
