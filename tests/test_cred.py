"""Unit tests for credentials and permission checks."""

import pytest

from repro.kernel import cred as C
from repro.kernel import stat as st
from repro.kernel.clock import Clock
from repro.kernel.errno import EACCES, EPERM, SyscallError
from repro.kernel.ufs import Filesystem


@pytest.fixture
def fs():
    return Filesystem(Clock())


def _file(fs, mode, uid=100, gid=10):
    node = fs.create_file(mode, C.Cred(uid, gid))
    node.uid = uid
    node.gid = gid
    return node


def test_owner_bits_apply_to_owner(fs):
    node = _file(fs, 0o700)
    owner = C.Cred(100, 10)
    C.check_access(node, owner, C.R_OK | C.W_OK | C.X_OK)


def test_owner_class_is_decisive(fs):
    # Owner with 0o077: owner bits (none) apply even though other bits allow.
    node = _file(fs, 0o077)
    owner = C.Cred(100, 10)
    with pytest.raises(SyscallError) as exc:
        C.check_access(node, owner, C.R_OK)
    assert exc.value.errno == EACCES


def test_group_bits_apply_to_group_member(fs):
    node = _file(fs, 0o640)
    member = C.Cred(200, 10)
    C.check_access(node, member, C.R_OK)
    with pytest.raises(SyscallError):
        C.check_access(node, member, C.W_OK)


def test_supplementary_groups_count(fs):
    node = _file(fs, 0o040, gid=55)
    member = C.Cred(200, 10, groups=[10, 55])
    C.check_access(node, member, C.R_OK)


def test_other_bits_apply_to_stranger(fs):
    node = _file(fs, 0o604)
    stranger = C.Cred(200, 20)
    C.check_access(node, stranger, C.R_OK)
    with pytest.raises(SyscallError):
        C.check_access(node, stranger, C.W_OK)


def test_root_bypasses_rw(fs):
    node = _file(fs, 0o000)
    root = C.Cred(0, 0)
    C.check_access(node, root, C.R_OK | C.W_OK)


def test_root_cannot_exec_nonexecutable(fs):
    node = _file(fs, 0o644)
    root = C.Cred(0, 0)
    with pytest.raises(SyscallError):
        C.check_access(node, root, C.X_OK)


def test_root_can_exec_if_any_x_bit(fs):
    node = _file(fs, 0o641)
    C.check_access(node, C.Cred(0, 0), C.X_OK)


def test_f_ok_always_passes(fs):
    node = _file(fs, 0o000)
    C.check_access(node, C.Cred(999, 999), C.F_OK)


def test_effective_uid_used(fs):
    node = _file(fs, 0o600)
    setuid_proc = C.Cred(200, 20, euid=100)
    C.check_access(node, setuid_proc, C.R_OK | C.W_OK)


def test_check_owner(fs):
    node = _file(fs, 0o644)
    C.check_owner(node, C.Cred(100, 10))
    C.check_owner(node, C.Cred(0, 0))
    with pytest.raises(SyscallError) as exc:
        C.check_owner(node, C.Cred(200, 10))
    assert exc.value.errno == EPERM


def test_cred_copy_is_deep_enough():
    cred = C.Cred(1, 2, groups=[2, 3])
    clone = cred.copy()
    clone.groups.append(4)
    assert cred.groups == [2, 3]


def test_cred_defaults():
    cred = C.Cred(5, 6)
    assert cred.euid == 5
    assert cred.egid == 6
    assert cred.groups == [6]
    assert not cred.is_superuser()
    assert C.Cred(1, 1, euid=0).is_superuser()
