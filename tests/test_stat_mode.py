"""Unit tests for mode bits and the Stat record."""

from repro.kernel import stat as st


def test_type_predicates_are_exclusive():
    modes = {
        st.S_IFREG: st.S_ISREG,
        st.S_IFDIR: st.S_ISDIR,
        st.S_IFLNK: st.S_ISLNK,
        st.S_IFCHR: st.S_ISCHR,
        st.S_IFBLK: st.S_ISBLK,
        st.S_IFIFO: st.S_ISFIFO,
        st.S_IFSOCK: st.S_ISSOCK,
    }
    for fmt, predicate in modes.items():
        mode = fmt | 0o644
        assert predicate(mode)
        for other_fmt, other_pred in modes.items():
            if other_fmt != fmt:
                assert not other_pred(mode)


def test_permission_constants():
    assert st.S_IRWXU == 0o700
    assert st.S_IRUSR | st.S_IWUSR | st.S_IXUSR == st.S_IRWXU
    assert st.ACCESSPERMS == 0o777
    assert st.DEFFILEMODE == 0o666


def test_setid_bits():
    assert st.S_ISUID == 0o4000
    assert st.S_ISGID == 0o2000
    assert st.S_ISVTX == 0o1000


def test_stat_defaults_zero():
    record = st.Stat()
    assert record.st_ino == 0
    assert record.st_size == 0
    assert record.st_mode == 0


def test_stat_fields_settable():
    record = st.Stat(st_ino=7, st_size=100, st_mode=st.S_IFREG | 0o644)
    assert record.st_ino == 7
    assert record.st_size == 100
    assert st.S_ISREG(record.st_mode)


def test_stat_copy_is_independent():
    record = st.Stat(st_ino=1, st_size=10)
    clone = record.copy()
    clone.st_size = 99
    assert record.st_size == 10
    assert clone.st_ino == 1


def test_stat_equality():
    a = st.Stat(st_ino=1, st_size=5)
    b = st.Stat(st_ino=1, st_size=5)
    c = st.Stat(st_ino=2, st_size=5)
    assert a == b
    assert a != c


def test_stat_repr_names_kind():
    assert "reg" in repr(st.Stat(st_mode=st.S_IFREG))
    assert "dir" in repr(st.Stat(st_mode=st.S_IFDIR))
    assert "lnk" in repr(st.Stat(st_mode=st.S_IFLNK))
