"""Unit tests for pathname resolution (namei)."""

import pytest

from repro.kernel import Kernel
from repro.kernel.cred import Cred
from repro.kernel.errno import (
    EACCES,
    ELOOP,
    ENAMETOOLONG,
    ENOENT,
    ENOTDIR,
    SyscallError,
)
from repro.kernel.namei import MAXPATHLEN, lookup, namei


class Ctx:
    def __init__(self, kernel, cwd=None, root=None, cred=None):
        self.kernel = kernel
        self.cwd = cwd if cwd is not None else kernel.rootfs.root
        self.root_dir = root if root is not None else kernel.rootfs.root
        self.cred = cred if cred is not None else Cred(0, 0)


@pytest.fixture
def kernel():
    k = Kernel()
    k.mkdir_p("/a/b/c")
    k.write_file("/a/b/c/file.txt", "data")
    k.write_file("/a/top.txt", "top")
    return k


@pytest.fixture
def ctx(kernel):
    return Ctx(kernel)


def test_absolute_lookup(ctx):
    node = lookup(ctx, "/a/b/c/file.txt")
    assert node.is_reg()
    assert bytes(node.data) == b"data"


def test_relative_lookup(kernel):
    ctx = Ctx(kernel, cwd=kernel.lookup_host("/a/b"))
    assert lookup(ctx, "c/file.txt").is_reg()


def test_dot_and_dotdot(ctx, kernel):
    assert lookup(ctx, "/a/./b/../b/c") is kernel.lookup_host("/a/b/c")


def test_root_dotdot_stays_at_root(ctx, kernel):
    assert lookup(ctx, "/../../..") is kernel.rootfs.root


def test_slash_resolves_to_root(ctx, kernel):
    result = namei(ctx, "/")
    assert result.inode is kernel.rootfs.root


def test_empty_path_enoent(ctx):
    with pytest.raises(SyscallError) as exc:
        lookup(ctx, "")
    assert exc.value.errno == ENOENT


def test_missing_component(ctx):
    with pytest.raises(SyscallError) as exc:
        lookup(ctx, "/a/nope/c")
    assert exc.value.errno == ENOENT


def test_notdir_midpath(ctx):
    with pytest.raises(SyscallError) as exc:
        lookup(ctx, "/a/top.txt/deeper")
    assert exc.value.errno == ENOTDIR


def test_trailing_slash_requires_directory(ctx):
    assert lookup(ctx, "/a/b/")
    with pytest.raises(SyscallError) as exc:
        lookup(ctx, "/a/top.txt/")
    assert exc.value.errno == ENOTDIR


def test_path_too_long(ctx):
    with pytest.raises(SyscallError) as exc:
        lookup(ctx, "/" + "a/" * (MAXPATHLEN // 2 + 10))
    assert exc.value.errno == ENAMETOOLONG


def test_component_too_long(ctx):
    with pytest.raises(SyscallError) as exc:
        lookup(ctx, "/" + "x" * 300)
    assert exc.value.errno == ENAMETOOLONG


def test_want_parent_missing_final(ctx, kernel):
    result = namei(ctx, "/a/b/newfile", want_parent=True)
    assert result.inode is None
    assert result.name == "newfile"
    assert result.parent is kernel.lookup_host("/a/b")


def test_want_parent_existing_final(ctx, kernel):
    result = namei(ctx, "/a/b/c", want_parent=True)
    assert result.inode is kernel.lookup_host("/a/b/c")
    assert result.parent is kernel.lookup_host("/a/b")


def test_missing_middle_raises_even_with_want_parent(ctx):
    with pytest.raises(SyscallError):
        namei(ctx, "/a/nope/newfile", want_parent=True)


def test_symlink_followed(kernel, ctx):
    fs = kernel.rootfs
    link = fs.create_symlink("/a/b/c/file.txt", Cred(0, 0))
    fs.link(kernel.lookup_host("/a"), "lnk", link)
    assert lookup(ctx, "/a/lnk") is kernel.lookup_host("/a/b/c/file.txt")


def test_symlink_not_followed_when_asked(kernel, ctx):
    fs = kernel.rootfs
    link = fs.create_symlink("/a/b", Cred(0, 0))
    fs.link(kernel.lookup_host("/a"), "lnk2", link)
    assert lookup(ctx, "/a/lnk2", follow=False) is link


def test_symlink_in_middle_always_followed(kernel, ctx):
    fs = kernel.rootfs
    link = fs.create_symlink("/a/b", Cred(0, 0))
    fs.link(kernel.lookup_host("/a"), "mid", link)
    assert lookup(ctx, "/a/mid/c", follow=False) is kernel.lookup_host("/a/b/c")


def test_relative_symlink_target(kernel, ctx):
    fs = kernel.rootfs
    link = fs.create_symlink("b/c", Cred(0, 0))
    fs.link(kernel.lookup_host("/a"), "rel", link)
    assert lookup(ctx, "/a/rel/file.txt") is kernel.lookup_host("/a/b/c/file.txt")


def test_symlink_loop_eloop(kernel, ctx):
    fs = kernel.rootfs
    one = fs.create_symlink("/two", Cred(0, 0))
    two = fs.create_symlink("/one", Cred(0, 0))
    fs.link(fs.root, "one", one)
    fs.link(fs.root, "two", two)
    with pytest.raises(SyscallError) as exc:
        lookup(ctx, "/one")
    assert exc.value.errno == ELOOP


def test_search_permission_enforced(kernel):
    locked = kernel.lookup_host("/a/b")
    locked.mode = locked.mode & ~0o111
    user = Ctx(kernel, cred=Cred(100, 100))
    with pytest.raises(SyscallError) as exc:
        lookup(user, "/a/b/c")
    assert exc.value.errno == EACCES
    # root is immune
    lookup(Ctx(kernel), "/a/b/c")


def test_chroot_confines_absolute_paths(kernel):
    jail = kernel.lookup_host("/a")
    ctx = Ctx(kernel, cwd=jail, root=jail)
    assert lookup(ctx, "/b/c/file.txt") is kernel.lookup_host("/a/b/c/file.txt")
    # ".." cannot escape the jail
    assert lookup(ctx, "/../../b") is kernel.lookup_host("/a/b")


def test_mount_crossing_down_and_up(kernel):
    other = kernel.new_filesystem()
    sub = other.mkdir_in(other.root, "inside", 0o755, Cred(0, 0))
    kernel.mkdir_p("/mnt")
    kernel.mount(other, "/mnt")
    ctx = Ctx(kernel)
    assert lookup(ctx, "/mnt") is other.root
    assert lookup(ctx, "/mnt/inside") is sub
    # ".." from the mounted root crosses back to the covering fs
    assert lookup(ctx, "/mnt/..") is kernel.rootfs.root
    assert lookup(ctx, "/mnt/inside/../..") is kernel.rootfs.root
