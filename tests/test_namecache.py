"""Tests for the 4.3BSD name lookup cache (repro.kernel.namecache).

Unit behaviour (capacity, LRU, counters), the invalidation points that
keep it coherent (unlink, rename, rmdir, symlink replacement, mount and
unmount), and the export paths (obs snapshot, the ``kernel_stats``
trap, the monitor agent's JSON report).
"""

import json

import pytest

from repro.kernel import Kernel
from repro.kernel.errno import ENOENT, SyscallError
from repro.kernel.namecache import NameCache
from repro.kernel.proc import WEXITSTATUS
from repro.kernel.sysent import number_of

NR = {n: number_of(n) for n in (
    "stat", "lstat", "open", "close", "read", "unlink", "rename", "mkdir",
    "rmdir", "symlink", "chdir", "kernel_stats",
)}


class _StubDir:
    """A stand-in directory for pure NameCache unit tests."""

    __slots__ = ("fs", "label")

    def __init__(self, fs=None, label=""):
        self.fs = fs
        self.label = label

    def __repr__(self):
        return "<dir %s>" % self.label


# -- unit behaviour -------------------------------------------------------


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        NameCache(0)


def test_hit_miss_counters():
    cache = NameCache(8)
    d = _StubDir()
    assert cache.get(d, "a") is None
    cache.put(d, "a", "child-a", False)
    assert cache.get(d, "a") == ("child-a", False)
    assert cache.hits == 1
    assert cache.misses == 1
    assert cache.hit_rate() == 0.5


def test_capacity_bound_evicts_oldest():
    cache = NameCache(2)
    d = _StubDir()
    cache.put(d, "a", 1, False)
    cache.put(d, "b", 2, False)
    cache.put(d, "c", 3, False)
    assert len(cache) == 2
    assert cache.evictions == 1
    assert cache.get(d, "a") is None  # the oldest entry went
    assert cache.get(d, "b") == (2, False)
    assert cache.get(d, "c") == (3, False)


def test_lru_refresh_under_pressure():
    # Capacity 2: the pressure floor is crossed immediately, so a hit
    # refreshes recency and eviction picks the least recently used.
    cache = NameCache(2)
    d = _StubDir()
    cache.put(d, "a", 1, False)
    cache.put(d, "b", 2, False)
    assert cache.get(d, "a") == (1, False)  # refresh "a"
    cache.put(d, "c", 3, False)             # evicts "b", not "a"
    assert cache.get(d, "a") == (1, False)
    assert cache.get(d, "b") is None


def test_invalidate_and_purge_dir():
    cache = NameCache(8)
    d1, d2 = _StubDir(label="d1"), _StubDir(label="d2")
    cache.put(d1, "x", 1, False)
    cache.put(d1, "y", 2, False)
    cache.put(d2, "x", 3, False)
    cache.invalidate(d1, "x")
    assert cache.get(d1, "x") is None
    assert cache.invalidations == 1
    cache.purge_dir(d1)
    assert cache.get(d1, "y") is None
    assert cache.get(d2, "x") == (3, False)


def test_purge_fs_drops_only_that_volume():
    fs1, fs2 = object(), object()
    cache = NameCache(8)
    d1, d2 = _StubDir(fs=fs1), _StubDir(fs=fs2)
    cache.put(d1, "a", 1, False)
    cache.put(d2, "a", 2, False)
    cache.purge_fs(fs1)
    assert cache.get(d1, "a") is None
    assert cache.get(d2, "a") == (2, False)


def test_stats_shape():
    cache = NameCache(4)
    stats = cache.stats()
    for key in ("size", "capacity", "hits", "misses", "hit_rate",
                "evictions", "invalidations", "purges"):
        assert key in stats


# -- in-kernel behaviour --------------------------------------------------


@pytest.fixture
def cached_kernel():
    k = Kernel()
    assert k.namecache is not None, "default kernel must carry the cache"
    k.mkdir_p("/a/b")
    k.write_file("/a/b/f.txt", "payload")
    return k


def _trap(kernel, entry):
    status = kernel.run_entry(entry)
    return WEXITSTATUS(status)


def test_repeated_stat_hits_cache(cached_kernel):
    k = cached_kernel

    def main(ctx):
        ctx.trap(NR["stat"], "/a/b/f.txt")
        before = k.namecache.hits
        ctx.trap(NR["stat"], "/a/b/f.txt")
        assert k.namecache.hits >= before + 3  # a, b, f.txt all hit
        return 0

    assert _trap(k, main) == 0


def test_unlink_invalidates(cached_kernel):
    k = cached_kernel

    def main(ctx):
        ctx.trap(NR["stat"], "/a/b/f.txt")  # warm the cache
        ctx.trap(NR["unlink"], "/a/b/f.txt")
        try:
            ctx.trap(NR["stat"], "/a/b/f.txt")
        except SyscallError as err:
            assert err.errno == ENOENT
            return 0
        return 1

    assert _trap(k, main) == 0


def test_rename_invalidates_both_names(cached_kernel):
    k = cached_kernel
    k.write_file("/a/b/old.txt", "v1")

    def main(ctx):
        ctx.trap(NR["stat"], "/a/b/old.txt")  # warm old name
        ctx.trap(NR["rename"], "/a/b/old.txt", "/a/b/new.txt")
        st_new = ctx.trap(NR["stat"], "/a/b/new.txt")
        assert st_new.st_size == 2
        try:
            ctx.trap(NR["stat"], "/a/b/old.txt")
        except SyscallError as err:
            assert err.errno == ENOENT
            return 0
        return 1

    assert _trap(k, main) == 0


def test_rename_over_existing_target(cached_kernel):
    k = cached_kernel
    k.write_file("/a/b/src.txt", "source!")
    k.write_file("/a/b/dst.txt", "x")

    def main(ctx):
        # Warm the cache on the target that is about to be replaced.
        old = ctx.trap(NR["stat"], "/a/b/dst.txt")
        ctx.trap(NR["rename"], "/a/b/src.txt", "/a/b/dst.txt")
        new = ctx.trap(NR["stat"], "/a/b/dst.txt")
        assert new.st_ino != old.st_ino
        assert new.st_size == 7
        return 0

    assert _trap(k, main) == 0


def test_rmdir_then_recreate(cached_kernel):
    k = cached_kernel

    def main(ctx):
        ctx.trap(NR["mkdir"], "/a/victim", 0o755)
        ctx.trap(NR["stat"], "/a/victim")  # warm
        old_ino = ctx.trap(NR["stat"], "/a/victim").st_ino
        ctx.trap(NR["rmdir"], "/a/victim")
        ctx.trap(NR["mkdir"], "/a/victim", 0o755)
        assert ctx.trap(NR["stat"], "/a/victim").st_ino != old_ino
        return 0

    assert _trap(k, main) == 0


def test_symlink_replacing_file_is_followed(cached_kernel):
    k = cached_kernel
    k.write_file("/a/real.txt", "the real content")

    def main(ctx):
        ctx.trap(NR["stat"], "/a/b/f.txt")  # warm the plain-file entry
        ctx.trap(NR["unlink"], "/a/b/f.txt")
        ctx.trap(NR["symlink"], "/a/real.txt", "/a/b/f.txt")
        # stat follows the new link; lstat sees the link itself.
        assert ctx.trap(NR["stat"], "/a/b/f.txt").st_size == 16
        lst = ctx.trap(NR["lstat"], "/a/b/f.txt")
        assert lst.st_size == len("/a/real.txt")
        return 0

    assert _trap(k, main) == 0


def test_mount_purges_cached_crossings(cached_kernel):
    k = cached_kernel
    k.mkdir_p("/mnt")
    k.write_file("/mnt/plain.txt", "under")

    def warm(ctx):
        assert ctx.trap(NR["stat"], "/mnt/plain.txt").st_size == 5
        return 0

    assert _trap(k, warm) == 0

    fs = k.new_filesystem()
    k.mount(fs, "/mnt")  # purges: /mnt now resolves to the new volume
    assert k.namecache.purges >= 1

    def over(ctx):
        assert ctx.trap(NR["stat"], "/mnt").st_dev == fs.dev
        try:
            ctx.trap(NR["stat"], "/mnt/plain.txt")
        except SyscallError as err:
            assert err.errno == ENOENT
            return 0
        return 1

    assert _trap(k, over) == 0

    k.umount("/mnt")

    def back(ctx):
        assert ctx.trap(NR["stat"], "/mnt/plain.txt").st_size == 5
        return 0

    assert _trap(k, back) == 0


def test_cache_disabled_config_has_no_cache():
    k = Kernel(fastpaths="none")
    assert k.namecache is None
    assert k.rootfs.namecache is None
    fs = k.new_filesystem()
    assert fs.namecache is None


def test_volumes_share_the_kernel_cache(cached_kernel):
    k = cached_kernel
    fs = k.new_filesystem()
    assert fs.namecache is k.namecache
    assert k.rootfs.namecache is k.namecache


# -- export paths ---------------------------------------------------------


def test_obs_snapshot_carries_namecache_and_fastpath_sections(cached_kernel):
    from repro import obs

    k = cached_kernel
    snapshot = obs.enable(k).snapshot()
    assert "namecache" in snapshot
    assert snapshot["namecache"]["capacity"] == k.namecache.capacity
    assert snapshot["fastpath"]["flags"]["namecache"] is True
    assert snapshot["fastpath"]["trap_total"] == k.trap_total


def test_kernel_stats_trap(cached_kernel):
    k = cached_kernel

    def main(ctx):
        ctx.trap(NR["stat"], "/a/b/f.txt")
        stats = ctx.trap(NR["kernel_stats"])
        assert stats["fastpaths"]["namecache"] is True
        assert stats["trap"]["total"] >= 2
        assert stats["namecache"]["size"] > 0
        return 0

    assert _trap(k, main) == 0


def test_kernel_stats_trap_without_cache():
    k = Kernel(fastpaths="none")

    def main(ctx):
        stats = ctx.trap(NR["kernel_stats"])
        assert stats["namecache"] == {"enabled": False}
        assert stats["trap"]["fast"] == 0
        return 0

    assert _trap(k, main) == 0


def test_monitor_json_report_includes_kernel_section():
    from repro.agents.monitor import MonitorAgent
    from repro.toolkit import run_under_agent
    from repro.workloads import boot_world

    world = boot_world()
    agent = MonitorAgent("/tmp/mon.json")
    status = run_under_agent(
        world, agent, "/bin/sh", ["sh", "-c", "cat /etc/passwd > /dev/null"],
        agentargv=["--json"],
    )
    assert WEXITSTATUS(status) == 0
    doc = json.loads(world.read_file("/tmp/mon.json").decode())
    assert doc["kernel"]["fastpaths"]["namecache"] is True
    assert doc["kernel"]["trap"]["total"] > 0
    assert "hit_rate" in doc["kernel"]["namecache"]
