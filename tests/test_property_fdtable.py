"""Stateful property test: the descriptor table against a model.

A hypothesis rule-based machine drives open/close/dup/dup2/read/write
against one simulated process and mirrors every operation in a plain
Python model (fd -> [shared offset cell, file name]), then checks that
reads observe identical bytes and that fd allocation follows the
lowest-free rule.
"""

from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.kernel import Kernel
from repro.kernel.ofile import O_CREAT, O_RDWR, SEEK_SET
from repro.kernel.sysent import number_of
from repro.kernel.trap import UserContext

NR = {n: number_of(n) for n in (
    "open", "close", "read", "write", "lseek", "dup", "dup2",
)}

FILES = ("alpha", "beta")


class FdTableMachine(RuleBasedStateMachine):
    @initialize()
    def boot(self):
        self.kernel = Kernel()
        for name in FILES:
            self.kernel.write_file("/tmp/" + name, name + "-contents")
        proc = self.kernel._create_initial_process()
        self.ctx = UserContext(self.kernel, proc)
        # model: fd -> entry; entry = {"offset": int, "name": str}
        # entries are shared between dup'd fds (same dict object)
        self.model = {}
        self.contents = {
            name: bytearray((name + "-contents").encode()) for name in FILES
        }

    def _free_fds(self):
        used = set(self.model) | {0, 1, 2}
        return [fd for fd in range(64) if fd not in used]

    @rule(name=st.sampled_from(FILES))
    def open_file(self, name):
        expected_fd = min(self._free_fds())
        fd = self.ctx.trap(NR["open"], "/tmp/" + name, O_RDWR, 0)
        assert fd == expected_fd  # lowest-free allocation
        self.model[fd] = {"offset": 0, "name": name}

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def close_fd(self, data):
        fd = data.draw(st.sampled_from(sorted(self.model)))
        self.ctx.trap(NR["close"], fd)
        del self.model[fd]

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def dup_fd(self, data):
        fd = data.draw(st.sampled_from(sorted(self.model)))
        expected_fd = min(self._free_fds())
        new_fd = self.ctx.trap(NR["dup"], fd)
        assert new_fd == expected_fd
        self.model[new_fd] = self.model[fd]  # shared entry

    @precondition(lambda self: self.model)
    @rule(data=st.data(), target_fd=st.integers(min_value=3, max_value=12))
    def dup2_fd(self, data, target_fd):
        fd = data.draw(st.sampled_from(sorted(self.model)))
        if target_fd in (0, 1, 2):
            return
        self.ctx.trap(NR["dup2"], fd, target_fd)
        if target_fd != fd:
            self.model[target_fd] = self.model[fd]

    @precondition(lambda self: self.model)
    @rule(data=st.data(), count=st.integers(min_value=0, max_value=30))
    def read_fd(self, data, count):
        fd = data.draw(st.sampled_from(sorted(self.model)))
        entry = self.model[fd]
        got = self.ctx.trap(NR["read"], fd, count)
        blob = self.contents[entry["name"]]
        expected = bytes(blob[entry["offset"]: entry["offset"] + count])
        assert got == expected
        entry["offset"] += len(got)

    @precondition(lambda self: self.model)
    @rule(data=st.data(), payload=st.binary(min_size=1, max_size=20))
    def write_fd(self, data, payload):
        fd = data.draw(st.sampled_from(sorted(self.model)))
        entry = self.model[fd]
        wrote = self.ctx.trap(NR["write"], fd, payload)
        assert wrote == len(payload)
        blob = self.contents[entry["name"]]
        offset = entry["offset"]
        if offset > len(blob):
            blob.extend(b"\0" * (offset - len(blob)))
        blob[offset: offset + len(payload)] = payload
        entry["offset"] += len(payload)

    @precondition(lambda self: self.model)
    @rule(data=st.data(), offset=st.integers(min_value=0, max_value=40))
    def seek_fd(self, data, offset):
        fd = data.draw(st.sampled_from(sorted(self.model)))
        self.ctx.trap(NR["lseek"], fd, offset, SEEK_SET)
        self.model[fd]["offset"] = offset

    @invariant()
    def files_match_model(self):
        if not hasattr(self, "kernel"):
            return
        for name, blob in self.contents.items():
            assert self.kernel.read_file("/tmp/" + name) == bytes(blob)


FdTableMachine.TestCase.settings = settings(
    max_examples=25,
    stateful_step_count=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

TestFdTable = FdTableMachine.TestCase
