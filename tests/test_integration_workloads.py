"""Integration tests: the paper's workloads end to end, with and without
agents interposed (the Unmodified System and Completeness goals)."""

import pytest

from repro.agents.time_symbolic import TimeSymbolic
from repro.agents.timex import TimexSymbolicSyscall
from repro.agents.trace import TraceSymbolicSyscall
from repro.agents.union_dirs import UnionAgent
from repro.kernel.proc import WEXITSTATUS
from repro.toolkit import run_under_agent
from repro.workloads import (
    afs_bench,
    boot_world,
    format_dissertation,
    make_programs,
)


def test_format_workload_profile():
    """Moderate system call use, single process (paper: 716 calls)."""
    kernel = boot_world()
    format_dissertation.setup(kernel)
    status = format_dissertation.run(kernel)
    assert WEXITSTATUS(status) == 0
    assert 500 <= kernel.trap_total <= 1100
    assert kernel.fork_total == 0  # single process
    doc = kernel.read_file(format_dissertation.OUTPUT)
    assert len(doc) > 100_000


def test_make_workload_profile():
    """Heavy system call use, 64 fork/execve pairs (paper Table 3-3)."""
    kernel = boot_world()
    make_programs.setup(kernel)
    status = make_programs.run(kernel)
    assert WEXITSTATUS(status) == 0
    assert kernel.fork_total == 64
    assert kernel.exec_total == 64
    assert kernel.trap_total > 500


def test_afs_workload_runs():
    kernel = boot_world()
    afs_bench.setup(kernel)
    status = afs_bench.run(kernel)
    assert WEXITSTATUS(status) == 0
    # All five phases left their marks.
    tree = kernel.lookup_host(afs_bench.TREE)
    assert tree.is_dir()
    assert kernel.lookup_host(afs_bench.TREE + "/s1").is_dir()
    assert kernel.read_file(afs_bench.TREE + "/andrew1").startswith(b"!executable")


@pytest.mark.parametrize("agent_factory", [
    TimeSymbolic,
    lambda: TimexSymbolicSyscall(offset=3600),
    lambda: TraceSymbolicSyscall("/tmp/trace.out"),
])
def test_format_output_identical_under_agents(agent_factory):
    """The formatter's output is byte-identical under interposition."""
    bare = boot_world()
    format_dissertation.setup(bare)
    format_dissertation.run(bare)
    expected = bare.read_file(format_dissertation.OUTPUT)

    agented = boot_world()
    format_dissertation.setup(agented)
    status = run_under_agent(
        agented,
        agent_factory(),
        "/usr/bin/scribe",
        ["scribe", format_dissertation.MANUSCRIPT, format_dissertation.OUTPUT],
    )
    assert WEXITSTATUS(status) == 0
    assert agented.read_file(format_dissertation.OUTPUT) == expected


def test_make_outputs_identical_under_union():
    """make over a union view produces the same binaries."""
    bare = boot_world()
    make_programs.setup(bare)
    make_programs.run(bare)
    expected = {
        "prog%d" % i: bare.read_file("%s/prog%d" % (make_programs.SRC_DIR, i))
        for i in range(1, 9)
    }

    agented = boot_world()
    make_programs.setup(agented)
    agent = UnionAgent()
    agent.pset.add_union(
        make_programs.SRC_DIR, [make_programs.SRC_DIR, "/usr/tmp"]
    )
    status = run_under_agent(
        agented, agent, "/bin/sh",
        ["sh", "-c", "cd %s; make" % make_programs.SRC_DIR],
    )
    assert WEXITSTATUS(status) == 0
    for name, image in expected.items():
        assert agented.read_file(
            "%s/%s" % (make_programs.SRC_DIR, name)
        ) == image


def test_syscall_counts_unchanged_under_passthrough_agent():
    """Pay-per-use: the agent adds overhead, not system calls — the
    application's trap count is identical."""
    bare = boot_world()
    format_dissertation.setup(bare)
    format_dissertation.run(bare)
    bare_traps = bare.trap_total

    agented = boot_world()
    format_dissertation.setup(agented)
    before = agented.trap_total
    run_under_agent(
        agented, TimeSymbolic(), "/usr/bin/scribe",
        ["scribe", format_dissertation.MANUSCRIPT, format_dissertation.OUTPUT],
    )
    agent_traps = agented.trap_total - before
    # The loader adds a handful of setup traps; the client's profile is
    # otherwise identical.
    assert abs(agent_traps - bare_traps) < 20


def test_afs_bench_identical_under_dfs_trace():
    from repro.agents.dfs_trace import DfsTraceAgent

    bare = boot_world()
    afs_bench.setup(bare)
    afs_bench.run(bare)
    expected = bare.console.take_output()

    agented = boot_world()
    afs_bench.setup(agented)
    status = run_under_agent(
        agented, DfsTraceAgent("/tmp/dfs.log"), "/bin/sh",
        ["sh", afs_bench.BASE + "/run_andrew.sh"],
    )
    assert WEXITSTATUS(status) == 0
    assert agented.console.take_output() == expected
