"""Tests for the compression and encryption agents (paper Section 1.4)."""

import zlib

import pytest

from repro.agents.transform import MAGIC, CompressAgent, CryptAgent, _keystream_xor
from repro.kernel.proc import WEXITSTATUS
from repro.toolkit import run_under_agent

SUBTREE = "/home/mbj/store"


@pytest.fixture
def store_world(world):
    world.mkdir_p(SUBTREE)
    return world


def run_compressed(world, command):
    agent = CompressAgent(SUBTREE)
    status = run_under_agent(world, agent, "/bin/sh", ["sh", "-c", command])
    return status, world.console.take_output().decode()


def test_write_then_read_roundtrip(store_world):
    status, out = run_compressed(
        store_world,
        "echo the quick brown fox > %s/f; cat %s/f" % (SUBTREE, SUBTREE),
    )
    assert WEXITSTATUS(status) == 0
    assert out == "the quick brown fox\n"


def test_stored_form_is_compressed(store_world):
    text = "squeeze me " * 200
    run_compressed(store_world, "echo %s > %s/big" % (text.strip(), SUBTREE))
    stored = store_world.read_file(SUBTREE + "/big")
    assert stored.startswith(MAGIC)
    assert len(stored) < len(text)
    assert zlib.decompress(stored[len(MAGIC):]).decode().strip() == text.strip()


def test_roundtrip_across_sessions(store_world):
    run_compressed(store_world, "echo persisted > %s/p" % SUBTREE)
    status, out = run_compressed(store_world, "cat %s/p" % SUBTREE)
    assert out == "persisted\n"


def test_stat_reports_decoded_size(store_world):
    run_compressed(store_world, "echo 12345 > %s/sz" % SUBTREE)
    status, out = run_compressed(store_world, "ls -l %s/sz" % SUBTREE)
    assert " 6 " in out  # "12345\n" is six decoded bytes


def test_plain_preexisting_file_readable(store_world):
    store_world.write_file(SUBTREE + "/legacy", "never compressed")
    status, out = run_compressed(store_world, "cat %s/legacy" % SUBTREE)
    assert out == "never compressed"


def test_files_outside_subtree_untouched(store_world):
    status, out = run_compressed(
        store_world, "echo outside > /tmp/plain; cat /tmp/plain"
    )
    assert out == "outside\n"
    assert store_world.read_file("/tmp/plain") == b"outside\n"


def test_append_mode(store_world):
    run_compressed(store_world, "echo one > %s/log" % SUBTREE)
    run_compressed(store_world, "echo two >> %s/log" % SUBTREE)
    status, out = run_compressed(store_world, "cat %s/log" % SUBTREE)
    assert out == "one\ntwo\n"


def test_seek_and_partial_read(store_world):
    def seeker(sys, argv, envp):
        sys.write_whole(SUBTREE + "/seek", b"0123456789")
        fd = sys.open(SUBTREE + "/seek")
        sys.lseek(fd, 4)
        sys.print_out(sys.read(fd, 3).decode())
        sys.close(fd)
        return 0

    from tests.conftest import install_program

    install_program(store_world, "seeker", seeker)
    agent = CompressAgent(SUBTREE)
    status = run_under_agent(store_world, agent, "/bin/seeker", ["seeker"])
    assert store_world.console.take_output().decode() == "456"


def test_ftruncate_through_agent(store_world):
    def shrinker(sys, argv, envp):
        sys.write_whole(SUBTREE + "/sh", b"abcdefgh")
        from repro.programs.libc import O_RDWR

        fd = sys.open(SUBTREE + "/sh", O_RDWR)
        sys.ftruncate(fd, 3)
        sys.close(fd)
        sys.print_out(sys.read_whole(SUBTREE + "/sh").decode())
        return 0

    from tests.conftest import install_program

    install_program(store_world, "shrinker", shrinker)
    agent = CompressAgent(SUBTREE)
    run_under_agent(store_world, agent, "/bin/shrinker", ["shrinker"])
    assert store_world.console.take_output().decode() == "abc"


# -- encryption --------------------------------------------------------------

def test_keystream_xor_involution():
    data = b"some secret bytes" * 10
    assert _keystream_xor(_keystream_xor(data, "k"), "k") == data
    assert _keystream_xor(data, "k") != data
    assert _keystream_xor(data, "k") != _keystream_xor(data, "other")


def test_keystream_rejects_empty_key():
    with pytest.raises(ValueError):
        _keystream_xor(b"x", "")


def test_crypt_roundtrip_and_ciphertext(store_world):
    agent = CryptAgent(SUBTREE, key="sekrit")
    run_under_agent(
        store_world, agent, "/bin/sh",
        ["sh", "-c", "echo classified > %s/c" % SUBTREE],
    )
    stored = store_world.read_file(SUBTREE + "/c")
    assert b"classified" not in stored

    agent2 = CryptAgent(SUBTREE, key="sekrit")
    run_under_agent(
        store_world, agent2, "/bin/sh", ["sh", "-c", "cat %s/c" % SUBTREE]
    )
    assert store_world.console.take_output().decode() == "classified\n"


def test_crypt_wrong_key_garbage(store_world):
    agent = CryptAgent(SUBTREE, key="right")
    run_under_agent(
        store_world, agent, "/bin/sh",
        ["sh", "-c", "echo classified > %s/w" % SUBTREE],
    )
    store_world.console.take_output()
    wrong = CryptAgent(SUBTREE, key="wrong")
    run_under_agent(
        store_world, wrong, "/bin/sh", ["sh", "-c", "cat %s/w" % SUBTREE]
    )
    garbage = store_world.console.take_output().decode(errors="replace")
    assert "classified" not in garbage
