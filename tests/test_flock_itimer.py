"""Tests for flock advisory locks and the interval timers."""

import pytest

from repro.kernel import signals as sig
from repro.kernel.errno import EBADF, EINVAL, EWOULDBLOCK, SyscallError
from repro.kernel.proc import WEXITSTATUS
from repro.kernel.sysent import number_of
from repro.programs.libc import LOCK_EX, LOCK_NB, LOCK_SH, LOCK_UN, Sys


def _with_sys(kernel, body):
    def main(ctx):
        return body(Sys(ctx))

    return WEXITSTATUS(kernel.run_entry(main))


def test_exclusive_lock_excludes(world):
    world.write_file("/tmp/locked", "x")

    def body(sys):
        fd1 = sys.open("/tmp/locked")
        fd2 = sys.open("/tmp/locked")  # a second open-file entry
        sys.flock(fd1, LOCK_EX)
        try:
            sys.flock(fd2, LOCK_EX | LOCK_NB)
            return 1
        except SyscallError as err:
            assert err.errno == EWOULDBLOCK
        try:
            sys.flock(fd2, LOCK_SH | LOCK_NB)
            return 1
        except SyscallError as err:
            assert err.errno == EWOULDBLOCK
        sys.flock(fd1, LOCK_UN)
        sys.flock(fd2, LOCK_EX | LOCK_NB)  # now fine
        return 0

    assert _with_sys(world, body) == 0


def test_shared_locks_coexist(world):
    world.write_file("/tmp/shared", "x")

    def body(sys):
        fd1 = sys.open("/tmp/shared")
        fd2 = sys.open("/tmp/shared")
        sys.flock(fd1, LOCK_SH)
        sys.flock(fd2, LOCK_SH | LOCK_NB)  # shared locks coexist
        try:
            fd3 = sys.open("/tmp/shared")
            sys.flock(fd3, LOCK_EX | LOCK_NB)
            return 1
        except SyscallError as err:
            assert err.errno == EWOULDBLOCK
        return 0

    assert _with_sys(world, body) == 0


def test_lock_released_on_close(world):
    world.write_file("/tmp/rel", "x")

    def body(sys):
        fd1 = sys.open("/tmp/rel")
        sys.flock(fd1, LOCK_EX)
        sys.close(fd1)
        fd2 = sys.open("/tmp/rel")
        sys.flock(fd2, LOCK_EX | LOCK_NB)  # released by the close
        return 0

    assert _with_sys(world, body) == 0


def test_dup_shares_lock_ownership(world):
    world.write_file("/tmp/duplock", "x")

    def body(sys):
        fd = sys.open("/tmp/duplock")
        dup_fd = sys.dup(fd)
        sys.flock(fd, LOCK_EX)
        sys.flock(dup_fd, LOCK_EX | LOCK_NB)  # same entry: re-acquire ok
        sys.close(fd)  # entry still referenced by dup_fd: lock held
        fd2 = sys.open("/tmp/duplock")
        try:
            sys.flock(fd2, LOCK_EX | LOCK_NB)
            return 1
        except SyscallError as err:
            assert err.errno == EWOULDBLOCK
        return 0

    assert _with_sys(world, body) == 0


def test_lock_upgrade_and_downgrade(world):
    world.write_file("/tmp/up", "x")

    def body(sys):
        fd = sys.open("/tmp/up")
        sys.flock(fd, LOCK_SH)
        sys.flock(fd, LOCK_EX | LOCK_NB)  # upgrade
        sys.flock(fd, LOCK_SH | LOCK_NB)  # downgrade
        fd2 = sys.open("/tmp/up")
        sys.flock(fd2, LOCK_SH | LOCK_NB)
        return 0

    assert _with_sys(world, body) == 0


def test_blocking_flock_waits_for_release(world):
    world.write_file("/tmp/blk", "x")

    def body(sys):
        fd = sys.open("/tmp/blk")
        sys.flock(fd, LOCK_EX)

        def child(csys):
            csys.close(fd)  # drop the inherited share of the locked entry
            child_fd = csys.open("/tmp/blk")
            csys.flock(child_fd, LOCK_EX)  # blocks until the parent closes
            csys.write_whole("/tmp/blk.acquired", "yes")
            return 0

        sys.fork(child)
        sys.close(fd)  # releases the lock; the child proceeds
        sys.wait()
        assert sys.exists("/tmp/blk.acquired")
        return 0

    assert _with_sys(world, body) == 0


def test_flock_invalid_operation(world):
    world.write_file("/tmp/bad", "x")

    def body(sys):
        fd = sys.open("/tmp/bad")
        try:
            sys.flock(fd, 16)
            return 1
        except SyscallError as err:
            return 0 if err.errno == EINVAL else 1

    assert _with_sys(world, body) == 0


def test_flock_on_pipe_ebadf(world):
    def body(sys):
        rfd, wfd = sys.pipe()
        try:
            sys.flock(rfd, LOCK_EX)
            return 1
        except SyscallError as err:
            return 0 if err.errno == EBADF else 1

    assert _with_sys(world, body) == 0


# -- interval timers ----------------------------------------------------

def test_setitimer_one_shot(world):
    def body(sys):
        fired = []
        sys.sigvec(sig.SIGALRM, lambda s: fired.append(s))
        sys.setitimer(0, 0, 500_000)  # one shot, 0.5 virtual seconds
        sys.sigpause(0)
        assert fired == [sig.SIGALRM]
        interval, value = sys.getitimer(0)
        assert interval == 0 and value == 0  # disarmed after expiry
        return 0

    assert _with_sys(world, body) == 0


def test_setitimer_reloads_interval(world):
    def body(sys):
        fired = []
        sys.sigvec(sig.SIGALRM, lambda s: fired.append(s))
        sys.setitimer(0, 200_000, 200_000)
        for _ in range(3):
            sys.sigpause(0)
        assert len(fired) >= 3
        sys.setitimer(0, 0, 0)  # disarm
        interval, value = sys.getitimer(0)
        assert (interval, value) == (0, 0)
        return 0

    assert _with_sys(world, body) == 0


def test_setitimer_returns_previous(world):
    def body(sys):
        sys.setitimer(0, 0, 3_000_000)
        old_interval, old_value = sys.setitimer(0, 0, 0)
        assert old_interval == 0
        assert 0 < old_value <= 3_000_000
        return 0

    assert _with_sys(world, body) == 0


def test_getitimer_reports_remaining(world):
    def body(sys):
        sys.setitimer(0, 0, 2_000_000)
        sys.sleep(0.5)  # consumes virtual time
        _, value = sys.getitimer(0)
        assert 0 < value <= 1_500_000
        sys.setitimer(0, 0, 0)
        return 0

    assert _with_sys(world, body) == 0


def test_settimeofday_forward_fires_pending_alarm(world):
    # Alarm deadlines are absolute virtual times (4.3BSD semantics), so
    # stepping the clock forward past a pending deadline makes the
    # alarm due immediately.
    def body(sys):
        fired = []
        sys.sigvec(sig.SIGALRM, lambda s: fired.append(s))
        sys.setitimer(0, 0, 5_000_000)  # 5 virtual seconds out
        now = sys.gettimeofday()
        sys.settimeofday(now.tv_sec + 60, now.tv_usec)
        sys.sigpause(0)
        assert fired == [sig.SIGALRM]
        interval, value = sys.getitimer(0)
        assert (interval, value) == (0, 0)
        return 0

    assert _with_sys(world, body) == 0


def test_settimeofday_backwards_stretches_pending_alarm(world):
    # The flip side of the absolute deadline: stepping backwards moves
    # the alarm *further away* — remaining time grows by the step.
    def body(sys):
        sys.setitimer(0, 0, 1_000_000)
        now = sys.gettimeofday()
        sys.settimeofday(now.tv_sec - 60, now.tv_usec)
        _, value = sys.getitimer(0)
        assert value > 60_000_000
        sys.setitimer(0, 0, 0)
        return 0

    assert _with_sys(world, body) == 0


def test_itimer_invalid_which(world):
    def body(sys):
        try:
            sys.setitimer(2, 0, 1)
            return 1
        except SyscallError as err:
            return 0 if err.errno == EINVAL else 1

    assert _with_sys(world, body) == 0


def test_alarm_clears_interval(world):
    def body(sys):
        sys.setitimer(0, 100_000, 100_000)
        sys.alarm(0)
        assert sys.getitimer(0) == (0, 0)
        return 0

    assert _with_sys(world, body) == 0
