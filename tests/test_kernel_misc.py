"""Tests for kernel host-side APIs, crash reporting, and bookkeeping."""

import pytest

from repro.kernel import Kernel, SyscallError
from repro.kernel.kernel import ProgramCrash
from repro.kernel.proc import WEXITSTATUS
from repro.kernel.sysent import number_of


def test_boot_tree_layout(kernel):
    for path in ("/dev/null", "/dev/zero", "/dev/tty", "/dev/console",
                 "/etc/passwd", "/bin", "/usr/lib", "/tmp", "/home/mbj"):
        assert kernel.lookup_host(path)
    assert kernel.lookup_host("/tmp").mode & 0o1777 == 0o1777


def test_write_and_read_file_roundtrip(kernel):
    kernel.write_file("/tmp/h", b"host bytes")
    assert kernel.read_file("/tmp/h") == b"host bytes"
    kernel.write_file("/tmp/h", "replaced")  # overwrite
    assert kernel.read_file("/tmp/h") == b"replaced"


def test_read_file_of_directory_rejected(kernel):
    with pytest.raises(SyscallError):
        kernel.read_file("/tmp")


def test_mkdir_p_idempotent(kernel):
    kernel.mkdir_p("/a/b/c")
    kernel.mkdir_p("/a/b/c")
    assert kernel.lookup_host("/a/b/c").is_dir()


def test_install_binary_requires_registration(kernel):
    with pytest.raises(KeyError):
        kernel.install_binary("/bin/ghost", "ghost")


def test_register_program_validates(kernel):
    with pytest.raises(TypeError):
        kernel.register_program("bad", "not callable")


def test_program_crash_reported(kernel):
    def buggy(ctx):
        raise ValueError("a host-level bug in a simulated program")

    with pytest.raises(ProgramCrash) as exc:
        kernel.run_entry(buggy)
    assert "ValueError" in str(exc.value)
    assert kernel.panics


def test_crash_in_child_reported(kernel):
    def main(ctx):
        def child(cctx):
            raise RuntimeError("child bug")

        ctx.trap(number_of("fork"), child)
        ctx.trap(number_of("wait"))
        return 0

    with pytest.raises(ProgramCrash):
        kernel.run_entry(main)


def test_run_returns_status_and_cleans_process_table(world):
    status = world.run("/bin/sh", ["sh", "-c", "exit 3"])
    assert WEXITSTATUS(status) == 3
    assert world.process_count() == 0


def test_run_missing_binary(world):
    with pytest.raises(SyscallError):
        world.run("/bin/not-installed")


def test_interpreter_prefix_applied_by_run(world):
    world.write_file("/tmp/s.sh", "#!/bin/sh\necho via interp\n", mode=0o755)
    world.lookup_host("/tmp/s.sh").mode |= 0o111
    world.run("/tmp/s.sh", ["s.sh"])
    assert "via interp" in world.console.take_output().decode()


def test_trap_totals_accumulate(world):
    before = world.trap_total
    world.run("/bin/true", ["true"])
    assert world.trap_total > before


def test_new_filesystem_gets_unique_dev(kernel):
    fs1 = kernel.new_filesystem()
    fs2 = kernel.new_filesystem()
    assert fs1.dev != fs2.dev != kernel.rootfs.dev


def test_idle_loop_fires_alarm_for_lone_sleeper(kernel):
    """A single process sleeping in sigpause with an armed alarm must be
    woken by the idle loop advancing virtual time."""
    from repro.kernel import signals as sig

    def main(ctx):
        fired = []
        ctx.trap(number_of("sigvec"), sig.SIGALRM, lambda s: fired.append(s), 0)
        ctx.trap(number_of("alarm"), 5)
        try:
            ctx.trap(number_of("sigpause"), 0)
        except SyscallError:
            pass
        return 0 if fired else 1

    assert WEXITSTATUS(kernel.run_entry(main)) == 0


def test_console_reads_block_until_feed(kernel):
    """The console blocks readers until input arrives from the host."""
    import threading

    kernel.console.feed("late input\n")

    def main(ctx):
        fd = ctx.trap(number_of("open"), "/dev/tty", 0, 0)
        data = ctx.trap(number_of("read"), fd, 100)
        return 0 if data == b"late input\n" else 1

    assert WEXITSTATUS(kernel.run_entry(main)) == 0


def test_dev_null_and_zero_registered(kernel):
    null = kernel.devswitch.lookup(kernel._null_rdev)
    zero = kernel.devswitch.lookup(kernel._zero_rdev)
    assert null.name == "null"
    assert zero.name == "zero"


def test_hostname_and_pagesize_defaults(kernel):
    assert kernel.hostname == "mach25.repro"
    assert kernel.page_size == 4096
    custom = Kernel(hostname="vax.cs.cmu.edu", page_size=8192)
    assert custom.hostname == "vax.cs.cmu.edu"
    assert custom.page_size == 8192
