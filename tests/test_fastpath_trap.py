"""Tests for the precomputed trap dispatch fast path (repro.kernel.trap).

The fast path may only fire when nothing is watching: no emulation
vector entry for the number, no observability, no ktrace, no dfstrace.
These tests pin down the table's life cycle (lazy build, shared full
table, invalidation on ``task_set_emulation``/``execve``) and the exact
behavioural parity with the seed slow path (EINVAL wording, signal
delivery, error propagation).
"""

import pytest

from repro.kernel import Kernel
from repro.kernel import signals as sig
from repro.kernel.errno import EBADF, EINVAL, SyscallError
from repro.kernel.proc import WEXITSTATUS
from repro.kernel.sysent import number_of
from repro.kernel.trap import _FAST_DISABLED, build_fast_dispatch

NR_GETPID = number_of("getpid")
NR_CLOSE = number_of("close")
NR_SET_EMUL = number_of("task_set_emulation")
NR_SIGVEC = number_of("sigvec")
NR_KILL = number_of("kill")


def run(kernel, entry):
    return WEXITSTATUS(kernel.run_entry(entry))


def test_fast_path_counts_traps():
    k = Kernel()

    def main(ctx):
        for _ in range(5):
            ctx.trap(NR_GETPID)
        return 0

    assert run(k, main) == 0
    assert k.trap_fast_total >= 5
    assert k.trap_fast_total <= k.trap_total


def test_disabled_config_never_fast():
    k = Kernel(fastpaths="none")

    def main(ctx):
        ctx.trap(NR_GETPID)
        assert ctx.proc.fast_dispatch is _FAST_DISABLED
        return 0

    assert run(k, main) == 0
    assert k.trap_fast_total == 0
    assert k.trap_total >= 1


def test_uninterposed_processes_share_one_table():
    k = Kernel()
    tables = []

    def main(ctx):
        ctx.trap(NR_GETPID)
        tables.append(ctx.proc.fast_dispatch)
        return 0

    assert run(k, main) == 0
    assert run(k, main) == 0
    assert tables[0] is tables[1], "empty-vector tables must be shared"


def test_task_set_emulation_invalidates_table():
    k = Kernel()

    def main(ctx):
        ctx.trap(NR_GETPID)
        full = ctx.proc.fast_dispatch
        assert NR_GETPID in full

        hits = []

        def handler(handler_ctx, number, args):
            hits.append(number)
            return 4242

        ctx.trap(NR_SET_EMUL, [NR_GETPID], handler)
        assert ctx.proc.fast_dispatch is None  # invalidated
        assert ctx.trap(NR_GETPID) == 4242    # redirected, not fast
        assert hits == [NR_GETPID]
        table = ctx.proc.fast_dispatch        # rebuilt lazily
        assert NR_GETPID not in table
        assert NR_CLOSE in table

        ctx.trap(NR_SET_EMUL, [NR_GETPID], None)  # remove redirection
        assert ctx.proc.fast_dispatch is None
        assert isinstance(ctx.trap(NR_GETPID), int)
        return 0

    assert run(k, main) == 0


def test_interposed_process_still_fast_on_other_numbers():
    k = Kernel()

    def main(ctx):
        ctx.trap(NR_SET_EMUL, [NR_CLOSE], lambda c, n, a: 0)
        before = k.trap_fast_total
        ctx.trap(NR_GETPID)
        assert k.trap_fast_total == before + 1
        return 0

    assert run(k, main) == 0


def test_execve_resets_table():
    from repro.workloads import boot_world

    world = boot_world()
    seen = []

    def probe(ctx, argv, envp):
        # The exec that started this image cleared the emulation vector,
        # so the precomputed table must have been dropped with it.
        seen.append(ctx.proc.fast_dispatch)
        ctx.trap(NR_GETPID)
        seen.append(ctx.proc.fast_dispatch)
        return 0

    world.register_program("probe", probe)
    world.install_binary("/bin/probe", "probe")
    assert WEXITSTATUS(world.run("/bin/probe", ["probe"])) == 0
    assert seen[0] is None
    assert seen[1] is not None


def test_ktrace_forces_slow_path():
    k = Kernel()

    def main(ctx):
        ctx.trap(NR_GETPID)
        ctx.proc.ktrace_on = True
        # With obs now installed by ktrace in real flows the path is
        # observed anyway; force the narrow case: ktrace_on with no obs.
        assert k.obs is None
        before = k.trap_fast_total
        ctx.trap(NR_GETPID)
        assert k.trap_fast_total == before  # slow path taken
        ctx.proc.ktrace_on = False
        ctx.trap(NR_GETPID)
        assert k.trap_fast_total == before + 1
        return 0

    assert run(k, main) == 0


def test_dfstrace_forces_slow_path():
    from repro.kernel import dfstrace

    k = Kernel()

    def main(ctx):
        before = k.trap_fast_total
        dfstrace.enable(k)
        ctx.trap(NR_GETPID)
        assert k.trap_fast_total == before
        dfstrace.disable(k)
        ctx.trap(NR_GETPID)
        assert k.trap_fast_total == before + 1
        return 0

    assert run(k, main) == 0


def test_obs_bypasses_fast_path():
    from repro import obs

    k = Kernel()
    obs.enable(k)

    def main(ctx):
        ctx.trap(NR_GETPID)
        return 0

    assert run(k, main) == 0
    assert k.trap_fast_total == 0
    assert k.obs.metrics.counter(("trap", "getpid")) >= 1


def test_einval_message_parity():
    fast = Kernel()
    slow = Kernel(fastpaths="none")
    messages = {}

    def probe(kernel, label):
        def main(ctx):
            try:
                ctx.trap(NR_GETPID, 1, 2, 3, 4, 5)
            except SyscallError as err:
                messages[label] = (err.errno, str(err))
                return 0
            return 1

        assert run(kernel, main) == 0

    probe(fast, "fast")
    probe(slow, "slow")
    assert messages["fast"] == messages["slow"]
    assert messages["fast"][0] == EINVAL


def test_error_parity_on_fast_path():
    fast = Kernel()
    slow = Kernel(fastpaths="none")

    def probe(kernel):
        out = {}

        def main(ctx):
            try:
                ctx.trap(NR_CLOSE, 99)
            except SyscallError as err:
                out["errno"] = err.errno
            return 0

        assert run(kernel, main) == 0
        return out["errno"]

    assert probe(fast) == probe(slow) == EBADF
    assert fast.trap_fast_total >= 1  # errors still count as fast traps


def test_signals_delivered_after_fast_syscall():
    k = Kernel()
    delivered = []

    def main(ctx):
        ctx.trap(NR_SIGVEC, sig.SIGUSR1, lambda s: delivered.append(s), 0)
        ctx.trap(NR_KILL, ctx.proc.pid, sig.SIGUSR1)
        # The kill itself ran on the fast path; its pending signal must
        # have been delivered at that same trap boundary.
        assert delivered == [sig.SIGUSR1]
        return 0

    assert run(k, main) == 0
    assert k.trap_fast_total >= 1


def test_build_fast_dispatch_respects_flag():
    on = Kernel()
    off = Kernel(fastpaths="none")

    def main_on(ctx):
        table = build_fast_dispatch(on, ctx.proc)
        assert table is not _FAST_DISABLED
        assert NR_GETPID in table
        impl, entry = table[NR_GETPID]
        assert entry.name == "getpid"
        return 0

    def main_off(ctx):
        assert build_fast_dispatch(off, ctx.proc) is _FAST_DISABLED
        return 0

    assert run(on, main_on) == 0
    assert run(off, main_off) == 0


def test_fork_child_starts_with_lazy_table():
    from repro.workloads import boot_world

    world = boot_world()
    status = world.run("/bin/sh", ["sh", "-c", "echo hi > /tmp/x"])
    assert WEXITSTATUS(status) == 0
    # Children forked along the way all dispatched through the shared
    # fast table; nothing downgraded the kernel to the slow path.
    assert world.trap_fast_total > 0
