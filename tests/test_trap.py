"""Tests for the trap layer: emulation vectors, htg, signal redirection."""

import pytest

from repro.kernel import signals as sig
from repro.kernel.errno import EINVAL, ENOSYS, SyscallError
from repro.kernel.proc import WEXITSTATUS
from repro.kernel.sysent import number_of

NR = {n: number_of(n) for n in (
    "getpid", "gettimeofday", "open", "kill", "sigvec", "fork", "wait",
    "task_set_emulation", "task_get_emulation", "task_set_signal_redirect",
    "task_get_descriptors",
)}


def test_redirected_call_reaches_handler(run_entry):
    def main(ctx):
        calls = []

        def handler(hctx, number, args):
            calls.append((number, args))
            return 4242

        ctx.trap(NR["task_set_emulation"], [NR["getpid"]], handler)
        assert ctx.trap(NR["getpid"]) == 4242
        assert calls == [(NR["getpid"], ())]
        return 0

    assert run_entry(main) == 0


def test_unredirected_calls_unaffected(run_entry):
    def main(ctx):
        ctx.trap(NR["task_set_emulation"], [NR["getpid"]],
                 lambda c, n, a: 99)
        tv = ctx.trap(NR["gettimeofday"])  # not redirected
        assert tv.tv_sec > 0
        return 0

    assert run_entry(main) == 0


def test_htg_bypasses_redirection(run_entry):
    def main(ctx):
        ctx.trap(NR["task_set_emulation"], [NR["getpid"]],
                 lambda c, n, a: -1)
        real = ctx.htg(NR["getpid"])
        assert real == ctx.proc.pid
        assert ctx.trap(NR["getpid"]) == -1
        return 0

    assert run_entry(main) == 0


def test_handler_errors_surface_as_syscall_errors(run_entry):
    def main(ctx):
        def failing(hctx, number, args):
            raise SyscallError(EINVAL, "agent says no")

        ctx.trap(NR["task_set_emulation"], [NR["getpid"]], failing)
        try:
            ctx.trap(NR["getpid"])
        except SyscallError as err:
            assert err.errno == EINVAL
            return 0
        return 1

    assert run_entry(main) == 0


def test_remove_redirection(run_entry):
    def main(ctx):
        ctx.trap(NR["task_set_emulation"], [NR["getpid"]],
                 lambda c, n, a: -1)
        ctx.trap(NR["task_set_emulation"], [NR["getpid"]], None)
        assert ctx.trap(NR["getpid"]) == ctx.proc.pid
        return 0

    assert run_entry(main) == 0


def test_task_get_emulation(run_entry):
    def main(ctx):
        handler = lambda c, n, a: 0  # noqa: E731
        assert ctx.trap(NR["task_get_emulation"], NR["getpid"]) is None
        ctx.trap(NR["task_set_emulation"], [NR["getpid"]], handler)
        assert ctx.trap(NR["task_get_emulation"], NR["getpid"]) is handler
        return 0

    assert run_entry(main) == 0


def test_emulation_vector_inherited_by_fork(run_entry):
    def main(ctx):
        def handler(hctx, number, args):
            return 777

        ctx.trap(NR["task_set_emulation"], [NR["getpid"]], handler)

        def child(cctx):
            return 0 if cctx.trap(NR["getpid"]) == 777 else 1

        ctx.trap(NR["fork"], child)
        _, status = ctx.trap(NR["wait"])
        return WEXITSTATUS(status)

    assert run_entry(main) == 0


def test_bad_handler_rejected(run_entry):
    def main(ctx):
        try:
            ctx.trap(NR["task_set_emulation"], [NR["getpid"]], "not callable")
        except SyscallError as err:
            assert err.errno == EINVAL
            return 0
        return 1

    assert run_entry(main) == 0


def test_unknown_syscall_enosys(run_entry):
    def main(ctx):
        try:
            ctx.trap(987)
        except SyscallError as err:
            assert err.errno == ENOSYS
            return 0
        return 1

    assert run_entry(main) == 0


def test_too_many_args_einval(run_entry):
    def main(ctx):
        try:
            ctx.trap(NR["getpid"], 1, 2, 3)
        except SyscallError as err:
            assert err.errno == EINVAL
            return 0
        return 1

    assert run_entry(main) == 0


def test_signal_redirect_gets_upcall_first(run_entry):
    def main(ctx):
        order = []
        ctx.trap(NR["sigvec"], sig.SIGUSR1, lambda s: order.append("app"), 0)

        def redirect(rctx, signum, action):
            order.append("agent")
            # Forward to the application handler.
            action.handler(signum)

        ctx.trap(NR["task_set_signal_redirect"], redirect)
        ctx.trap(NR["kill"], ctx.proc.pid, sig.SIGUSR1)
        assert order == ["agent", "app"]
        return 0

    assert run_entry(main) == 0


def test_signal_redirect_can_suppress(run_entry):
    def main(ctx):
        seen = []
        ctx.trap(NR["sigvec"], sig.SIGUSR1, lambda s: seen.append(s), 0)
        ctx.trap(NR["task_set_signal_redirect"], lambda c, s, a: None)
        ctx.trap(NR["kill"], ctx.proc.pid, sig.SIGUSR1)
        assert seen == []  # the agent swallowed it
        return 0

    assert run_entry(main) == 0


def test_task_get_descriptors(run_entry, kernel):
    kernel.write_file("/tmp/f", "x")

    def main(ctx):
        from repro.kernel.ofile import F_SETFD, FD_CLOEXEC, O_RDONLY

        fd = ctx.trap(NR["open"], "/tmp/f", O_RDONLY, 0)
        ctx.trap(number_of("fcntl"), fd, F_SETFD, FD_CLOEXEC)
        table = dict(ctx.trap(NR["task_get_descriptors"]))
        assert table[0] is False  # console
        assert table[fd] is True
        return 0

    assert run_entry(main) == 0


def test_trap_counts_tracked(kernel, run_entry):
    def main(ctx):
        for _ in range(5):
            ctx.trap(NR["getpid"])
        return 0

    before = kernel.trap_total
    run_entry(main)
    assert kernel.trap_total - before >= 6  # 5 getpids + exit


def test_ru_nsyscalls_counts_kernel_crossings(run_entry):
    """Pin the documented rusage semantics: ``ru_nsyscalls`` counts
    kernel *crossings*, so a call an agent intercepts and forwards via
    the htg downcall is charged twice (trap + bypass trap), while an
    intercepted call the agent answers itself is charged once."""

    def main(ctx):
        ru = ctx.proc.rusage

        # Uninterposed: one crossing per call.
        base = ru.ru_nsyscalls
        ctx.trap(NR["getpid"])
        assert ru.ru_nsyscalls - base == 1

        # Intercepted and forwarded: trap + htg = two crossings.
        ctx.trap(NR["task_set_emulation"], [NR["getpid"]],
                 lambda hctx, number, args: hctx.htg(number, *args))
        base = ru.ru_nsyscalls
        ctx.trap(NR["getpid"])
        assert ru.ru_nsyscalls - base == 2

        # Intercepted and answered in the agent: one crossing.
        ctx.trap(NR["task_set_emulation"], [NR["getpid"]],
                 lambda hctx, number, args: 4242)
        base = ru.ru_nsyscalls
        assert ctx.trap(NR["getpid"]) == 4242
        assert ru.ru_nsyscalls - base == 1
        return 0

    assert run_entry(main) == 0


def test_consume_cpu_advances_clock_and_rusage(kernel, run_entry):
    def main(ctx):
        before = ctx.kernel.clock.usec()
        ctx.consume_cpu(50_000)
        assert ctx.kernel.clock.usec() - before == 50_000
        assert ctx.proc.rusage.ru_utime_usec >= 50_000
        return 0

    assert run_entry(main) == 0
