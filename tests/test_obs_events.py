"""Tests for the event bus, trap-spine instrumentation, and exporters."""

import json
import time

from repro import obs
from repro.kernel.errno import SyscallError
from repro.kernel.sysent import number_of
from repro.obs import events as ev
from repro.obs.export import (
    event_to_dict,
    events_to_jsonl,
    format_record,
    kdump_lines,
    syscall_rows,
)

NR_GETPID = number_of("getpid")
NR_OPEN = number_of("open")
NR_KILL = number_of("kill")
NR_SIGVEC = number_of("sigvec")
NR_FORK = number_of("fork")
NR_WAIT = number_of("wait")
NR_PIPE = number_of("pipe")
NR_READ = number_of("read")
NR_WRITE = number_of("write")
NR_CLOSE = number_of("close")
NR_SET_EMULATION = number_of("task_set_emulation")


def test_event_tuple_roundtrip():
    event = ev.Event(7, 123456, 2, "sh", ev.TRAP_KERNEL, "open", "'/etc'")
    rebuilt = ev.Event.from_tuple(event.to_tuple())
    assert rebuilt.to_tuple() == event.to_tuple()
    assert rebuilt.kind == ev.TRAP_KERNEL


def test_bus_subscribe_publish_unsubscribe():
    bus = ev.EventBus()
    seen = []
    assert not bus.active()
    fn = bus.subscribe(seen.append)
    assert bus.active()
    event = ev.Event(1, 0, 1, "sh", ev.PROC_FORK)
    bus.publish(event)
    assert seen == [event]
    bus.unsubscribe(fn)
    assert not bus.active()


def test_disabled_kernel_records_nothing(kernel, run_entry):
    """Pay-per-use: with obs disabled the kernel keeps no obs state."""
    assert kernel.obs is None

    def main(ctx):
        for _ in range(10):
            ctx.trap(NR_GETPID)
        return 0

    assert run_entry(main) == 0
    assert kernel.obs is None  # running does not conjure one up


def test_trap_metrics_split_agent_and_kernel_paths(kernel, run_entry):
    registry = obs.enable(kernel).metrics

    def main(ctx):
        ctx.trap(NR_GETPID)  # kernel path
        ctx.trap(NR_SET_EMULATION, [NR_GETPID], lambda c, n, a: 42)
        assert ctx.trap(NR_GETPID) == 42  # agent path
        return 0

    assert run_entry(main) == 0
    assert registry.counter(("trap", "getpid")) == 2
    assert registry.counter(("trap.kernel", "getpid")) == 1
    assert registry.counter(("trap.agent", "getpid")) == 1
    hist = registry.histogram(("trap.vusec", "getpid"))
    assert hist is not None and hist.count == 2


def test_trap_error_metrics(kernel, run_entry):
    registry = obs.enable(kernel).metrics

    def main(ctx):
        try:
            ctx.trap(NR_OPEN, "/definitely/missing", 0, 0)
        except SyscallError:
            pass
        return 0

    assert run_entry(main) == 0
    assert registry.counter(("trap.error", "open", "ENOENT")) == 1


def test_htg_metrics(kernel, run_entry):
    registry = obs.enable(kernel).metrics

    def main(ctx):
        ctx.trap(NR_SET_EMULATION, [NR_GETPID],
                 lambda hctx, n, a: hctx.htg(n, *a))
        ctx.trap(NR_GETPID)
        return 0

    assert run_entry(main) == 0
    assert registry.counter(("htg", "getpid")) == 1


def test_signal_metrics_upcall_vs_deliver(kernel, run_entry):
    registry = obs.enable(kernel).metrics

    def main(ctx):
        from repro.kernel import signals as sig

        ctx.trap(NR_SIGVEC, sig.SIGUSR1, lambda s: None, 0)
        ctx.trap(NR_KILL, ctx.proc.pid, sig.SIGUSR1)  # app delivery
        ctx.trap(number_of("task_set_signal_redirect"),
                 lambda c, s, a: None)
        ctx.trap(NR_KILL, ctx.proc.pid, sig.SIGUSR1)  # agent upcall
        return 0

    assert run_entry(main) == 0
    assert registry.counter(("signal.deliver", "SIGUSR1")) == 1
    assert registry.counter(("signal.upcall", "SIGUSR1")) == 1


def test_bus_sees_lifecycle_events(kernel, run_entry):
    switchboard = obs.enable(kernel)
    kinds = []
    switchboard.bus.subscribe(lambda event: kinds.append(event.kind))

    def main(ctx):
        ctx.trap(NR_FORK, lambda child: 0)
        ctx.trap(NR_WAIT)
        return 0

    assert run_entry(main) == 0
    assert ev.PROC_FORK in kinds
    assert ev.PROC_EXIT in kinds
    assert ev.TRAP_KERNEL in kinds and ev.TRAP_RET in kinds


def test_event_ordering_under_pipe_blocking(kernel, run_entry):
    """A blocked pipe reader's block event precedes the writer's write,
    and its wakeup follows it, in global sequence order."""
    switchboard = obs.enable(kernel)
    events = []
    switchboard.bus.subscribe(events.append)
    child_holder = []

    def main(ctx):
        rfd, wfd = ctx.trap(NR_PIPE)

        def child(cctx):
            data = cctx.trap(NR_READ, rfd, 100)
            return 0 if data == b"ping" else 1

        pid, _ = ctx.trap(NR_FORK, child)
        child_holder.append(pid)
        # Wait (in host time) until the child is asleep on the pipe.
        deadline = time.time() + 5.0
        child_proc = ctx.kernel._procs[pid]
        while not child_proc.state.startswith("sleeping"):
            assert time.time() < deadline, child_proc.state
            time.sleep(0.001)
        ctx.trap(NR_WRITE, wfd, b"ping")
        ctx.trap(NR_CLOSE, wfd)
        _, status = ctx.trap(NR_WAIT)
        return status >> 8

    assert run_entry(main) == 0
    child_pid = child_holder[0]
    blocks = [e for e in events
              if e.kind == ev.PIPE_BLOCK and e.pid == child_pid]
    wakeups = [e for e in events
               if e.kind == ev.PIPE_WAKEUP and e.pid == child_pid]
    writes = [e for e in events
              if e.kind == ev.TRAP_KERNEL and e.name == "write"
              and e.pid != child_pid]
    assert blocks and wakeups and writes
    assert blocks[0].name == "read"
    assert blocks[0].seq < writes[0].seq < wakeups[0].seq


def test_layer_usec_attribution(kernel, run_entry):
    from repro.agents.time_symbolic import TimeSymbolic

    registry = obs.enable(kernel).metrics

    def main(ctx):
        TimeSymbolic().attach(ctx)
        for _ in range(5):
            ctx.trap(NR_GETPID)
        return 0

    assert run_entry(main) == 0
    hist = registry.histogram(("layer.usec", "symbolic"))
    assert hist is not None and hist.count >= 5
    per_call = registry.histogram(("layer.usec", "symbolic", "getpid"))
    assert per_call is not None and per_call.count == 5
    assert registry.counter(("agent.call", "symbolic", "getpid")) == 5


def test_exporters_format_and_jsonl():
    event = ev.Event(3, 1_500_000, 2, "cat", ev.TRAP_AGENT, "open",
                     "'/etc/passwd'")
    line = format_record(event)
    assert "CALL*" in line and "open" in line and "cat" in line
    assert "1.500000" in line
    lines = kdump_lines([event], dropped=4)
    assert lines[-1] == "1 events, 4 dropped"
    parsed = json.loads(events_to_jsonl([event.to_tuple()]))
    assert parsed == event_to_dict(event)


def test_syscall_rows_ordering():
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    registry.inc(("trap", "read"), 10)
    registry.inc(("trap.kernel", "read"), 10)
    registry.inc(("trap", "open"), 3)
    registry.inc(("trap.agent", "open"), 3)
    registry.observe(("trap.vusec", "read"), 100)
    rows = syscall_rows(registry)
    assert rows[0][0] == "read" and rows[0][1] == 10
    assert rows[1][0] == "open" and rows[1][2] == 3
    assert syscall_rows(registry, top=1) == rows[:1]


def test_enable_disable_roundtrip(kernel):
    first = obs.enable(kernel)
    assert obs.is_enabled(kernel)
    assert obs.enable(kernel) is first  # idempotent
    detached = obs.disable(kernel)
    assert detached is first
    assert not obs.is_enabled(kernel)
    assert obs.disable(kernel) is None


def test_snapshot_includes_ktrace_stats(kernel, run_entry):
    switchboard = obs.enable(kernel, ktrace_capacity=8, trace_all=True)

    def main(ctx):
        ctx.trap(NR_GETPID)
        return 0

    assert run_entry(main) == 0
    snap = switchboard.snapshot()
    assert snap["ktrace"]["capacity"] == 8
    assert snap["ktrace"]["total"] > 0
    assert "counters" in snap and "histograms" in snap
