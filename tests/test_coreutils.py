"""Tests for the core utilities."""

import pytest


def test_echo(sh):
    assert sh("echo a b  c")[1] == "a b c\n"


def test_echo_n(sh):
    assert sh("echo -n no newline")[1] == "no newline"


def test_true_false(sh):
    assert sh("true")[0] == 0
    assert sh("false")[0] == 1


def test_cat_multiple_files(world, sh):
    world.write_file("/tmp/1", "one\n")
    world.write_file("/tmp/2", "two\n")
    code, out = sh("cat /tmp/1 /tmp/2")
    assert code == 0
    assert out == "one\ntwo\n"


def test_cat_missing_file(sh):
    code, out = sh("cat /tmp/missing")
    assert code == 1
    assert "cat:" in out


def test_cp(world, sh):
    world.write_file("/tmp/src", "copy me" * 1000)
    code, _ = sh("cp /tmp/src /tmp/dst")
    assert code == 0
    assert world.read_file("/tmp/dst") == world.read_file("/tmp/src")


def test_cp_preserves_mode(world, sh):
    world.write_file("/tmp/x1", "#!/bin/sh\n")
    node = world.lookup_host("/tmp/x1")
    node.mode = (node.mode & ~0o777) | 0o755
    sh("cp /tmp/x1 /tmp/x2")
    assert world.lookup_host("/tmp/x2").mode & 0o777 == 0o755


def test_mv(world, sh):
    world.write_file("/tmp/old", "payload")
    code, _ = sh("mv /tmp/old /tmp/new")
    assert code == 0
    assert world.read_file("/tmp/new") == b"payload"
    assert not world.lookup_host("/tmp").contains("old")


def test_rm(world, sh):
    world.write_file("/tmp/gone", "x")
    assert sh("rm /tmp/gone")[0] == 0
    assert not world.lookup_host("/tmp").contains("gone")
    assert sh("rm /tmp/gone")[0] == 1
    assert sh("rm -f /tmp/gone")[0] == 0


def test_ln_hard_and_symbolic(world, sh):
    world.write_file("/tmp/orig", "linked")
    sh("ln /tmp/orig /tmp/hard")
    sh("ln -s /tmp/orig /tmp/soft")
    assert world.read_file("/tmp/hard") == b"linked"
    assert world.lookup_host("/tmp/soft", follow=False).is_symlink()


def test_mkdir_rmdir(world, sh):
    assert sh("mkdir /tmp/d1 /tmp/d2")[0] == 0
    assert world.lookup_host("/tmp/d1").is_dir()
    assert sh("rmdir /tmp/d1 /tmp/d2")[0] == 0


def test_touch_creates_and_updates(world, sh):
    assert sh("touch /tmp/stamp")[0] == 0
    node = world.lookup_host("/tmp/stamp")
    old_mtime = node.mtime
    world.clock.advance(10_000_000)
    sh("touch /tmp/stamp")
    assert world.lookup_host("/tmp/stamp").mtime > old_mtime


def test_ls_sorted(world, sh):
    world.mkdir_p("/tmp/lsd")
    for name in ("zz", "aa", "mm"):
        world.write_file("/tmp/lsd/" + name, "")
    code, out = sh("ls /tmp/lsd")
    assert out.splitlines() == ["aa", "mm", "zz"]


def test_ls_long_format(world, sh):
    world.write_file("/tmp/lsfile", "12345")
    code, out = sh("ls -l /tmp/lsfile")
    assert code == 0
    assert "-rw-r--r--" in out
    assert "5" in out


def test_ls_all_shows_dots(world, sh):
    world.mkdir_p("/tmp/lsa")
    code, out = sh("ls -a /tmp/lsa")
    lines = out.splitlines()
    assert "." in lines and ".." in lines


def test_ls_missing(sh):
    code, out = sh("ls /tmp/nonexistent")
    assert code == 1


def test_pwd(world, sh):
    code, out = sh("cd /usr/lib; pwd")
    assert out.strip() == "/usr/lib"
    code, out = sh("cd /; pwd")
    assert out.strip() == "/"


def test_head(world, sh):
    world.write_file("/tmp/lines", "".join("line %d\n" % i for i in range(20)))
    code, out = sh("head -3 /tmp/lines")
    assert out == "line 0\nline 1\nline 2\n"


def test_wc(world, sh):
    world.write_file("/tmp/wc1", "a b\nc\n")
    code, out = sh("wc /tmp/wc1")
    assert out.split()[:3] == ["2", "3", "6"]


def test_wc_total_line(world, sh):
    world.write_file("/tmp/wa", "x\n")
    world.write_file("/tmp/wb", "y\n")
    code, out = sh("wc /tmp/wa /tmp/wb")
    assert "total" in out


def test_grep_exit_codes(world, sh):
    world.write_file("/tmp/g", "needle in haystack\n")
    assert sh("grep needle /tmp/g")[0] == 0
    assert sh("grep absent /tmp/g")[0] == 1
    assert sh("grep")[0] == 2


def test_grep_labels_multiple_files(world, sh):
    world.write_file("/tmp/ga", "match\n")
    world.write_file("/tmp/gb", "match\n")
    code, out = sh("grep match /tmp/ga /tmp/gb")
    assert "/tmp/ga:match" in out
    assert "/tmp/gb:match" in out


def test_date_prints_virtual_time(world, sh):
    code, out = sh("date")
    seconds = int(out.split(".")[0])
    assert abs(seconds - world.clock.now().tv_sec) < 5


def test_sleep_advances_clock(world, sh):
    before = world.clock.usec()
    sh("sleep 3")
    assert world.clock.usec() - before >= 3_000_000


def test_hostname(world, sh):
    assert sh("hostname")[1].strip() == world.hostname


def test_kill_from_shell(world, sh):
    code, out = sh("kill -15 9999")
    assert code == 1
    assert "kill:" in out
