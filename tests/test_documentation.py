"""Documentation audit: every public item carries a doc comment.

Walks every module under ``repro`` and requires a docstring on the
module itself and on every public class, function, and method defined
there (names not starting with ``_``, excluding trivial inherited
overrides whose parent documents the contract).
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _modules():
    names = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return sorted(names)


def _is_local(obj, module):
    return getattr(obj, "__module__", None) == module.__name__


def _documented_somewhere_in_mro(cls, name):
    for base in cls.__mro__[1:]:
        parent = base.__dict__.get(name)
        if parent is not None and getattr(parent, "__doc__", None):
            return True
    return False


def test_every_module_has_a_docstring():
    missing = [
        name for name in _modules()
        if not (importlib.import_module(name).__doc__ or "").strip()
    ]
    assert not missing, missing


def test_every_public_item_has_a_docstring():
    missing = []
    for module_name in _modules():
        module = importlib.import_module(module_name)
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if inspect.isclass(obj) and _is_local(obj, module):
                if not (obj.__doc__ or "").strip():
                    missing.append("%s.%s" % (module_name, name))
                for attr_name, attr in vars(obj).items():
                    if attr_name.startswith("_"):
                        continue
                    if not (inspect.isfunction(attr) or isinstance(
                            attr, (classmethod, staticmethod))):
                        continue
                    func = attr.__func__ if isinstance(
                        attr, (classmethod, staticmethod)) else attr
                    if (func.__doc__ or "").strip():
                        continue
                    if _documented_somewhere_in_mro(obj, attr_name):
                        continue  # the contract is documented on the base
                    missing.append(
                        "%s.%s.%s" % (module_name, name, attr_name)
                    )
            elif inspect.isfunction(obj) and _is_local(obj, module):
                if not (obj.__doc__ or "").strip():
                    missing.append("%s.%s" % (module_name, name))
    assert not missing, "undocumented public items:\n" + "\n".join(missing)
