"""Tests for the tracedump log summariser."""

import pytest

from repro.agents.trace import TraceSymbolicSyscall
from repro.kernel.proc import WEXITSTATUS
from repro.programs.tracedump import parse_trace_lines, summarize
from repro.toolkit import run_under_agent


SAMPLE = (
    "[3] open('/tmp/x', O_RDONLY, 666) ...\n"
    "[3] ... open -> 3\n"
    "[3] read(3, 10) ...\n"
    "[3] ... read -> [10 bytes]\n"
    "[3] open('/gone', O_RDONLY, 666) ...\n"
    "[3] ... open -> ENOENT\n"
    "[4] signal SIGUSR1 received\n"
    "[4] exit(0) ...\n"
)


def test_parse_trace_lines():
    events = list(parse_trace_lines(SAMPLE))
    assert (3, "open", None) in events
    assert (3, "open", "3") in events
    assert (3, "open", "ENOENT") in events
    assert (4, "exit", None) in events


def test_summarize_counts():
    calls, errors, per_pid, signals = summarize(SAMPLE)
    assert calls == {"open": 2, "read": 1, "exit": 1}
    assert errors == {("open", "ENOENT"): 1}
    assert per_pid == {3: 3, 4: 1}
    assert signals == 1


def test_tracedump_end_to_end(world):
    agent = TraceSymbolicSyscall("/tmp/session.trace")
    run_under_agent(
        world, agent, "/bin/sh",
        ["sh", "-c", "echo x > /tmp/td; cat /tmp/td; cat /missing; true"],
    )
    world.console.take_output()
    status = world.run("/bin/tracedump", ["tracedump", "/tmp/session.trace"])
    assert WEXITSTATUS(status) == 0
    out = world.console.take_output().decode()
    assert "calls" in out.splitlines()[0]
    assert "open" in out
    assert "ENOENT" in out


def test_tracedump_errors_only(world):
    agent = TraceSymbolicSyscall("/tmp/session2.trace")
    run_under_agent(
        world, agent, "/bin/sh", ["sh", "-c", "cat /definitely/gone; true"]
    )
    world.console.take_output()
    status = world.run(
        "/bin/tracedump", ["tracedump", "-e", "/tmp/session2.trace"]
    )
    out = world.console.take_output().decode()
    assert "open -> ENOENT" in out
    # Successful calls are not listed in errors-only mode.
    assert "exit" not in out


def test_tracedump_missing_file(world):
    status = world.run("/bin/tracedump", ["tracedump", "/tmp/absent.trace"])
    assert WEXITSTATUS(status) == 1


def test_tracedump_usage(world):
    status = world.run("/bin/tracedump", ["tracedump"])
    assert WEXITSTATUS(status) == 2


def test_tracedump_can_run_under_trace(world):
    """The summariser itself is an unmodified binary: trace the tracer."""
    agent = TraceSymbolicSyscall("/tmp/inner.trace")
    run_under_agent(world, agent, "/bin/true", ["true"])
    world.console.take_output()
    outer = TraceSymbolicSyscall("/tmp/outer.trace")
    status = run_under_agent(
        world, outer, "/bin/tracedump", ["tracedump", "/tmp/inner.trace"]
    )
    assert WEXITSTATUS(status) == 0
    assert b"read(" in world.read_file("/tmp/outer.trace")
