"""Equivalence: fast paths on vs the seed kernel, bit for bit.

The fast paths are performance transparent or they are nothing — the
paper's transparency bar applied to the kernel's own shortcuts.  These
tests run identical operation sequences against two kernels, one with
every fast path enabled (the default) and one with ``fastpaths="none"``
(the seed code paths), and require identical results: same return
values, same errnos, same bytes on disk, under plain syscalls, under
randomised operation sequences, and under interposition agents (union
name spaces and transactions) whose mutations must invalidate the name
cache through the same funnels.
"""

import pytest

from repro.kernel import Kernel
from repro.kernel.errno import SyscallError
from repro.kernel.proc import WEXITSTATUS
from repro.kernel.sysent import number_of
from repro.kernel.trap import UserContext

NR = {n: number_of(n) for n in (
    "open", "close", "read", "write", "unlink", "rename", "mkdir",
    "rmdir", "symlink", "stat", "lstat", "chdir", "lseek",
)}

from repro.kernel.ofile import O_CREAT, O_RDONLY, O_TRUNC, O_WRONLY


def _pair():
    """(fast kernel, seed kernel), each with a persistent process."""
    pair = []
    for flags in (None, "none"):
        kernel = Kernel() if flags is None else Kernel(fastpaths=flags)
        proc = kernel._create_initial_process()
        pair.append(UserContext(kernel, proc))
    return pair


def _apply(ctx, name, *args):
    """One trap, normalised to ('ok', value) or ('err', errno)."""
    try:
        if name == "creat":
            path, mode = args
            fd = ctx.trap(NR["open"], path, O_WRONLY | O_CREAT | O_TRUNC, mode)
            ctx.trap(NR["close"], fd)
            return ("ok", fd)
        return ("ok", ctx.trap(NR[name], *args))
    except SyscallError as err:
        return ("err", err.errno)


def _apply_both(contexts, name, *args):
    fast, seed = (_apply(ctx, name, *args) for ctx in contexts)
    assert fast == seed, "%s%r diverged: fast=%r seed=%r" % (
        name, args, fast, seed)
    return fast


def _stat_fields(outcome):
    kind, value = outcome
    if kind == "err":
        return outcome
    # st_ino allocation order is deterministic, so it must match too.
    return (value.st_ino, value.st_mode, value.st_nlink, value.st_size)


def test_scripted_sequence_equivalence():
    contexts = _pair()
    script = [
        ("mkdir", "/work", 0o755),
        ("mkdir", "/work/sub", 0o755),
        ("creat", "/work/a.txt", 0o644),
        ("stat", "/work/a.txt"),
        ("rename", "/work/a.txt", "/work/sub/b.txt"),
        ("stat", "/work/a.txt"),          # ENOENT both sides
        ("stat", "/work/sub/b.txt"),
        ("symlink", "/work/sub/b.txt", "/work/link"),
        ("stat", "/work/link"),
        ("lstat", "/work/link"),
        ("unlink", "/work/sub/b.txt"),
        ("stat", "/work/link"),           # dangling: ENOENT both sides
        ("rmdir", "/work/sub"),
        ("stat", "/work/sub"),
        ("mkdir", "/work/sub", 0o755),    # recreate after rmdir
        ("stat", "/work/sub"),
        ("rmdir", "/missing"),            # ENOENT both sides
    ]
    for name, *args in script:
        fast, seed = (_apply(ctx, name, *args) for ctx in contexts)
        if name in ("stat", "lstat"):
            fast, seed = _stat_fields(fast), _stat_fields(seed)
        assert fast == seed, "%s%r diverged: fast=%r seed=%r" % (
            name, tuple(args), fast, seed)


def test_read_back_equivalence():
    contexts = _pair()
    _apply_both(contexts, "mkdir", "/d", 0o755)
    payload = b"zero copy reads must not change what userland sees\n" * 40
    for ctx in contexts:
        ctx.kernel.write_file("/d/data.bin", payload)
    reads = []
    for ctx in contexts:
        fd = ctx.trap(NR["open"], "/d/data.bin", O_RDONLY)
        chunks = []
        while True:
            chunk = ctx.trap(NR["read"], fd, 777)  # odd size: misaligned
            assert isinstance(chunk, bytes)        # never a memoryview
            if not chunk:
                break
            chunks.append(chunk)
        ctx.trap(NR["close"], fd)
        reads.append(b"".join(chunks))
    assert reads[0] == reads[1] == payload


# -- randomised sequences -------------------------------------------------

try:
    from hypothesis import HealthCheck, settings
    from hypothesis.stateful import RuleBasedStateMachine, rule
    import hypothesis.strategies as strat

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships with the image
    HAVE_HYPOTHESIS = False


if HAVE_HYPOTHESIS:

    _NAMES = strat.sampled_from(["a", "b", "c", "dir1", "dir2", "deep"])
    _PARENTS = strat.sampled_from(["/", "/dir1", "/dir1/deep", "/dir2"])

    _PATHS = strat.builds(
        lambda parent, name: parent.rstrip("/") + "/" + name,
        _PARENTS, _NAMES)

    class FastpathEquivalence(RuleBasedStateMachine):
        """Random creat/unlink/rename/mkdir/rmdir/symlink/stat sequences
        applied to both kernels in lock step; every outcome must match.
        """

        def __init__(self):
            super().__init__()
            self.contexts = _pair()

        def _both(self, name, *args):
            fast, seed = (_apply(ctx, name, *args) for ctx in self.contexts)
            if name in ("stat", "lstat"):
                fast, seed = _stat_fields(fast), _stat_fields(seed)
            assert fast == seed, "%s%r diverged: fast=%r seed=%r" % (
                name, args, fast, seed)

        @rule(path=_PATHS)
        def creat(self, path):
            self._both("creat", path, 0o644)

        @rule(path=_PATHS)
        def mkdir(self, path):
            self._both("mkdir", path, 0o755)

        @rule(path=_PATHS)
        def unlink(self, path):
            self._both("unlink", path)

        @rule(path=_PATHS)
        def rmdir(self, path):
            self._both("rmdir", path)

        @rule(src=_PATHS, dst=_PATHS)
        def rename(self, src, dst):
            self._both("rename", src, dst)

        @rule(link_target=_PATHS, link=_PATHS)
        def symlink(self, link_target, link):
            self._both("symlink", link_target, link)

        @rule(path=_PATHS)
        def stat(self, path):
            self._both("stat", path)

        @rule(path=_PATHS)
        def lstat(self, path):
            self._both("lstat", path)

        @rule(path=_PATHS)
        def read_contents(self, path):
            outcomes = []
            for ctx in self.contexts:
                try:
                    fd = ctx.trap(NR["open"], path, O_RDONLY)
                    data = ctx.trap(NR["read"], fd, 4096)
                    ctx.trap(NR["close"], fd)
                    outcomes.append(("ok", data))
                except SyscallError as err:
                    outcomes.append(("err", err.errno))
            assert outcomes[0] == outcomes[1], outcomes

        def teardown(self):
            # Final sweep: the two namespaces must have converged.
            for path in ("/", "/dir1", "/dir1/deep", "/dir2"):
                self._both("stat", path)

    FastpathEquivalence.TestCase.settings = settings(
        max_examples=25, stateful_step_count=30, deadline=None,
        suppress_health_check=[HealthCheck.too_slow])

    TestFastpathEquivalence = FastpathEquivalence.TestCase


# -- under interposition agents ------------------------------------------


def _union_txn_run(fastpaths):
    """One union+txn agent stack run; returns observable state."""
    from repro.agents.txn import TxnAgent
    from repro.agents.union_dirs import UnionAgent
    from repro.workloads import boot_world
    from tests.test_agent_stacks import run_stacked

    world = (boot_world() if fastpaths is None
             else boot_world(fastpaths=fastpaths))
    world.mkdir_p("/m1")
    world.mkdir_p("/m2")
    world.write_file("/m2/shadow.txt", "from member two")
    world.mkdir_p("/u")
    union = UnionAgent()
    union.pset.add_union("/u", ["/m1", "/m2"])
    txn = TxnAgent(scratch_dir="/tmp/eq.txn", outcome="abort")
    status = run_stacked(
        world, [union, txn], "/bin/sh",
        ["sh", "-c",
         "cat /u/shadow.txt; echo scribble > /u/shadow.txt; cat /u/shadow.txt"],
    )
    return (
        WEXITSTATUS(status),
        world.console.take_output(),
        world.read_file("/m2/shadow.txt"),
    )


def test_union_txn_agents_equivalent():
    """Union + aborted transaction: identical console output and, after
    the abort, identical (untouched) backing files — whiteout handling
    and copy-up must not be confused by stale name cache entries."""
    fast = _union_txn_run(None)
    seed = _union_txn_run("none")
    assert fast == seed
    assert fast[0] == 0
    assert b"from member two" in fast[1]
    assert b"scribble" in fast[1]              # txn saw its own write
    assert fast[2] == b"from member two"       # ...then aborted


def test_format_workload_output_identical():
    """The flagship workload's output document must be byte-identical
    between the default kernel and the seed configuration."""
    from repro.workloads import boot_world, format_dissertation

    outputs = []
    for flags in (None, "none"):
        world = (boot_world() if flags is None
                 else boot_world(fastpaths=flags))
        format_dissertation.setup(world)
        status = format_dissertation.run(world)
        assert WEXITSTATUS(status) == 0
        outputs.append(world.read_file(format_dissertation.OUTPUT))
    assert outputs[0] == outputs[1]
    assert len(outputs[0]) > 10_000  # a real document, not a stub
