"""Shared fixtures for the test suite."""

import pytest

from repro.kernel import Kernel
from repro.kernel.proc import WEXITSTATUS
from repro.workloads import boot_world


@pytest.fixture
def kernel():
    """A bare booted kernel (no userland binaries installed)."""
    return Kernel()


@pytest.fixture
def world():
    """A kernel with the full userland installed."""
    return boot_world()


@pytest.fixture
def run_entry(kernel):
    """Run a host callable as a simulated process; returns its exit code."""

    def runner(entry, uid=0):
        status = kernel.run_entry(entry, uid=uid)
        return WEXITSTATUS(status)

    return runner


def install_program(world, name, main, path=None):
    """Install a test program written against the libc Sys API."""
    from repro.programs.libc import Sys

    def factory(ctx, argv, envp):
        return main(Sys(ctx), argv, envp)

    world.register_program(name, factory)
    world.install_binary(path or "/bin/" + name, name)


@pytest.fixture
def sh(world):
    """Run a shell command in the world; returns (exit_code, console_text)."""

    def run(command, uid=0):
        status = world.run("/bin/sh", ["sh", "-c", command], uid=uid)
        return WEXITSTATUS(status), world.console.take_output().decode()

    return run
