"""Tests for the sampling profiler and the watchpoint engine.

The profiler samples on the virtual clock, so its output is a pure
function of the run: determinism across identical runs and bit-identity
across a record/replay round trip are the acceptance bars.  Watchpoints
evaluate declarative rules at trap-spine flush points; the grammar
round-trips, trips emit events/counters/signals, evaluation is armoured
against malformed rules, and a seeded chaos run under a fuzzing rule
set never panics the machine.
"""

import pytest

from repro.kernel import Kernel
from repro.kernel.proc import WEXITSTATUS
from repro.kernel.sysent import number_of
from repro.obs.profile import Profiler, disable_profile, enable_profile
from repro.obs.recorder import Recorder
from repro.obs.watch import (
    WatchRule,
    WatchSet,
    disable_watches,
    enable_watches,
)
from repro.workloads import boot_world

NR_GETPID = number_of("getpid")


# -- profiler: lifecycle ---------------------------------------------------


def test_enable_disable_roundtrip(kernel):
    prof = enable_profile(kernel, interval_usec=500)
    assert kernel.profiler is prof
    # Same interval: idempotent, samples keep accumulating.
    assert enable_profile(kernel, interval_usec=500) is prof
    # New interval: a fresh profiler replaces it.
    other = enable_profile(kernel, interval_usec=250)
    assert other is not prof and kernel.profiler is other
    assert disable_profile(kernel) is other
    assert kernel.profiler is None
    assert disable_profile(kernel) is None


def test_interval_must_be_positive():
    with pytest.raises(ValueError):
        Profiler(interval_usec=0)


def test_stats_shape(kernel):
    prof = enable_profile(kernel)
    assert prof.stats() == {"enabled": True, "interval_usec": 1000,
                            "samples": 0, "stacks": 0}


# -- profiler: sampling ----------------------------------------------------


def _profiled_run(interval=300):
    """A deterministic workload under a fresh profiler; returns it."""
    world = boot_world()
    prof = enable_profile(world, interval_usec=interval)
    status = world.run("/bin/sh",
                       ["sh", "-c", "echo hi; cat /etc/passwd | wc"])
    assert WEXITSTATUS(status) == 0
    world.console.take_output()
    return prof


def test_samples_attribute_kernel_leaves():
    prof = _profiled_run()
    assert prof.sample_total > 0
    lines = prof.collapsed()
    assert lines
    for line in lines:
        stack, count = line.rsplit(" ", 1)
        frames = stack.split(";")
        assert frames[0] == "user" and int(count) > 0
        assert all(f.startswith(("kernel:", "agent:")) for f in frames[1:])


def test_consume_cpu_spans_charge_user_time(kernel):
    prof = enable_profile(kernel, interval_usec=1000)

    def main(ctx):
        ctx.consume_cpu(10_000)
        return 0

    assert WEXITSTATUS(kernel.run_entry(main)) == 0
    folded = dict(
        line.rsplit(" ", 1) for line in prof.collapsed())
    # The 10ms burn crosses ten 1ms boundaries, all charged to pure
    # user time (no kernel leaf during consume_cpu).
    assert int(folded["user"]) >= 10


def test_identical_runs_profile_identically():
    """A single-process workload samples identically run to run.

    (Multi-process workloads interleave on host threads, so *their*
    bit-identity guarantee is the record/replay round trip below.)
    """

    def run_once():
        world = boot_world()
        prof = enable_profile(world, interval_usec=300)

        def main(ctx):
            fd = ctx.trap(number_of("open"), "/etc/passwd", 0, 0)
            while ctx.trap(number_of("read"), fd, 64):
                ctx.consume_cpu(250)
            ctx.trap(number_of("close"), fd)
            return 0

        assert WEXITSTATUS(world.run_entry(main)) == 0
        return prof

    first, second = run_once(), run_once()
    assert first.sample_total == second.sample_total > 0
    assert first.collapsed(per_pid=True) == second.collapsed(per_pid=True)
    assert first.timeline == second.timeline


def test_table_and_counters_are_consistent():
    prof = _profiled_run()
    rows = {frame: (self_c, total_c)
            for frame, self_c, total_c in prof.table()}
    # Every sample has the user base frame, so user's total is the total.
    assert rows["user"][1] == prof.sample_total
    counters = prof.chrome_counters()
    assert sum(e["args"]["samples"] for e in counters) == prof.sample_total
    assert all(e["ph"] == "C" for e in counters)


def test_agent_frames_appear_under_interposition():
    from repro.agents.monitor import MonitorAgent
    from repro.toolkit import run_under_agent

    world = boot_world()
    prof = enable_profile(world, interval_usec=300)
    agent = MonitorAgent("/tmp/prof.monitor")
    status = run_under_agent(world, agent, "/bin/sh",
                             ["sh", "-c", "cat /etc/passwd > /dev/null"])
    assert WEXITSTATUS(status) == 0
    agent_frames = [line for line in prof.collapsed()
                    if "agent:symbolic" in line]
    assert agent_frames
    # Agent frames nest between user and the kernel leaf.
    for line in agent_frames:
        frames = line.rsplit(" ", 1)[0].split(";")
        assert frames[0] == "user"
        assert frames[1].startswith("agent:")


def test_per_pid_collapsed_output():
    prof = _profiled_run()
    per_pid = prof.collapsed(per_pid=True)
    assert all(line.startswith("pid") for line in per_pid)
    # Folding pids back together recovers the machine view's total.
    total = sum(int(line.rsplit(" ", 1)[1]) for line in per_pid)
    assert total == prof.sample_total


# -- profiler: record/replay bit-identity ----------------------------------


def test_profile_is_bit_identical_across_record_replay():
    command = "echo det; cat /etc/passwd | wc"

    world = boot_world()
    Recorder(mode="record").attach(world)
    prof1 = enable_profile(world, interval_usec=300)
    status = world.run("/bin/sh", ["sh", "-c", command])
    assert WEXITSTATUS(status) == 0
    decisions = world.recorder.decisions

    world2 = boot_world()
    Recorder(mode="replay", log=decisions).attach(world2)
    prof2 = enable_profile(world2, interval_usec=300)
    status = world2.run("/bin/sh", ["sh", "-c", command])
    assert WEXITSTATUS(status) == 0

    assert prof1.sample_total == prof2.sample_total > 0
    assert prof1.collapsed(per_pid=True) == prof2.collapsed(per_pid=True)
    assert prof1.timeline == prof2.timeline


# -- profiler: compiled dispatch stands down -------------------------------


def test_profiler_stands_down_compiled_dispatch_and_resumes():
    from repro.kernel.trap import UserContext
    from repro.toolkit.symbolic import SymbolicSyscall

    k = Kernel()
    proc = k._create_initial_process()
    ctx = UserContext(k, proc)
    agent = SymbolicSyscall()
    agent.attach(ctx, [])
    ctx.trap(NR_GETPID)
    before = k.trap_compiled_total
    assert before >= 1
    # Interval = the 100 usec trap tick, so every trap takes a sample.
    prof = enable_profile(k, interval_usec=100)
    # Attaching retired the compiled tables machine-wide.
    assert proc.compiled_dispatch is None
    ctx.trap(NR_GETPID)
    assert k.trap_compiled_total == before
    # The un-compiled tower path keeps the agent frame visible.
    assert any("agent:symbolic" in line for line in prof.collapsed())
    disable_profile(k)
    ctx.trap(NR_GETPID)
    ctx.trap(NR_GETPID)
    assert k.trap_compiled_total > before


# -- watch rules: grammar --------------------------------------------------


def test_parse_describe_roundtrip():
    text = ("# alert on hot readers\n"
            "counter_rate trap|read > 1000\n"
            "histogram_p99 trap.vusec|open >= 500\n"
            "gauge_threshold trap.pid|<pid>|write >= 3 signal 16\n")
    watches = WatchSet.parse(text)
    assert len(watches.rules) == 3
    reparsed = WatchSet.parse(watches.describe())
    assert reparsed.describe() == watches.describe()
    assert watches.rules[2].per_pid
    assert watches.rules[2].signum == 16


def test_parse_rejects_malformed_lines():
    with pytest.raises(ValueError):
        WatchSet.parse("counter_rate trap|read >\n")
    with pytest.raises(ValueError):
        WatchRule("no_such_kind", "trap|read", ">", 1)
    with pytest.raises(ValueError):
        WatchRule("counter_rate", "trap|read", "!=", 1)


def test_random_sets_are_seed_deterministic():
    a = WatchSet.random(7)
    b = WatchSet.random(7)
    c = WatchSet.random(8)
    assert a.describe() == b.describe()
    assert a.describe() != c.describe()
    assert len(a.rules) == 8


# -- watch rules: evaluation -----------------------------------------------


def _watched_world(spec, interval=500):
    from repro import obs

    world = boot_world()
    obs.enable(world)
    watches = enable_watches(world, spec, interval_usec=interval)
    return world, watches


def test_gauge_threshold_trips_and_counts():
    world, watches = _watched_world(
        "gauge_threshold trap|write >= 3\n", interval=200)
    # The trailing cat gives the evaluator virtual time to run *after*
    # the third write has pushed the gauge over the threshold.
    status = world.run(
        "/bin/sh",
        ["sh", "-c", "echo a; echo b; echo c; cat /etc/passwd > /dev/null"])
    assert WEXITSTATUS(status) == 0
    world.console.take_output()
    rule = watches.rules[0]
    assert watches.evals > 0
    assert rule.trips > 0 and watches.trip_total >= rule.trips
    assert world.obs.metrics.counter(("watch.trip", rule.line)) == rule.trips
    stats = watches.stats()
    assert stats["enabled"] is True and stats["trips"] == watches.trip_total


def test_counter_rate_needs_two_evaluations():
    world, watches = _watched_world(
        "counter_rate trap|getpid > 0\n", interval=200)

    def main(ctx):
        for _ in range(40):
            ctx.trap(NR_GETPID)
        return 0

    assert WEXITSTATUS(world.run_entry(main)) == 0
    rule = watches.rules[0]
    # First evaluation only primes _prev; later ones see the rate.
    assert watches.evals >= 2
    assert rule.trips >= 1


def test_watch_trip_emits_event_and_posts_signal():
    from repro import obs
    from repro.kernel import signals as sig
    from repro.obs import events as ev

    world = boot_world()
    switchboard = obs.enable(world, trace_all=True)
    kinds = []
    switchboard.bus.subscribe(lambda event: kinds.append(event.kind))
    enable_watches(
        world, "gauge_threshold trap.pid|<pid>|getpid >= 5 signal %d\n"
        % sig.SIGUSR1, interval_usec=300)
    caught = []

    def main(ctx):
        ctx.trap(number_of("sigvec"), sig.SIGUSR1,
                 lambda signum: caught.append(signum), 0)
        for _ in range(40):
            ctx.trap(NR_GETPID)
        return 0

    assert WEXITSTATUS(world.run_entry(main)) == 0
    assert ev.WATCH_TRIP in kinds
    assert caught and caught[0] == sig.SIGUSR1


def test_evaluation_is_armoured_against_bad_rules():
    world, watches = _watched_world(
        "gauge_threshold bogus|key >= 0\n"          # fires on zero
        "histogram_p99 trap|read > 0\n"             # key is a counter
        "counter_rate trap.pid|<pid>|read > 1e18\n")  # never fires
    status = world.run("/bin/sh", ["sh", "-c", "echo ok"])
    assert WEXITSTATUS(status) == 0
    world.console.take_output()
    assert watches.evals > 0  # the machine kept running regardless


def test_watches_without_obs_are_inert(kernel):
    watches = enable_watches(kernel, "gauge_threshold trap|read >= 0\n",
                             interval_usec=200)

    def main(ctx):
        for _ in range(20):
            ctx.trap(NR_GETPID)
        return 0

    assert WEXITSTATUS(kernel.run_entry(main)) == 0
    # No metrics registry to read: evaluations happen, nothing trips.
    assert watches.evals > 0 and watches.trip_total == 0
    assert disable_watches(kernel) is watches
    assert kernel.watches is None


# -- watch rules: chaos fuzzing --------------------------------------------


@pytest.mark.parametrize("seed", [2, 19])
def test_fuzzed_watch_rules_never_panic_the_machine(seed):
    from repro.workloads.chaos import run_scenario

    def on_boot(kernel):
        from repro import obs

        obs.enable(kernel)
        enable_watches(kernel, WatchSet.random(seed), interval_usec=2_000)

    report = run_scenario(seed, policy="fail-open", mechanism="wrapper",
                          workload="files", on_boot=on_boot)
    assert report.outcome != "panic"
    assert report.passed, report.violations
