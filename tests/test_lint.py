"""agentlint (repro.lint): per-rule fixtures and engine behaviour.

Each rule L001..L011 gets a failing fixture (true positive), a clean
fixture (true negative), and the suppression mechanism is proven to
silence exactly the suppressed rule.  The ``--json`` document schema is
pinned, baseline files round-trip, and — the acceptance criterion — the
repo's own agents and toolkit lint clean.
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.lint import engine, rule_ids, run_lint
from repro.lint.checks import check_protocol
from repro.lint.protocol import load_protocol
from repro.lint.rules import RULES

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

MINI_SYSENT = '''\
"""Fixture system call table."""

_TABLE = [
    _entry(3, "read", "fd:fd", "count:int"),
    _entry(5, "open", "path:str", "flags:oflags", "mode:mode"),
    _entry(6, "close", "fd:fd"),
    _entry(20, "getpid"),
    _entry(37, "kill", "pid:int", "sig:sig"),
    _entry(200, "task_set_emulation", "numbers:any", "handler:any"),
]

MAX_BSD_SYSCALL = 199
'''

MINI_ERRNO = '''\
"""Fixture errno table."""

EPERM = 1
EBADF = 9
EWOULDBLOCK = 35
EAGAIN = EWOULDBLOCK
ENOSYS = 78
'''

MINI_SYMBOLIC = '''\
"""Fixture symbolic layer."""


class SymbolicSyscall:
    def sys_read(self, fd, count):
        return self.syscall_down("read", fd, count)

    def sys_open(self, path, flags=0, mode=0o666):
        return self.syscall_down("open", path, flags, mode)

    def sys_close(self, fd):
        return self.syscall_down("close", fd)

    def sys_getpid(self):
        return self.syscall_down("getpid")

    def sys_kill(self, pid, signum):
        return self.syscall_down("kill", pid, signum)
'''


@pytest.fixture
def proto_root(tmp_path):
    """A miniature protocol tree (sysent/errno/symbolic) for fixtures."""
    (tmp_path / "kernel").mkdir()
    (tmp_path / "toolkit").mkdir()
    (tmp_path / "kernel" / "sysent.py").write_text(MINI_SYSENT)
    (tmp_path / "kernel" / "errno.py").write_text(MINI_ERRNO)
    (tmp_path / "toolkit" / "symbolic.py").write_text(MINI_SYMBOLIC)
    return tmp_path


def lint_source(tmp_path, proto_root, source, name="agent_mod.py",
                in_agents=True, parity=False):
    """Lint one fixture module; returns the LintResult."""
    directory = tmp_path / ("agents" if in_agents else "plain")
    directory.mkdir(exist_ok=True)
    target = directory / name
    target.write_text(textwrap.dedent(source))
    return run_lint([str(target)], protocol_root=str(proto_root),
                    check_parity=parity)


def rules_fired(result):
    """Active rule ids in a result, as a set."""
    return {f.rule for f in result.active}


CLEAN_AGENT = """
from repro.toolkit.symbolic import SymbolicSyscall
from repro.kernel.errno import EPERM, SyscallError


class GoodAgent(SymbolicSyscall):
    def init(self, agentargv):
        super().init(agentargv)

    def sys_open(self, path, flags=0, mode=0o666):
        if path.startswith("/forbidden"):
            raise SyscallError(EPERM, path)
        return super().sys_open(path, flags, mode)

    def signal_handler(self, signum, code, context):
        self.signal_up(signum)
"""


def test_clean_agent_has_no_findings(tmp_path, proto_root):
    result = lint_source(tmp_path, proto_root, CLEAN_AGENT)
    assert result.findings == []


# -- L001: sys_* names -----------------------------------------------------


def test_l001_fires_on_typoed_override(tmp_path, proto_root):
    result = lint_source(tmp_path, proto_root, """
    from repro.toolkit.symbolic import SymbolicSyscall

    class TypoAgent(SymbolicSyscall):
        def sys_opne(self, path, flags=0, mode=0o666):
            return super().sys_open(path, flags, mode)
    """)
    assert rules_fired(result) == {"L001"}
    (finding,) = result.active
    assert finding.symbol == "TypoAgent.sys_opne"
    assert "did you mean sys_open" in finding.message


def test_l001_quiet_on_real_calls_and_non_agent_classes(tmp_path,
                                                        proto_root):
    result = lint_source(tmp_path, proto_root, """
    from repro.toolkit.symbolic import SymbolicSyscall

    class Fine(SymbolicSyscall):
        def sys_getpid(self):
            return super().sys_getpid()

    class NotAnAgent:
        def sys_tem_of_record(self):
            return 1
    """)
    assert rules_fired(result) == set()


def test_l001_sees_agents_through_unknown_intermediates(tmp_path,
                                                        proto_root):
    # Base name matches no toolkit class, but the class defines sys_*
    # methods itself — it is an agent reached through an imported
    # intermediate and must still be checked.
    result = lint_source(tmp_path, proto_root, """
    from somewhere import Intermediate

    class Indirect(Intermediate):
        def sys_getpdi(self):
            return 0
    """)
    # F005 also fires: the method returns without ever delegating.
    assert rules_fired(result) == {"L001", "F005"}


# -- L002: init chains or registers ---------------------------------------


def test_l002_fires_when_init_neither_chains_nor_registers(tmp_path,
                                                           proto_root):
    result = lint_source(tmp_path, proto_root, """
    from repro.toolkit.symbolic import SymbolicSyscall

    class Lost(SymbolicSyscall):
        def init(self, agentargv):
            self.args = agentargv
    """)
    assert rules_fired(result) == {"L002"}


def test_l002_quiet_for_chained_and_self_registering_inits(tmp_path,
                                                           proto_root):
    result = lint_source(tmp_path, proto_root, """
    from repro.toolkit.numeric import NumericSyscall
    from repro.toolkit.symbolic import SymbolicSyscall

    class Chains(SymbolicSyscall):
        def init(self, agentargv):
            super().init(agentargv)

    class Registers(NumericSyscall):
        def init(self, agentargv):
            self.register_interest_range(1, 199)
            self.register_signal_interest()
    """)
    assert rules_fired(result) == set()


# -- L003 (deprecated alias of F002): refcount pairing ---------------------


def test_l003_alias_unbalanced_reference_traffic_fires_f002(tmp_path,
                                                            proto_root):
    result = lint_source(tmp_path, proto_root, """
    from repro.toolkit.descriptors import DescSymbolicSyscall

    class Leaky(DescSymbolicSyscall):
        def sys_close(self, fd):
            obj = self.dset.lookup(fd).open_object.incref()
            return super().sys_close(fd)
    """)
    assert rules_fired(result) == {"F002"}


def test_l003_suppression_comment_silences_f002(tmp_path, proto_root):
    # disable=L003 written before the flow rules landed keeps working:
    # the deprecated id aliases to its successor.
    result = lint_source(tmp_path, proto_root, """
    from repro.toolkit.descriptors import DescSymbolicSyscall

    class Leaky(DescSymbolicSyscall):
        # repro-lint: disable=L003 -- fixture: leak on purpose
        def sys_close(self, fd):
            obj = self.dset.lookup(fd).open_object.incref()
            return super().sys_close(fd)
    """)
    assert result.active == []
    assert [f.rule for f in result.suppressed] == ["F002"]


def test_l003_rules_selection_translates_to_f002(tmp_path, proto_root):
    source = """
    from repro.toolkit.descriptors import DescSymbolicSyscall

    class Leaky(DescSymbolicSyscall):
        def sys_close(self, fd):
            obj = self.dset.lookup(fd).open_object.incref()
            return super().sys_close(fd)
    """
    directory = tmp_path / "agents"
    directory.mkdir(exist_ok=True)
    target = directory / "leaky.py"
    target.write_text(textwrap.dedent(source))
    result = run_lint([str(target)], protocol_root=str(proto_root),
                      check_parity=False, only_rules={"L003"})
    assert rules_fired(result) == {"F002"}


def test_l003_quiet_when_references_pair(tmp_path, proto_root):
    result = lint_source(tmp_path, proto_root, """
    from repro.toolkit.descriptors import DescSymbolicSyscall

    class Careful(DescSymbolicSyscall):
        def sys_close(self, fd):
            obj = self.dset.lookup(fd).open_object.incref()
            try:
                return super().sys_close(fd)
            finally:
                obj.decref()
    """)
    assert rules_fired(result) == set()


# -- L004: errno discipline ------------------------------------------------


def test_l004_fires_on_raw_returns_and_unknown_errnos(tmp_path,
                                                      proto_root):
    result = lint_source(tmp_path, proto_root, """
    from repro.kernel.errno import SyscallError
    from repro.toolkit.symbolic import SymbolicSyscall

    class Sloppy(SymbolicSyscall):
        def sys_read(self, fd, count):
            if fd < 0:
                return -1
            return None

        def sys_open(self, path, flags=0, mode=0o666):
            raise SyscallError(9999)

        def sys_kill(self, pid, signum):
            raise SyscallError(ENOCOFFEE)
    """)
    l004 = [f for f in result.active if f.rule == "L004"]
    assert len(l004) == 4
    messages = "\n".join(f.message for f in l004)
    assert "raw negative int" in messages
    assert "returns None" in messages
    assert "9999" in messages
    assert "ENOCOFFEE" in messages


def test_l004_quiet_on_known_errnos_and_dynamic_values(tmp_path,
                                                       proto_root):
    result = lint_source(tmp_path, proto_root, """
    from repro.kernel.errno import EPERM, SyscallError
    from repro.toolkit.symbolic import SymbolicSyscall

    class Disciplined(SymbolicSyscall):
        def sys_open(self, path, flags=0, mode=0o666):
            raise SyscallError(EPERM, path)

        def sys_read(self, fd, count):
            try:
                return super().sys_read(fd, count)
            except SyscallError as err:
                raise SyscallError(err.errno, "wrapped")
    """)
    assert rules_fired(result) == set()


# -- L005: signal forwarding -----------------------------------------------


def test_l005_fires_when_signals_are_swallowed(tmp_path, proto_root):
    result = lint_source(tmp_path, proto_root, """
    from repro.toolkit.symbolic import SymbolicSyscall

    class Muffler(SymbolicSyscall):
        def signal_handler(self, signum, code, context):
            self.seen = signum
    """)
    assert rules_fired(result) == {"L005"}


def test_l005_quiet_for_forwarding_and_delegation(tmp_path, proto_root):
    result = lint_source(tmp_path, proto_root, """
    from repro.toolkit.numeric import NumericSyscall
    from repro.toolkit.symbolic import SymbolicSyscall

    class Forwards(SymbolicSyscall):
        def signal_handler(self, signum, code, context):
            self.signal_up(signum)

    class Chains(SymbolicSyscall):
        def signal_handler(self, signum, code, context):
            super().signal_handler(signum, code, context)

    class Delegates(NumericSyscall):
        def handle_signal(self, signum, action):
            self.inner.handle_signal(signum, action)
    """)
    assert rules_fired(result) == set()


# -- L006: layer bypass ----------------------------------------------------


def test_l006_fires_on_kernel_internal_imports_from_agents(tmp_path,
                                                           proto_root):
    result = lint_source(tmp_path, proto_root, """
    from repro.kernel.trap import deliver_signal_to_application
    from repro.kernel import proc
    import repro.kernel.namei
    from repro.toolkit.symbolic import SymbolicSyscall

    class Bypasser(SymbolicSyscall):
        pass
    """)
    l006 = [f for f in result.active if f.rule == "L006"]
    assert len(l006) == 3


def test_l006_allows_abi_modules_and_non_agent_code(tmp_path, proto_root):
    clean = """
    from repro.kernel import signals as sig
    from repro.kernel.errno import EPERM, SyscallError
    from repro.kernel.ofile import O_CREAT
    from repro.kernel.stat import Stat
    from repro.toolkit.symbolic import SymbolicSyscall

    class Clean(SymbolicSyscall):
        pass
    """
    assert rules_fired(lint_source(tmp_path, proto_root, clean)) == set()
    # The same internals import outside an agents package is not L006's
    # business (the toolkit boilerplate is the sanctioned mechanism).
    outside = """
    from repro.kernel.trap import deliver_signal_to_application
    """
    result = lint_source(tmp_path, proto_root, outside, in_agents=False)
    assert rules_fired(result) == set()


# -- L007: table <-> symbolic parity ---------------------------------------


def test_l007_fires_in_both_directions(tmp_path, proto_root):
    symbolic = proto_root / "toolkit" / "symbolic.py"
    # Drop sys_kill (table entry without method) and add sys_bogus
    # (method without table entry).
    text = symbolic.read_text().replace("sys_kill", "sys_bogus")
    symbolic.write_text(text.replace(
        'self.syscall_down("kill", pid, signum)',
        'self.syscall_down("bogus", pid, signum)'))
    model = load_protocol(str(proto_root))
    findings = check_protocol(model)
    by_symbol = {f.symbol: f.message for f in findings}
    assert all(f.rule == "L007" for f in findings)
    assert "kill" in by_symbol
    assert "no sys_kill method" in by_symbol["kill"]
    assert "SymbolicSyscall.sys_bogus" in by_symbol
    # Mach-range traps (task_set_emulation, 200) need no method:
    assert "task_set_emulation" not in by_symbol


def test_l007_quiet_when_table_and_layer_agree(proto_root):
    model = load_protocol(str(proto_root))
    assert check_protocol(model) == []


def test_l007_runs_from_engine(tmp_path, proto_root):
    symbolic = proto_root / "toolkit" / "symbolic.py"
    symbolic.write_text(
        symbolic.read_text().replace("sys_kill", "sys_kilt"))
    result = lint_source(tmp_path, proto_root, CLEAN_AGENT, parity=True)
    assert "L007" in rules_fired(result)


# -- L008: broad excepts must not swallow SyscallError ---------------------


def test_l008_fires_on_swallowing_broad_excepts(tmp_path, proto_root):
    result = lint_source(tmp_path, proto_root, """
    from repro.toolkit.symbolic import SymbolicSyscall

    class Swallower(SymbolicSyscall):
        def sys_open(self, path, flags=0, mode=0o666):
            try:
                return super().sys_open(path, flags, mode)
            except Exception:
                return 0

        def sys_read(self, fd, count):
            try:
                return super().sys_read(fd, count)
            except:
                return b""

        def handle_signal(self, signum, action):
            try:
                self.signal_up(signum)
            except BaseException:
                pass
    """)
    l008 = [f for f in result.active if f.rule == "L008"]
    assert len(l008) == 3
    symbols = {f.symbol for f in l008}
    assert symbols == {"Swallower.sys_open", "Swallower.sys_read",
                       "Swallower.handle_signal"}
    messages = "\n".join(f.message for f in l008)
    assert "'except:'" in messages
    assert "'except Exception'" in messages
    assert "swallowed" in messages


def test_l008_quiet_for_reraising_and_protected_shapes(tmp_path,
                                                       proto_root):
    # Three sanctioned shapes: a broad clause whose own body re-raises
    # (bare or translated), the guard layer's pattern (an earlier
    # clause re-raising the protocol exceptions — by name or via an
    # ALL_CAPS alias tuple), and narrow clauses that never see
    # SyscallError at all.
    result = lint_source(tmp_path, proto_root, """
    from repro.kernel.errno import EPERM, SyscallError
    from repro.toolkit.symbolic import SymbolicSyscall

    PASS_THROUGH = (SyscallError,)

    class Careful(SymbolicSyscall):
        def sys_open(self, path, flags=0, mode=0o666):
            try:
                return super().sys_open(path, flags, mode)
            except Exception:
                raise SyscallError(EPERM, path)

        def sys_read(self, fd, count):
            try:
                return super().sys_read(fd, count)
            except SyscallError:
                raise
            except Exception:
                return b""

        def sys_close(self, fd):
            try:
                return super().sys_close(fd)
            except PASS_THROUGH:
                raise
            except BaseException:
                return 0

        def sys_getpid(self):
            try:
                return super().sys_getpid()
            except ValueError:
                return 0
    """)
    assert rules_fired(result) == set()


def test_l008_earlier_foreign_reraise_does_not_protect(tmp_path,
                                                       proto_root):
    # Re-raising ValueError first is no shield: SyscallError still
    # lands in (and dies in) the broad clause below it.
    result = lint_source(tmp_path, proto_root, """
    from repro.toolkit.symbolic import SymbolicSyscall

    class FalseShield(SymbolicSyscall):
        def sys_open(self, path, flags=0, mode=0o666):
            try:
                return super().sys_open(path, flags, mode)
            except ValueError:
                raise
            except Exception:
                return 0
    """)
    assert rules_fired(result) == {"L008"}


def test_l008_ignores_non_handler_methods(tmp_path, proto_root):
    # Helpers are free to absorb errors; only handler methods carry
    # the errno protocol.
    result = lint_source(tmp_path, proto_root, """
    from repro.toolkit.symbolic import SymbolicSyscall

    class Helpers(SymbolicSyscall):
        def _best_effort(self, path):
            try:
                return self.cache[path]
            except Exception:
                return None
    """)
    assert rules_fired(result) == set()


# -- L009: no host nondeterminism in handler methods -----------------------


def test_l009_fires_on_wallclock_and_global_rng(tmp_path, proto_root):
    result = lint_source(tmp_path, proto_root, """
    import random
    import time

    from repro.toolkit.symbolic import SymbolicSyscall

    class Jittery(SymbolicSyscall):
        def sys_open(self, path, flags=0, mode=0o666):
            if random.random() < 0.5:
                time.sleep(0.01)
            return super().sys_open(path, flags, mode)

        def sys_getpid(self):
            return int(time.time())
    """)
    l009 = [f for f in result.active if f.rule == "L009"]
    assert len(l009) == 3
    symbols = {f.symbol for f in l009}
    assert symbols == {"Jittery.sys_open", "Jittery.sys_getpid"}
    messages = "\n".join(f.message for f in l009)
    assert "time.time()" in messages
    assert "random.random()" in messages
    assert "unreplayable" in messages


def test_l009_quiet_for_seeded_instances_and_helpers(tmp_path, proto_root):
    # The sanctioned shapes: a seeded random.Random held on the agent,
    # virtual time via downcall, and helpers outside the handler scope
    # (the boilerplate's own perf_counter bookkeeping lives there).
    result = lint_source(tmp_path, proto_root, """
    import random
    import time

    from repro.toolkit.symbolic import SymbolicSyscall

    class Seeded(SymbolicSyscall):
        def init(self, interposed=0):
            self._rng = random.Random(42)
            return super().init(interposed)

        def sys_open(self, path, flags=0, mode=0o666):
            if self._rng.random() < 0.5:
                now = self.syscall_down("gettimeofday")
            return super().sys_open(path, flags, mode)

        def _measure(self):
            return time.perf_counter()
    """)
    assert rules_fired(result) == set()


# -- L010: interception changes go through task_set_emulation --------------


def test_l010_fires_on_direct_vector_mutation(tmp_path, proto_root):
    result = lint_source(tmp_path, proto_root, """
    from repro.toolkit.symbolic import SymbolicSyscall

    class Hijacker(SymbolicSyscall):
        def sys_open(self, path, flags=0, mode=0o666):
            # Re-route close while handling open: behind the kernel's back.
            self.ctx.proc.emulation_vector[6] = self._emulation_entry
            return super().sys_open(path, flags, mode)

        def sys_close(self, fd):
            self.ctx.proc.emulation_vector.pop(6, None)
            return super().sys_close(fd)

        def handle_signal(self, signum, action):
            del self.ctx.proc.emulation_vector[20]
            self.signal_up(signum)
    """)
    l010 = [f for f in result.active if f.rule == "L010"]
    assert len(l010) == 3
    symbols = {f.symbol for f in l010}
    assert symbols == {"Hijacker.sys_open", "Hijacker.sys_close",
                       "Hijacker.handle_signal"}
    messages = "\n".join(f.message for f in l010)
    assert "task_set_emulation" in messages
    assert "register_interest" in messages


def test_l010_quiet_for_sanctioned_interception_changes(tmp_path,
                                                        proto_root):
    # The sanctioned shapes: register/unregister helpers (which funnel
    # through task_set_emulation), and merely *reading* the vector.
    result = lint_source(tmp_path, proto_root, """
    from repro.toolkit.symbolic import SymbolicSyscall

    class Narrowing(SymbolicSyscall):
        def sys_open(self, path, flags=0, mode=0o666):
            self.unregister_interest([6])
            self.register_interest(3)
            interposed = 6 in self.ctx.proc.emulation_vector
            return super().sys_open(path, flags, mode)

        def _install(self, numbers):
            # Outside the handler scope: boilerplate-style plumbing is
            # where the toolkit itself manipulates interception.
            self.register_interest_many(numbers)
    """)
    assert rules_fired(result) == set()


# -- L011: no host console writes in handler methods -----------------------


def test_l011_fires_on_print_and_host_stream_writes(tmp_path, proto_root):
    result = lint_source(tmp_path, proto_root, """
    import sys

    from repro.toolkit.symbolic import SymbolicSyscall

    class Chatty(SymbolicSyscall):
        def sys_open(self, path, flags=0, mode=0o666):
            print("opening", path)
            return super().sys_open(path, flags, mode)

        def sys_close(self, fd):
            sys.stdout.write("closing %d\\n" % fd)
            return super().sys_close(fd)

        def handle_signal(self, signum, action):
            sys.stderr.write("signal %d\\n" % signum)
            self.signal_up(signum)
    """)
    l011 = [f for f in result.active if f.rule == "L011"]
    assert len(l011) == 3
    symbols = {f.symbol for f in l011}
    assert symbols == {"Chatty.sys_open", "Chatty.sys_close",
                       "Chatty.handle_signal"}
    messages = "\n".join(f.message for f in l011)
    assert "print()" in messages
    assert "sys.stdout.write()" in messages
    assert "sys.stderr.write()" in messages
    assert "syscall_down" in messages


def test_l011_quiet_for_downcall_writes_and_helpers(tmp_path, proto_root):
    # The sanctioned shapes: writing through a downcall to a descriptor
    # the simulated machine knows about, and host printing in helper
    # methods outside the handler scope (debug scaffolding that never
    # runs on the dispatch spine).
    result = lint_source(tmp_path, proto_root, """
    import sys

    from repro.toolkit.symbolic import SymbolicSyscall

    class Quiet(SymbolicSyscall):
        def sys_open(self, path, flags=0, mode=0o666):
            self.syscall_down("write", 44, b"opening\\n")
            return super().sys_open(path, flags, mode)

        def _debug(self, text):
            sys.stderr.write(text)
            print(text)
    """)
    assert rules_fired(result) == set()


# -- suppressions ----------------------------------------------------------


def test_trailing_suppression_silences_exactly_that_rule(tmp_path,
                                                         proto_root):
    result = lint_source(tmp_path, proto_root, """
    from repro.toolkit.symbolic import SymbolicSyscall

    class Odd(SymbolicSyscall):
        def sys_opne(self, path):  # repro-lint: disable=L001
            return self.syscall_down("open", path)
    """)
    assert result.active == []
    assert [f.rule for f in result.suppressed] == ["L001"]


def test_comment_above_suppression_carries_past_justification(tmp_path,
                                                              proto_root):
    result = lint_source(tmp_path, proto_root, """
    from repro.toolkit.symbolic import SymbolicSyscall

    class Odd(SymbolicSyscall):
        # repro-lint: disable=L005 -- this fixture swallows signals on
        # purpose, and the justification spans two comment lines.
        def signal_handler(self, signum, code, context):
            self.seen = signum
    """)
    assert result.active == []
    assert [f.rule for f in result.suppressed] == ["L005"]


def test_suppressing_one_rule_does_not_silence_another(tmp_path,
                                                       proto_root):
    result = lint_source(tmp_path, proto_root, """
    from repro.toolkit.symbolic import SymbolicSyscall

    class Odd(SymbolicSyscall):
        def sys_opne(self, path):  # repro-lint: disable=L005
            return self.syscall_down("open", path)
    """)
    assert rules_fired(result) == {"L001"}


# -- baseline files --------------------------------------------------------


def test_baseline_roundtrip_tolerates_recorded_findings(tmp_path,
                                                        proto_root):
    source = """
    from repro.toolkit.symbolic import SymbolicSyscall

    class Odd(SymbolicSyscall):
        def sys_opne(self, path):
            return path
    """
    result = lint_source(tmp_path, proto_root, source)
    assert rules_fired(result) == {"L001", "F005"}
    baseline_path = tmp_path / "baseline.json"
    engine.write_baseline(str(baseline_path), result)
    baseline = engine.load_baseline(str(baseline_path))
    again = run_lint([str(tmp_path / "agents" / "agent_mod.py")],
                     protocol_root=str(proto_root), check_parity=False,
                     baseline=baseline)
    assert again.active == []
    assert sorted(f.rule for f in again.baselined) == ["F005", "L001"]


def test_baseline_entries_may_carry_reasons(tmp_path, proto_root):
    source = """
    from repro.toolkit.symbolic import SymbolicSyscall

    class Odd(SymbolicSyscall):
        def sys_opne(self, path):
            return path
    """
    result = lint_source(tmp_path, proto_root, source)
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps([
        {"fingerprint": f.fingerprint(),
         "reason": "known debt, tracked in the fixture"}
        for f in result.active
    ]))
    baseline = engine.load_baseline(str(baseline_path))
    assert all(reason for reason in baseline.values())
    again = run_lint([str(tmp_path / "agents" / "agent_mod.py")],
                     protocol_root=str(proto_root), check_parity=False,
                     baseline=baseline)
    assert again.active == []
    assert len(again.baselined) == 2


# -- JSON schema golden ----------------------------------------------------


def test_json_document_schema(tmp_path, proto_root):
    result = lint_source(tmp_path, proto_root, """
    from repro.toolkit.symbolic import SymbolicSyscall

    class Odd(SymbolicSyscall):
        def sys_opne(self, path):
            return path
    """)
    doc = result.to_dict()
    assert sorted(doc) == ["files", "findings", "summary", "version"]
    assert doc["version"] == 2
    assert doc["files"] == 1
    assert sorted(doc["summary"]) == [
        "active", "baselined", "by_rule", "suppressed",
        "suppressed_by_rule"]
    finding = doc["findings"][0]
    assert sorted(finding) == [
        "baselined", "col", "line", "message", "occurrence", "path",
        "rule", "severity", "suppressed", "symbol"]
    assert finding["rule"] == "L001"
    assert finding["severity"] == "error"
    assert finding["suppressed"] is False
    assert finding["occurrence"] == 0
    json.dumps(doc)  # must be serializable as-is


# -- CLI -------------------------------------------------------------------


def _run_cli(args):
    return subprocess.run(
        [sys.executable,
         os.path.join(REPO_ROOT, "scripts", "agentlint.py")] + args,
        capture_output=True, text=True)


def test_cli_exit_codes_and_json_output(tmp_path, proto_root):
    bad = tmp_path / "agents"
    bad.mkdir()
    (bad / "bad.py").write_text(
        "from repro.toolkit.symbolic import SymbolicSyscall\n"
        "class A(SymbolicSyscall):\n"
        "    def sys_opne(self):\n        return 0\n")
    clean = _run_cli(["--protocol-root", str(proto_root), "--no-parity",
                      str(proto_root / "toolkit")])
    assert clean.returncode == 0, clean.stderr
    findings = _run_cli(["--protocol-root", str(proto_root), "--json",
                         "--no-parity", str(bad)])
    assert findings.returncode == 1
    doc = json.loads(findings.stdout)
    assert doc["summary"]["by_rule"] == {"F005": 1, "L001": 1}
    missing = _run_cli([str(tmp_path / "nonexistent")])
    assert missing.returncode == 2


def test_cli_list_rules_covers_every_registered_rule():
    listing = _run_cli(["--list-rules"])
    assert listing.returncode == 0
    for rule_id in rule_ids():
        assert rule_id in listing.stdout


# -- the registry and the repo itself --------------------------------------


def test_registry_defines_every_rule():
    assert rule_ids() == ["F001", "F002", "F003", "F004", "F005", "F006",
                          "L000", "L001", "L002", "L003", "L004",
                          "L005", "L006", "L007", "L008", "L009",
                          "L010", "L011"]
    for rule in RULES.values():
        assert rule.summary and rule.rationale
        assert rule.severity in ("error", "warning")
    # Exactly one deprecated alias, pointing at a registered successor:
    deprecated = [r for r in RULES.values() if r.deprecated]
    assert [r.rule_id for r in deprecated] == ["L003"]
    assert RULES["L003"].superseded_by == "F002"


def test_repo_agents_and_toolkit_lint_clean():
    result = run_lint([
        os.path.join(REPO_ROOT, "src", "repro", "agents"),
        os.path.join(REPO_ROOT, "src", "repro", "toolkit"),
    ])
    assert result.active == [], [f.render() for f in result.active]
    # The intentional, justified suppressions stay visible: the three
    # descriptor-table release points (disable=L003 comments, honored
    # by F002 via the alias), the IPC-delegating handle_syscall, and
    # the IPC-forwarding handle_signal in remote.py.
    assert result.suppressed_counts() == {"F002": 3, "F005": 1,
                                          "L005": 1}
