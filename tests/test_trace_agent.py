"""Tests for the trace agent (paper Section 3.3.2)."""

import pytest

from repro.agents.trace import TraceSymbolicSyscall
from repro.kernel.proc import WEXITSTATUS
from repro.toolkit import run_under_agent


@pytest.fixture
def traced(world):
    def run(command):
        status = run_under_agent(
            world,
            TraceSymbolicSyscall("/tmp/trace.out"),
            "/bin/sh",
            ["sh", "-c", command],
        )
        return status, world.read_file("/tmp/trace.out").decode()

    return run


def test_calls_logged_with_arguments_and_results(traced):
    status, log = traced("echo hello > /tmp/t.txt")
    assert WEXITSTATUS(status) == 0
    assert "open('/tmp/t.txt'" in log.replace('"', "'")
    assert "-> 3" in log  # the returned descriptor
    assert "write(1, [6 bytes])" in log
    assert "exit(0)" in log


def test_two_lines_per_call(traced):
    status, log = traced("true")
    lines = log.splitlines()
    pre = [l for l in lines if l.endswith("...")]
    post = [l for l in lines if "->" in l]
    # Every completed call has both a pre and a post line (execve has no
    # post line: it does not return; fork's children add start markers).
    assert len(pre) >= len(post) > 0


def test_errors_logged_symbolically(traced):
    status, log = traced("cat /tmp/no-such-file; true")
    assert "-> ENOENT" in log


def test_children_traced_with_pids(traced):
    status, log = traced("echo via child")
    assert "(child of fork starts)" in log
    pids = {line.split("]")[0] for line in log.splitlines() if line.startswith("[")}
    assert len(pids) >= 2


def test_signals_logged(world):
    from repro.kernel import signals as sig
    from repro.kernel.sysent import number_of

    agent = TraceSymbolicSyscall("/tmp/trace.out")

    def main(ctx):
        agent.attach(ctx)
        ctx.trap(number_of("sigvec"), sig.SIGUSR1, lambda s: None, 0)
        ctx.trap(number_of("kill"), ctx.proc.pid, sig.SIGUSR1)
        return 0

    world.run_entry(main)
    log = world.read_file("/tmp/trace.out").decode()
    assert "signal SIGUSR1 received" in log
    assert "sigvec(SIGUSR1" in log
    assert "kill(" in log


def test_trace_survives_exec(traced):
    status, log = traced("sh -c 'echo inner'")
    assert "execve(" in log
    # calls from the exec'd inner shell are still traced
    assert log.count("execve(") >= 2


def test_log_to_stderr(world):
    status = run_under_agent(
        world, TraceSymbolicSyscall("-"), "/bin/true", ["true"]
    )
    out = world.console.take_output().decode()
    assert "exit(0)" in out


def test_log_fd_parked_high(world):
    agent = TraceSymbolicSyscall("/tmp/trace.out")
    status = run_under_agent(
        world, agent, "/bin/sh", ["sh", "-c", "echo x > /tmp/a; cat /tmp/a"]
    )
    assert WEXITSTATUS(status) == 0
    assert agent.log_fd >= 48
    # The application's own descriptor numbering was unaffected: its
    # first open still got fd 3 (visible in the trace).
    log = world.read_file("/tmp/trace.out").decode()
    assert "-> 3" in log


def test_workload_output_unchanged_under_trace(world):
    from repro.workloads import boot_world

    bare = boot_world()
    bare.run("/bin/sh", ["sh", "-c", "ls /bin | wc"])
    expected = bare.console.take_output()

    run_under_agent(
        world, TraceSymbolicSyscall("/tmp/trace.out"), "/bin/sh",
        ["sh", "-c", "ls /bin | wc"],
    )
    assert world.console.take_output() == expected
