"""Tests for the ktrace ring buffer, ktrace(2), and the ktrace/kdump programs."""

import pytest

from repro import obs
from repro.kernel.errno import EINVAL, EPERM, ESRCH, SyscallError
from repro.kernel.ktrace import (
    KTROP_CLEAR,
    KTROP_CLEARALL,
    KTROP_CLEARBUF,
    KTROP_SET,
    KtraceBuffer,
)
from repro.kernel.sysent import number_of

NR_GETPID = number_of("getpid")
NR_FORK = number_of("fork")
NR_WAIT = number_of("wait")
NR_SETUID = number_of("setuid")
NR_EXECVE = number_of("execve")
NR_JUMP = number_of("jump_to_image")
NR_KTRACE = number_of("ktrace")
NR_KTRACE_READ = number_of("ktrace_read")


# -- the ring buffer ------------------------------------------------------


def test_ring_wraparound_counts_dropped():
    ring = KtraceBuffer(capacity=4)
    for i in range(10):
        ring.append(i)
    assert len(ring) == 4
    assert ring.dropped == 6
    assert ring.total == 10
    assert ring.snapshot() == [6, 7, 8, 9]  # oldest were evicted


def test_ring_drain_limit_and_all():
    ring = KtraceBuffer(capacity=8)
    for i in range(5):
        ring.append(i)
    assert ring.drain(2) == [0, 1]
    assert len(ring) == 3
    assert ring.drain() == [2, 3, 4]  # falsy limit drains everything
    assert ring.drain(0) == []
    assert ring.total == 5  # draining does not touch the append count


def test_ring_clear_resets_dropped():
    ring = KtraceBuffer(capacity=2)
    for i in range(5):
        ring.append(i)
    assert ring.dropped == 3
    ring.clear()
    assert len(ring) == 0
    assert ring.dropped == 0


def test_ring_rejects_silly_capacity():
    with pytest.raises(ValueError):
        KtraceBuffer(capacity=0)


# -- the system calls -----------------------------------------------------


def test_ktrace_set_installs_observability_on_demand(kernel, run_entry):
    assert kernel.obs is None

    def main(ctx):
        ctx.trap(NR_KTRACE, KTROP_SET, 0, 32)
        ctx.trap(NR_GETPID)
        return 0

    assert run_entry(main) == 0
    assert kernel.obs is not None
    assert kernel.obs.ktrace.capacity == 32
    # The getpid trapped after enabling landed in the ring (the enabling
    # ktrace call itself raced ahead on the fast path: obs was still None
    # when its trap entered).
    names = [event.name for event in kernel.obs.ktrace.snapshot()]
    assert "getpid" in names


def test_ktrace_flag_inherited_across_fork(kernel, run_entry):
    def main(ctx):
        ctx.trap(NR_KTRACE, KTROP_SET)

        def child(cctx):
            return 0 if cctx.proc.ktrace_on else 1

        ctx.trap(NR_FORK, child)
        _, status = ctx.trap(NR_WAIT)
        return status >> 8

    assert run_entry(main) == 0
    # The child's own getpid-free life still traced: fork + exit events
    # from the child pid are in the ring.
    pids = {event.pid for event in kernel.obs.ktrace.snapshot()}
    assert len(pids) >= 2


def test_ktrace_cleared_by_native_execve(world):
    from repro.kernel.proc import WEXITSTATUS

    holder = []

    def main(ctx):
        holder.append(ctx.proc)
        ctx.trap(NR_KTRACE, KTROP_SET)
        assert ctx.proc.ktrace_on
        ctx.trap(NR_EXECVE, "/bin/true", ["true"], [])

    status = world.run_entry(main)
    assert WEXITSTATUS(status) == 0
    assert holder[0].ktrace_on is False  # fresh image starts untraced


def test_ktrace_preserved_by_jump_to_image(world):
    from repro.kernel.proc import WEXITSTATUS

    holder = []

    def main(ctx):
        holder.append(ctx.proc)
        ctx.trap(NR_KTRACE, KTROP_SET)
        ctx.trap(NR_JUMP, "/bin/true", ["true"], [])

    status = world.run_entry(main)
    assert WEXITSTATUS(status) == 0
    assert holder[0].ktrace_on is True  # how ktrace(1) survives the exec


def test_ktrace_clear_and_clearall(kernel, run_entry):
    def main(ctx):
        ctx.trap(NR_KTRACE, KTROP_SET)
        assert ctx.proc.ktrace_on
        ctx.trap(NR_KTRACE, KTROP_CLEAR)
        assert not ctx.proc.ktrace_on
        ctx.trap(NR_KTRACE, KTROP_SET)
        ctx.trap(NR_KTRACE, KTROP_CLEARALL)  # we run as root
        assert not ctx.proc.ktrace_on
        return 0

    assert run_entry(main) == 0


def test_ktrace_clearbuf_empties_ring(kernel, run_entry):
    def main(ctx):
        ctx.trap(NR_KTRACE, KTROP_SET)
        for _ in range(5):
            ctx.trap(NR_GETPID)
        # Stop tracing first, or CLEARBUF's own return event refills
        # the ring we just emptied.
        ctx.trap(NR_KTRACE, KTROP_CLEAR)
        ctx.trap(NR_KTRACE, KTROP_CLEARBUF)
        records, dropped = ctx.trap(NR_KTRACE_READ)
        return 0 if (records == [] and dropped == 0) else 1

    assert run_entry(main) == 0


def test_ktrace_read_drains_exactly_once(kernel, run_entry):
    counts = []

    def main(ctx):
        ctx.trap(NR_KTRACE, KTROP_SET)
        for _ in range(3):
            ctx.trap(NR_GETPID)
        ctx.trap(NR_KTRACE, KTROP_CLEAR)
        records, _ = ctx.trap(NR_KTRACE_READ)
        counts.append(len(records))
        records, _ = ctx.trap(NR_KTRACE_READ)
        counts.append(len(records))
        return 0

    assert run_entry(main) == 0
    first, second = counts
    assert first > 0
    assert second <= 2  # only the first read's own enter/return remain


def test_ktrace_read_reports_dropped(kernel, run_entry):
    dropped_seen = []

    def main(ctx):
        ctx.trap(NR_KTRACE, KTROP_SET, 0, 4)  # tiny ring
        for _ in range(20):
            ctx.trap(NR_GETPID)
        ctx.trap(NR_KTRACE, KTROP_CLEAR)
        records, dropped = ctx.trap(NR_KTRACE_READ)
        dropped_seen.append((len(records), dropped))
        _, dropped = ctx.trap(NR_KTRACE_READ)
        dropped_seen.append(dropped)
        return 0

    assert run_entry(main) == 0
    (buffered, dropped), dropped_after = dropped_seen
    assert buffered <= 4
    assert dropped > 0
    assert dropped_after == 0  # reading resets the loss accounting


def test_ktrace_read_disabled_returns_empty(kernel, run_entry):
    def main(ctx):
        records, dropped = ctx.trap(NR_KTRACE_READ)
        return 0 if (records == [] and dropped == 0) else 1

    assert run_entry(main) == 0
    assert kernel.obs is None  # reading alone never installs obs


def test_ktrace_permissions(kernel, run_entry):
    """Non-root may not trace other uids; clearall is root-only."""
    errnos = []

    def main(ctx):
        parent_pid = ctx.proc.pid

        def child(cctx):
            cctx.trap(NR_SETUID, 1000)
            try:
                cctx.trap(NR_KTRACE, KTROP_SET, parent_pid)
            except SyscallError as exc:
                errnos.append(("set", exc.errno))
            try:
                cctx.trap(NR_KTRACE, KTROP_CLEARALL)
            except SyscallError as exc:
                errnos.append(("clearall", exc.errno))
            return 0

        ctx.trap(NR_FORK, child)
        _, status = ctx.trap(NR_WAIT)
        return status >> 8

    assert run_entry(main) == 0
    assert ("set", EPERM) in errnos
    assert ("clearall", EPERM) in errnos


def test_ktrace_bad_pid_and_bad_op(kernel, run_entry):
    errnos = []

    def main(ctx):
        try:
            ctx.trap(NR_KTRACE, KTROP_SET, 9999)
        except SyscallError as exc:
            errnos.append(exc.errno)
        try:
            ctx.trap(NR_KTRACE, 77)
        except SyscallError as exc:
            errnos.append(exc.errno)
        return 0

    assert run_entry(main) == 0
    assert errnos == [ESRCH, EINVAL]


def test_trace_all_ignores_per_process_flag(kernel, run_entry):
    """The host-side firehose traces untraced processes too."""
    obs.enable(kernel, ktrace_capacity=256, trace_all=True)

    def main(ctx):
        ctx.trap(NR_GETPID)
        return 0

    assert run_entry(main) == 0
    names = [event.name for event in kernel.obs.ktrace.snapshot()]
    assert "getpid" in names


# -- the in-world programs, end to end ------------------------------------


def test_ktrace_kdump_pipeline_end_to_end(sh, world):
    code, out = sh("ktrace cat /etc/passwd | ktrace wc; kdump")
    assert code == 0
    # wc's counts line from the pipeline came through first ...
    assert "ktrace" not in out.splitlines()[0]
    # ... then the kdump records: agent-free kernel calls for cat's open
    # of the traced file, and the trailing summary line.
    assert " CALL " in out
    assert " RET " in out
    assert "open" in out
    assert "'/etc/passwd'" in out
    assert "cat" in out and "wc" in out  # both pipeline elements traced
    assert out.rstrip().splitlines()[-1].endswith("dropped")
    # The kdump drained the ring: a second dump is empty.
    code, out = sh("kdump")
    assert code == 0
    lines = [line for line in out.splitlines() if line]
    assert lines[-1].startswith("0 events")


def test_ktrace_c_flag_stops_tracing(sh):
    code, out = sh("ktrace -c; kdump")
    assert code == 0


def test_ktrace_usage_errors(sh):
    code, out = sh("ktrace")
    assert code == 2
    assert "usage" in out
    code, out = sh("ktrace no-such-binary-anywhere")
    assert code == 127
    assert "not found" in out
    code, out = sh("kdump -n nope")
    assert code == 2
    assert "usage" in out


def test_kdump_limit(sh):
    code, out = sh("ktrace cat /etc/passwd; kdump -n 3")
    assert code == 0
    lines = [line for line in out.splitlines() if " CALL" in line
             or " RET " in line or " EXEC " in line or " EXIT " in line
             or " FORK " in line]
    assert len(lines) <= 3
