"""Tests for the simulated libc (Sys)."""

import pytest

from repro.kernel.errno import ENOENT, SyscallError
from repro.kernel.proc import WEXITSTATUS
from repro.programs.libc import Sys, exit_code


def _with_sys(kernel, body):
    """Run *body(sys)* in a simulated process; returns its exit code."""

    def main(ctx):
        return body(Sys(ctx))

    return WEXITSTATUS(kernel.run_entry(main))


def test_read_write_whole(world):
    def body(sys):
        sys.write_whole("/tmp/whole", b"A" * 20000)
        assert sys.read_whole("/tmp/whole") == b"A" * 20000
        return 0

    assert _with_sys(world, body) == 0


def test_append_whole(world):
    def body(sys):
        sys.write_whole("/tmp/app", "one\n")
        sys.append_whole("/tmp/app", "two\n")
        assert sys.read_whole("/tmp/app") == b"one\ntwo\n"
        return 0

    assert _with_sys(world, body) == 0


def test_listdir_excludes_dots(world):
    world.mkdir_p("/tmp/ld")
    world.write_file("/tmp/ld/a", "")
    world.write_file("/tmp/ld/b", "")

    def body(sys):
        assert sorted(sys.listdir("/tmp/ld")) == ["a", "b"]
        return 0

    assert _with_sys(world, body) == 0


def test_exists(world):
    world.write_file("/tmp/yes", "")

    def body(sys):
        assert sys.exists("/tmp/yes")
        assert not sys.exists("/tmp/no")
        return 0

    assert _with_sys(world, body) == 0


def test_spawn_wait_runs_binary(world):
    def body(sys):
        status = sys.spawn_wait("/bin/echo", ["echo", "spawned"])
        return exit_code(status)

    assert _with_sys(world, body) == 0
    assert "spawned" in world.console.take_output().decode()


def test_spawn_wait_missing_binary_127(world):
    def body(sys):
        return exit_code(sys.spawn_wait("/bin/not-a-thing"))

    assert _with_sys(world, body) == 127


def test_spawn_wait_fd_moves(world):
    def body(sys):
        fd = sys.creat("/tmp/redirected")
        status = sys.spawn_wait(
            "/bin/echo", ["echo", "into file"], fd_moves=[(fd, 1)]
        )
        sys.close(fd)
        return exit_code(status)

    assert _with_sys(world, body) == 0
    assert world.read_file("/tmp/redirected") == b"into file\n"


def test_fork_helper(world):
    def body(sys):
        pid = sys.fork(lambda child: 9)
        reaped, status = sys.wait()
        assert reaped == pid
        return exit_code(status)

    assert _with_sys(world, body) == 9


def test_sleep_advances_virtual_time(world):
    def body(sys):
        before = sys.gettimeofday()
        sys.sleep(2.5)
        after = sys.gettimeofday()
        assert after.to_usec() - before.to_usec() >= 2_500_000
        return 0

    assert _with_sys(world, body) == 0


def test_uncaught_syscall_error_becomes_exit_126(world):
    # A program that hits an uncaught error exits 126 via the crt0 shim.
    def crasher(ctx, argv, envp):
        sys = Sys(ctx)
        try:
            sys.open("/definitely/not/here")
            return 0
        except SyscallError as err:
            sys.print_err("crasher: uncaught ENOENT: %s\n" % err)
            return 126

    world.register_program("crasher", crasher)
    world.install_binary("/bin/crasher", "crasher")
    status = world.run("/bin/crasher", ["crasher"])
    assert WEXITSTATUS(status) == 126
    assert "ENOENT" in world.console.take_output().decode()


def test_exit_code_decodes_signals():
    from repro.kernel.proc import wait_status_exited, wait_status_signaled

    assert exit_code(wait_status_exited(3)) == 3
    assert exit_code(wait_status_signaled(9)) == 137
