"""Pre-fix PR 5 creat/symlink shapes: the F001 regression fixtures.

These are the two inode-leak bugs that fault injection caught
*dynamically* in PR 5 (docs/ROBUSTNESS.md): the syscall allocates a
fresh inode and then calls ``fs.link``; when ``link`` raises — EMLINK,
or the armed ``ufs.link`` fault site — the inode is stranded in the
volume's table forever.  No single statement is wrong; the bug is the
exception edge.  tests/test_lint_flow.py asserts F001 flags both,
statically.  The fixed shapes live in ``postfix_pathcalls.py``; the
real (fixed) code is ``src/repro/kernel/syscalls/pathcalls.py``.

This module is a lint fixture: it is never imported or executed.
"""


def sys_open(proc, fs, path, flags, mode):
    result = proc.lookup_parent(path)
    if result.inode is None:
        inode = fs.create_file(mode, proc.cred)
        # BUG (pre-fix): if link raises, the fresh inode leaks.
        fs.link(result.parent, result.name, inode)
    else:
        inode = result.inode
    return proc.install_descriptor(inode, flags)


def sys_symlink(proc, fs, target, linkpath):
    result = proc.lookup_parent(linkpath)
    inode = fs.create_symlink(target, proc.cred)
    # BUG (pre-fix): same shape — the symlink inode leaks on failure.
    fs.link(result.parent, result.name, inode)
    return 0
