"""Post-fix PR 5 creat/symlink shapes: the F001 true-negative pair.

The same syscalls as ``prefix_pathcalls.py`` with the PR 5 fix
applied: the ``fs.link`` commit is guarded, and the failure path
releases the fresh inode before re-raising.  tests/test_lint_flow.py
asserts F001 stays quiet here — the analysis must see the release in
the handler, not just the guarded call.

This module is a lint fixture: it is never imported or executed.
"""

from repro.kernel.errno import SyscallError


def sys_open(proc, fs, path, flags, mode):
    result = proc.lookup_parent(path)
    if result.inode is None:
        inode = fs.create_file(mode, proc.cred)
        try:
            fs.link(result.parent, result.name, inode)
        except SyscallError:
            fs.maybe_reclaim(inode)
            raise
    else:
        inode = result.inode
    return proc.install_descriptor(inode, flags)


def sys_symlink(proc, fs, target, linkpath):
    result = proc.lookup_parent(linkpath)
    inode = fs.create_symlink(target, proc.cred)
    try:
        fs.link(result.parent, result.name, inode)
    except SyscallError:
        fs.maybe_reclaim(inode)
        raise
    return 0
