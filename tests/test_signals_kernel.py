"""Tests for kernel signal semantics."""

import pytest

from repro.kernel import signals as sig
from repro.kernel.errno import EINTR, EINVAL, EPERM, ESRCH, SyscallError
from repro.kernel.proc import WIFSIGNALED, WTERMSIG, WEXITSTATUS
from repro.kernel.sysent import number_of

NR = {n: number_of(n) for n in (
    "kill", "killpg", "sigvec", "sigblock", "sigsetmask", "sigpause",
    "alarm", "fork", "wait", "getpid", "setpgrp", "getpgrp", "pipe",
    "read", "close", "select", "setuid",
)}


def test_self_kill_runs_handler(run_entry):
    def main(ctx):
        seen = []
        ctx.trap(NR["sigvec"], sig.SIGUSR1, lambda s: seen.append(s), 0)
        ctx.trap(NR["kill"], ctx.trap(NR["getpid"]), sig.SIGUSR1)
        assert seen == [sig.SIGUSR1]
        return 0

    assert run_entry(main) == 0


def test_default_action_terminates(kernel):
    def main(ctx):
        ctx.trap(NR["kill"], ctx.trap(NR["getpid"]), sig.SIGTERM)
        return 0  # never reached

    status = kernel.run_entry(main)
    assert WIFSIGNALED(status)
    assert WTERMSIG(status) == sig.SIGTERM


def test_ignored_signal_has_no_effect(run_entry):
    def main(ctx):
        ctx.trap(NR["sigvec"], sig.SIGTERM, sig.SIG_IGN, 0)
        ctx.trap(NR["kill"], ctx.trap(NR["getpid"]), sig.SIGTERM)
        return 0

    assert run_entry(main) == 0


def test_default_ignored_signals(run_entry):
    def main(ctx):
        ctx.trap(NR["kill"], ctx.trap(NR["getpid"]), sig.SIGCHLD)
        ctx.trap(NR["kill"], ctx.trap(NR["getpid"]), sig.SIGWINCH)
        return 0

    assert run_entry(main) == 0


def test_sigvec_returns_previous_handler(run_entry):
    def main(ctx):
        handler = lambda s: None  # noqa: E731
        old = ctx.trap(NR["sigvec"], sig.SIGUSR2, handler, 0)
        assert old == sig.SIG_DFL
        old = ctx.trap(NR["sigvec"], sig.SIGUSR2, sig.SIG_IGN, 0)
        assert old is handler
        return 0

    assert run_entry(main) == 0


def test_cannot_catch_sigkill(run_entry):
    def main(ctx):
        for bad in (sig.SIGKILL, sig.SIGSTOP):
            try:
                ctx.trap(NR["sigvec"], bad, lambda s: None, 0)
            except SyscallError as err:
                assert err.errno == EINVAL
            else:
                return 1
        return 0

    assert run_entry(main) == 0


def test_bad_signal_numbers(run_entry):
    def main(ctx):
        for call, args in (
            (NR["kill"], (ctx.trap(NR["getpid"]), 99)),
            (NR["sigvec"], (0, sig.SIG_IGN, 0)),
        ):
            try:
                ctx.trap(call, *args)
            except SyscallError as err:
                assert err.errno == EINVAL
            else:
                return 1
        return 0

    assert run_entry(main) == 0


def test_kill_missing_process_esrch(run_entry):
    def main(ctx):
        try:
            ctx.trap(NR["kill"], 9999, sig.SIGTERM)
        except SyscallError as err:
            assert err.errno == ESRCH
            return 0
        return 1

    assert run_entry(main) == 0


def test_kill_zero_checks_existence(run_entry):
    def main(ctx):
        rfd, wfd = ctx.trap(NR["pipe"])

        def child(cctx):
            cctx.trap(NR["close"], wfd)
            cctx.trap(NR["read"], rfd, 1)  # parks until parent closes
            return 0

        pid, _ = ctx.trap(NR["fork"], child)
        ctx.trap(NR["kill"], pid, 0)  # exists: no error, no signal
        ctx.trap(NR["close"], wfd)  # release the child
        ctx.trap(NR["wait"])
        return 0

    assert run_entry(main) == 0


def test_kill_permission_checked(run_entry):
    def main(ctx):
        # Become uid 50; init (pid 1)... there is no other process, so
        # fork a root child? We are uid 0 here; drop privilege in a child
        # and have it try to signal us.
        me = ctx.trap(NR["getpid"])

        def child(cctx):
            cctx.trap(NR["setuid"], 50)
            try:
                cctx.trap(NR["kill"], me, sig.SIGUSR1)
            except SyscallError as err:
                return 7 if err.errno == EPERM else 1
            return 1

        ctx.trap(NR["fork"], child)
        _, status = ctx.trap(NR["wait"])
        assert WEXITSTATUS(status) == 7
        return 0

    assert run_entry(main) == 0


def test_sigblock_defers_delivery(run_entry):
    def main(ctx):
        seen = []
        ctx.trap(NR["sigvec"], sig.SIGUSR1, lambda s: seen.append(s), 0)
        ctx.trap(NR["sigblock"], sig.sigmask(sig.SIGUSR1))
        ctx.trap(NR["kill"], ctx.trap(NR["getpid"]), sig.SIGUSR1)
        assert seen == []  # blocked, still pending
        ctx.trap(NR["sigsetmask"], 0)
        ctx.trap(NR["getpid"])  # any trap boundary delivers
        assert seen == [sig.SIGUSR1]
        return 0

    assert run_entry(main) == 0


def test_sigsetmask_returns_old(run_entry):
    def main(ctx):
        mask = sig.sigmask(sig.SIGUSR1) | sig.sigmask(sig.SIGUSR2)
        assert ctx.trap(NR["sigsetmask"], mask) == 0
        assert ctx.trap(NR["sigblock"], sig.sigmask(sig.SIGHUP)) == mask
        return 0

    assert run_entry(main) == 0


def test_kill_cannot_block_sigkill(run_entry):
    def main(ctx):
        ctx.trap(NR["sigsetmask"], 0xFFFFFFFF)
        ctx.trap(NR["kill"], ctx.trap(NR["getpid"]), sig.SIGKILL)
        return 0

    from repro.kernel import Kernel

    kernel = Kernel()
    status = kernel.run_entry(main)
    assert WIFSIGNALED(status) and WTERMSIG(status) == sig.SIGKILL


def test_handler_runs_with_signal_blocked(run_entry):
    def main(ctx):
        depth = []

        def handler(signum):
            depth.append(signum)
            if len(depth) == 1:
                # Re-raise inside the handler: must NOT recurse now.
                ctx.trap(NR["kill"], ctx.trap(NR["getpid"]), sig.SIGUSR1)
                assert len(depth) == 1

        ctx.trap(NR["sigvec"], sig.SIGUSR1, handler, 0)
        ctx.trap(NR["kill"], ctx.trap(NR["getpid"]), sig.SIGUSR1)
        ctx.trap(NR["getpid"])  # deliver the pended one after unmasking
        assert len(depth) == 2
        return 0

    assert run_entry(main) == 0


def test_blocking_read_interrupted_eintr(run_entry):
    def main(ctx):
        rfd, wfd = ctx.trap(NR["pipe"])
        me = ctx.trap(NR["getpid"])
        ctx.trap(NR["sigvec"], sig.SIGALRM, lambda s: None, 0)

        def child(cctx):
            cctx.trap(NR["kill"], me, sig.SIGALRM)
            return 0

        ctx.trap(NR["fork"], child)
        try:
            ctx.trap(NR["read"], rfd, 10)  # blocks; child signals us
        except SyscallError as err:
            assert err.errno == EINTR
            ctx.trap(NR["wait"])
            return 0
        return 1

    assert run_entry(main) == 0


def test_alarm_and_sigpause(run_entry):
    def main(ctx):
        fired = []
        ctx.trap(NR["sigvec"], sig.SIGALRM, lambda s: fired.append(s), 0)
        remaining = ctx.trap(NR["alarm"], 2)
        assert remaining == 0
        try:
            ctx.trap(NR["sigpause"], 0)
        except SyscallError as err:
            assert err.errno == EINTR
        assert fired == [sig.SIGALRM]
        return 0

    assert run_entry(main) == 0


def test_alarm_returns_remaining(run_entry):
    def main(ctx):
        ctx.trap(NR["alarm"], 100)
        remaining = ctx.trap(NR["alarm"], 0)  # cancel
        assert 0 < remaining <= 100
        assert ctx.trap(NR["alarm"], 0) == 0
        return 0

    assert run_entry(main) == 0


def test_killpg_signals_group(run_entry):
    def main(ctx):
        seen = []
        ctx.trap(NR["setpgrp"], 0, 0)  # own group = own pid
        group = ctx.trap(NR["getpgrp"])
        ctx.trap(NR["sigvec"], sig.SIGUSR2, lambda s: seen.append(s), 0)
        ctx.trap(NR["killpg"], group, sig.SIGUSR2)
        assert seen == [sig.SIGUSR2]
        return 0

    assert run_entry(main) == 0


def test_killpg_empty_group_esrch(run_entry):
    def main(ctx):
        try:
            ctx.trap(NR["killpg"], 4242, sig.SIGTERM)
        except SyscallError as err:
            assert err.errno == ESRCH
            return 0
        return 1

    assert run_entry(main) == 0


def test_sig_ign_discards_pending(run_entry):
    def main(ctx):
        seen = []
        ctx.trap(NR["sigvec"], sig.SIGUSR1, lambda s: seen.append(s), 0)
        ctx.trap(NR["sigblock"], sig.sigmask(sig.SIGUSR1))
        ctx.trap(NR["kill"], ctx.trap(NR["getpid"]), sig.SIGUSR1)
        ctx.trap(NR["sigvec"], sig.SIGUSR1, sig.SIG_IGN, 0)  # discards
        ctx.trap(NR["sigsetmask"], 0)
        ctx.trap(NR["getpid"])
        assert seen == []
        return 0

    assert run_entry(main) == 0


def test_signal_helpers():
    assert sig.signal_name(sig.SIGKILL) == "SIGKILL"
    assert sig.signal_name(99) == "SIG?99?"
    assert sig.sigmask(1) == 1
    assert sig.sigmask(9) == 0x100
    assert sig.default_action(sig.SIGCHLD) == "ignore"
    assert sig.default_action(sig.SIGSTOP) == "stop"
    assert sig.default_action(sig.SIGTERM) == "terminate"
    with pytest.raises(SyscallError):
        sig.check_signal(0)
    with pytest.raises(SyscallError):
        sig.check_signal(32)
