"""Tests for the zero-copy read path (inode.read_at + InodeFile.read).

With ``zero_copy`` on, ``RegularFile.read_at`` returns a memoryview
over the file's own buffer and the open-file layer materialises it into
``bytes`` exactly once, at the kernel/user boundary.  Userland must be
unable to tell: reads return ``bytes``, later writes and truncates must
neither raise ``BufferError`` (exports pinned on a resizing bytearray)
nor mutate data a previous read already returned.
"""

import pytest

from repro.kernel import Kernel
from repro.kernel.fastpath import FastPathConfig
from repro.kernel.ofile import O_CREAT, O_RDONLY, O_RDWR, O_TRUNC, O_WRONLY
from repro.kernel.proc import WEXITSTATUS
from repro.kernel.sysent import number_of

NR = {n: number_of(n) for n in (
    "open", "close", "read", "write", "readv", "lseek", "ftruncate",
)}


def _run(kernel, entry):
    return WEXITSTATUS(kernel.run_entry(entry))


@pytest.fixture
def zc_kernel():
    k = Kernel()
    assert k.fastpaths.zero_copy
    k.mkdir_p("/data")
    k.write_file("/data/f.bin", bytes(range(256)) * 64)  # 16 KiB
    return k


def test_read_returns_bytes_not_memoryview(zc_kernel):
    k = zc_kernel

    def main(ctx):
        fd = ctx.trap(NR["open"], "/data/f.bin", O_RDONLY)
        data = ctx.trap(NR["read"], fd, 1000)
        assert type(data) is bytes
        assert data == (bytes(range(256)) * 64)[:1000]
        ctx.trap(NR["close"], fd)
        return 0

    assert _run(k, main) == 0


def test_readv_returns_bytes(zc_kernel):
    k = zc_kernel

    def main(ctx):
        fd = ctx.trap(NR["open"], "/data/f.bin", O_RDONLY)
        chunks = ctx.trap(NR["readv"], fd, [100, 200, 300])
        flat = b"".join(bytes(c) for c in chunks)
        assert flat == (bytes(range(256)) * 64)[:600]
        for chunk in chunks:
            assert not isinstance(chunk, memoryview)
        ctx.trap(NR["close"], fd)
        return 0

    assert _run(k, main) == 0


def test_write_after_read_does_not_mutate_returned_bytes(zc_kernel):
    k = zc_kernel

    def main(ctx):
        fd = ctx.trap(NR["open"], "/data/f.bin", O_RDWR)
        before = ctx.trap(NR["read"], fd, 64)
        snapshot = bytes(before)
        ctx.trap(NR["lseek"], fd, 0, 0)
        ctx.trap(NR["write"], fd, b"\xff" * 64)
        assert before == snapshot  # the overwrite must not reach it
        ctx.trap(NR["lseek"], fd, 0, 0)
        assert ctx.trap(NR["read"], fd, 64) == b"\xff" * 64
        ctx.trap(NR["close"], fd)
        return 0

    assert _run(k, main) == 0


def test_truncate_after_read_raises_no_buffererror(zc_kernel):
    """A pinned memoryview export would make bytearray truncation raise
    BufferError; materialising at the boundary must prevent that."""
    k = zc_kernel

    def main(ctx):
        fd = ctx.trap(NR["open"], "/data/f.bin", O_RDWR)
        data = ctx.trap(NR["read"], fd, 16384)
        assert len(data) == 16384
        ctx.trap(NR["ftruncate"], fd, 10)  # shrinks the backing bytearray
        assert len(data) == 16384          # already-returned bytes keep theirs
        ctx.trap(NR["lseek"], fd, 0, 0)
        assert ctx.trap(NR["read"], fd, 16384) == data[:10]
        ctx.trap(NR["close"], fd)
        return 0

    assert _run(k, main) == 0


def test_seed_config_never_builds_memoryviews():
    k = Kernel(fastpaths="none")
    k.write_file("/f", b"abc" * 100)
    inode = k.rootfs.inode(k.rootfs.root.lookup("f"))
    assert type(inode.read_at(0, 50)) is bytes
    assert not getattr(k.rootfs, "zero_copy", False)


def test_zero_copy_read_at_is_a_view(zc_kernel):
    k = zc_kernel
    inode = k.rootfs.inode(
        k.rootfs.inode(k.rootfs.root.lookup("data")).lookup("f.bin"))
    view = inode.read_at(0, 50)
    assert type(view) is memoryview
    assert bytes(view) == (bytes(range(256)) * 64)[:50]
    view.release()  # tests must not leave the bytearray pinned


# -- stdio readahead sizing ----------------------------------------------


def test_stdio_bufsiz_defaults_to_seed():
    from repro.programs.libc import Sys
    from repro.workloads import boot_world

    world = boot_world()  # default config: readahead off
    proc = world._create_initial_process()
    from repro.kernel.trap import UserContext

    sys = Sys(UserContext(world, proc))
    assert sys.readahead == 0
    assert sys.stdio_bufsiz(8192) == 8192
    assert sys.stdio_bufsiz(1024) == 1024


def test_stdio_bufsiz_with_readahead():
    from repro.kernel.trap import UserContext
    from repro.programs.libc import Sys
    from repro.workloads import boot_world

    world = boot_world(fastpaths=FastPathConfig.all_on())
    proc = world._create_initial_process()
    sys = Sys(UserContext(world, proc))
    assert sys.readahead == world.fastpaths.stdio_readahead > 8192
    assert sys.stdio_bufsiz(8192) == world.fastpaths.stdio_readahead
    assert sys.stdio_bufsiz(1024) == world.fastpaths.stdio_readahead


def test_format_output_identical_with_readahead():
    """The buffered-stdio readahead changes the trap pattern (far fewer,
    larger reads) but must not change a single output byte."""
    from repro.workloads import boot_world, format_dissertation

    outputs = []
    traps = []
    for config in (FastPathConfig.none(), FastPathConfig.all_on()):
        world = boot_world(fastpaths=config)
        format_dissertation.setup(world)
        assert WEXITSTATUS(format_dissertation.run(world)) == 0
        outputs.append(world.read_file(format_dissertation.OUTPUT))
        traps.append(world.trap_total)
    assert outputs[0] == outputs[1]
    assert traps[1] < traps[0]  # the readahead really did batch the reads
