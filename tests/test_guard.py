"""Agent fault containment: policies, mechanisms, and dispatch paths.

A deliberately crashing agent is driven under each guard policy
(fail-stop, fail-open, quarantine), through both mechanisms (the
:class:`~repro.toolkit.guard.GuardedAgent` wrapper and the machine-wide
:class:`~repro.toolkit.guard.GuardRail`), and across all three trap
dispatch configurations (plain, observed, fast-path) — containment must
behave identically everywhere.  With no guard installed, the seed
behaviour (an agent exception surfaces as a client crash) is pinned.
"""

import pytest

from repro.kernel import signals as sig
from repro.kernel.errno import EPERM, SyscallError
from repro.kernel.fastpath import FastPathConfig
from repro.kernel.kernel import ProgramCrash
from repro.kernel.proc import WEXITSTATUS, WIFSIGNALED, WTERMSIG
from repro.kernel.sysent import number_of
from repro.toolkit import run_under_agent
from repro.toolkit.boilerplate import Agent
from repro.toolkit.guard import (
    GuardedAgent,
    GuardPolicy,
    GuardRail,
    install_guard,
    uninstall_guard,
)
from repro.workloads import boot_world

NR_WRITE = number_of("write")
NR_GETPID = number_of("getpid")


class AgentBug(RuntimeError):
    """The unexpected (non-SyscallError) exception a buggy agent raises."""


class CrashOnWrite(Agent):
    """Interposes on write and raises a host exception every time."""

    def __init__(self):
        super().__init__()
        self.calls = 0

    def init(self, agentargv):
        """Register interest in write(2)."""
        self.register_interest_many([NR_WRITE])

    def handle_syscall(self, number, args):
        """Count the call, then blow up."""
        self.calls += 1
        raise AgentBug("bug #%d" % self.calls)


class DenyOnWrite(Agent):
    """Raises a *protocol* error (SyscallError) — not a fault."""

    def init(self, agentargv):
        """Register interest in write(2)."""
        self.register_interest_many([NR_WRITE])

    def handle_syscall(self, number, args):
        """Refuse the write with a clean errno."""
        raise SyscallError(EPERM, "writes denied")


class CrashOnSignal(Agent):
    """Forwards calls untouched but crashes on every signal upcall."""

    def init(self, agentargv):
        """Register for signal interposition only."""
        self.register_signal_interest()

    def handle_signal(self, signum, action):
        """Blow up instead of forwarding."""
        raise AgentBug("signal bug")


#: the three dispatch configurations containment must cover: the plain
#: trap, the observed trap, and the fast-path trap
DISPATCH_CONFIGS = {
    "plain": {},
    "observed": {"obs": "metrics,trace"},
    "fastpath": {"fastpaths": FastPathConfig.all_on()},
}


def run_crasher(agent, **kernel_kwargs):
    """Run /bin/echo under *agent*; returns (kernel, status-or-crash)."""
    kernel = boot_world(**kernel_kwargs)
    try:
        status = run_under_agent(kernel, agent, "/bin/echo",
                                 ["echo", "hello"])
    except ProgramCrash as crash:
        return kernel, crash
    return kernel, status


# -- the seed behaviour, pinned ---------------------------------------------


@pytest.mark.parametrize("config", sorted(DISPATCH_CONFIGS))
def test_unguarded_agent_fault_is_a_client_crash(config):
    kernel, result = run_crasher(CrashOnWrite(),
                                 **DISPATCH_CONFIGS[config])
    assert isinstance(result, ProgramCrash)
    assert "AgentBug" in str(result)
    assert kernel.guard is None


# -- the wrapper mechanism, every policy x every dispatch path ---------------


@pytest.mark.parametrize("config", sorted(DISPATCH_CONFIGS))
def test_fail_stop_kills_only_the_client(config):
    guarded = GuardedAgent(CrashOnWrite(), "fail-stop")
    kernel, status = run_crasher(guarded, **DISPATCH_CONFIGS[config])
    assert WIFSIGNALED(status)
    assert WTERMSIG(status) == sig.SIGSYS
    assert kernel.panics == []  # a clean kill, not a host panic
    assert guarded.stats.kills == 1
    # The machine survives: it can run another program normally.
    assert WEXITSTATUS(kernel.run("/bin/echo", ["echo", "alive"])) == 0
    assert b"alive" in kernel.console.take_output()


@pytest.mark.parametrize("config", sorted(DISPATCH_CONFIGS))
def test_fail_open_completes_the_call_without_the_agent(config):
    inner = CrashOnWrite()
    guarded = GuardedAgent(inner, "fail-open")
    kernel, status = run_crasher(guarded, **DISPATCH_CONFIGS[config])
    assert WEXITSTATUS(status) == 0
    assert b"hello" in kernel.console.take_output()
    assert guarded.stats.faults == inner.calls > 0
    assert guarded.stats.kills == 0
    assert not guarded.quarantined


@pytest.mark.parametrize("config", sorted(DISPATCH_CONFIGS))
def test_quarantine_ejects_after_the_fault_budget(config):
    kernel = boot_world(**DISPATCH_CONFIGS[config])
    inner = CrashOnWrite()
    guarded = GuardedAgent(inner, "quarantine", max_faults=2)

    def main(ctx):
        guarded.attach(ctx)
        assert ctx.trap(NR_WRITE, 1, b"a") == 1  # fault 1: delegated
        assert ctx.trap(NR_WRITE, 1, b"b") == 1  # fault 2: ejection
        assert ctx.trap(NR_WRITE, 1, b"c") == 1  # passes through
        return 0

    assert WEXITSTATUS(kernel.run_entry(main)) == 0
    assert kernel.console.take_output() == b"abc"
    assert guarded.quarantined
    assert guarded.stats.snapshot() == {
        "faults": 2, "kills": 0, "ejections": 1}
    assert inner.calls == 2  # the third write never reached the agent


def test_syscall_errors_pass_through_the_guard():
    # Protocol errors are results, not faults: no policy may contain them.
    kernel = boot_world()
    guarded = GuardedAgent(DenyOnWrite(), "fail-stop")

    def main(ctx):
        guarded.attach(ctx)
        with pytest.raises(SyscallError) as err:
            ctx.trap(NR_WRITE, 1, b"x")
        assert err.value.errno == EPERM
        return 0

    assert WEXITSTATUS(kernel.run_entry(main)) == 0
    assert guarded.stats.faults == 0


def test_guarded_signal_fault_still_delivers_the_signal():
    kernel = boot_world()
    guarded = GuardedAgent(CrashOnSignal(), "fail-open")
    caught = []

    def main(ctx):
        guarded.attach(ctx)
        ctx.trap(number_of("sigvec"), sig.SIGUSR1, caught.append, 0)
        ctx.trap(number_of("kill"), ctx.proc.pid, sig.SIGUSR1)
        return 0

    assert WEXITSTATUS(kernel.run_entry(main)) == 0
    assert caught == [sig.SIGUSR1]
    assert guarded.stats.faults == 1


def test_guard_contains_faults_under_union_and_txn_stacks():
    # A crashing agent on top of real union + txn layers: containment
    # delegates past it to the layer below, whose semantics survive.
    from repro.agents.txn import TxnAgent
    from repro.agents.union_dirs import UnionAgent

    kernel = boot_world()
    kernel.mkdir_p("/m1")
    kernel.write_file("/m1/f.txt", "payload")
    kernel.mkdir_p("/u")
    union = UnionAgent()
    union.pset.add_union("/u", ["/m1"])
    txn = TxnAgent(scratch_dir="/tmp/guard.txn", outcome="commit")
    inner = CrashOnWrite()
    guarded = GuardedAgent(inner, "fail-open")

    def loader(ctx):
        union.attach(ctx)
        txn.attach(ctx)
        guarded.attach(ctx)
        guarded.exec_client(
            "/bin/sh", ["sh", "-c", "cat /u/f.txt; echo ok >> /u/f.txt"],
            {})

    assert WEXITSTATUS(kernel.run_entry(loader)) == 0
    assert b"payload" in kernel.console.take_output()
    # The union still resolved /u, the txn still committed the append.
    assert b"ok" in kernel.read_file("/m1/f.txt")
    assert guarded.stats.faults == inner.calls > 0


# -- the rail mechanism ------------------------------------------------------


@pytest.mark.parametrize("config", sorted(DISPATCH_CONFIGS))
def test_rail_fail_stop_matches_the_wrapper(config):
    kernel, status = run_crasher(
        CrashOnWrite(), guard="fail-stop", **DISPATCH_CONFIGS[config])
    assert WIFSIGNALED(status)
    assert WTERMSIG(status) == sig.SIGSYS
    assert kernel.panics == []
    assert kernel.guard.stats.kills == 1


@pytest.mark.parametrize("config", sorted(DISPATCH_CONFIGS))
def test_rail_fail_open_matches_the_wrapper(config):
    kernel, status = run_crasher(
        CrashOnWrite(), guard="fail-open", **DISPATCH_CONFIGS[config])
    assert WEXITSTATUS(status) == 0
    assert b"hello" in kernel.console.take_output()
    assert kernel.guard.stats.faults > 0


def test_rail_quarantine_restores_the_vector_below_the_agent():
    kernel = boot_world(guard="quarantine:2")
    inner = CrashOnWrite()

    def main(ctx):
        inner.attach(ctx)
        assert NR_WRITE in ctx.proc.emulation_vector
        assert ctx.trap(NR_WRITE, 1, b"a") == 1  # fault 1
        assert ctx.trap(NR_WRITE, 1, b"b") == 1  # fault 2: ejected
        # The agent's vector entry is gone: write goes straight down.
        assert NR_WRITE not in ctx.proc.emulation_vector
        assert ctx.trap(NR_WRITE, 1, b"c") == 1
        return 0

    assert WEXITSTATUS(kernel.run_entry(main)) == 0
    assert kernel.console.take_output() == b"abc"
    assert kernel.guard.stats.snapshot() == {
        "faults": 2, "kills": 0, "ejections": 1}
    assert inner.calls == 2


def test_rail_quarantine_spares_innocent_stacked_agents():
    # Two agents interposed on write; only the crasher is ejected, and
    # the survivor keeps seeing the call afterwards.
    kernel = boot_world(guard="quarantine:1")
    seen = []

    class Witness(Agent):
        def init(self, agentargv):
            self.register_interest_many([NR_WRITE])

        def handle_syscall(self, number, args):
            seen.append(number)
            return self.syscall_down_numeric(number, args)

    witness = Witness()
    crasher = CrashOnWrite()

    def main(ctx):
        witness.attach(ctx)
        crasher.attach(ctx)  # stacked above the witness
        assert ctx.trap(NR_WRITE, 1, b"a") == 1  # crasher faults, ejected
        assert ctx.trap(NR_WRITE, 1, b"b") == 1  # witness still interposed
        return 0

    assert WEXITSTATUS(kernel.run_entry(main)) == 0
    assert kernel.console.take_output() == b"ab"
    # The witness saw both writes: the first via the rail's delegation
    # through the crasher's downcall chain, the second directly.
    assert seen == [NR_WRITE, NR_WRITE]
    assert kernel.guard.stats.ejections == 1


def test_rail_signal_fault_still_delivers_the_signal():
    kernel = boot_world(guard="fail-open")
    agent = CrashOnSignal()
    caught = []

    def main(ctx):
        agent.attach(ctx)
        ctx.trap(number_of("sigvec"), sig.SIGUSR1, caught.append, 0)
        ctx.trap(number_of("kill"), ctx.proc.pid, sig.SIGUSR1)
        return 0

    assert WEXITSTATUS(kernel.run_entry(main)) == 0
    assert caught == [sig.SIGUSR1]
    assert kernel.guard.stats.faults == 1


# -- observability + stats ---------------------------------------------------


def test_guard_actions_flow_through_the_obs_bus():
    kernel = boot_world(obs="metrics,trace", guard="fail-open")
    kinds = []
    kernel.obs.bus.subscribe(lambda event: kinds.append(event.kind))
    status = run_under_agent(kernel, CrashOnWrite(), "/bin/echo",
                             ["echo", "hi"])
    assert WEXITSTATUS(status) == 0
    counters = kernel.obs.metrics.snapshot()["counters"]
    assert any("guard.fault" in str(key) for key in counters)
    assert "guard.fault" in kinds


def test_kernel_stats_reports_the_guard_section():
    kernel = boot_world(guard="fail-open")

    def main(ctx):
        stats = ctx.trap(number_of("kernel_stats"))
        assert stats["guard"] == {"faults": 0, "kills": 0, "ejections": 0,
                                  "policy": "fail-open"}
        return 0

    assert WEXITSTATUS(kernel.run_entry(main)) == 0
    plain = boot_world()

    def main_plain(ctx):
        assert ctx.trap(number_of("kernel_stats"))["guard"] == {
            "enabled": False}
        return 0

    assert WEXITSTATUS(plain.run_entry(main_plain)) == 0


# -- policy parsing and install/uninstall ------------------------------------


def test_guard_policy_parsing():
    assert GuardPolicy.parse("fail-stop").mode == "fail-stop"
    policy = GuardPolicy.parse("quarantine:5")
    assert policy.mode == "quarantine"
    assert policy.max_faults == 5
    assert GuardPolicy.parse(policy) is policy
    with pytest.raises(ValueError):
        GuardPolicy.parse("fail-banana")
    with pytest.raises(ValueError):
        GuardPolicy("quarantine", max_faults=0)
    with pytest.raises(TypeError):
        GuardPolicy.parse(42)


def test_install_and_uninstall_guard():
    kernel = boot_world()
    assert kernel.guard is None
    rail = install_guard(kernel, "quarantine:4")
    assert kernel.guard is rail
    assert rail.policy.max_faults == 4
    same = GuardRail("fail-open")
    assert install_guard(kernel, same) is same
    assert uninstall_guard(kernel) is same
    assert kernel.guard is None
    # Back to seed behaviour: the next agent fault crashes the client.
    with pytest.raises(ProgramCrash):
        run_under_agent(kernel, CrashOnWrite(), "/bin/echo", ["echo", "x"])
