"""Tests for dfs_trace and the kernel DFSTrace baseline (Section 3.5.3)."""

import pytest

from repro.agents.dfs_trace import DfsTraceAgent
from repro.kernel import dfstrace as kdfs
from repro.kernel.proc import WEXITSTATUS
from repro.toolkit import run_under_agent


def _ops(records):
    return [r.opcode for r in records]


def test_agent_records_file_references(world):
    agent = DfsTraceAgent("/tmp/dfs.log")
    status = run_under_agent(
        world, agent, "/bin/sh",
        ["sh", "-c", "echo x > /tmp/a; cat /tmp/a; rm /tmp/a; mkdir /tmp/d; rmdir /tmp/d"],
    )
    assert WEXITSTATUS(status) == 0
    ops = _ops(agent.records)
    for expected in ("open", "close", "unlink", "mkdir", "rmdir", "execve",
                     "fork", "exit", "stat"):
        assert expected in ops, expected


def test_agent_log_file_parses_back(world):
    agent = DfsTraceAgent("/tmp/dfs.log")
    run_under_agent(world, agent, "/bin/sh", ["sh", "-c", "cat /etc/passwd > /dev/null"])
    parsed = kdfs.parse_trace(world.read_file("/tmp/dfs.log").decode())
    assert _ops(parsed) == _ops(agent.records)
    assert all(r.pid > 0 for r in parsed)
    assert all(r.time_usec > 0 for r in parsed)


def test_record_line_roundtrip():
    record = kdfs.DFSRecord(123456, 7, "open", 2, "/etc/passwd flags=0x0 fd=-1")
    again = kdfs.DFSRecord.from_line(record.to_line())
    assert (again.time_usec, again.pid, again.opcode, again.error,
            again.detail) == (123456, 7, "open", 2, "/etc/passwd flags=0x0 fd=-1")


def test_errors_recorded(world):
    agent = DfsTraceAgent("/tmp/dfs.log")
    run_under_agent(world, agent, "/bin/sh", ["sh", "-c", "cat /missing; true"])
    failed_opens = [r for r in agent.records if r.opcode == "open" and r.error]
    assert failed_opens
    from repro.kernel.errno import ENOENT

    assert failed_opens[0].error == ENOENT


def test_kernel_collector_records(world):
    collector = kdfs.enable(world)
    world.run("/bin/sh", ["sh", "-c", "echo k > /tmp/k; cat /tmp/k"])
    kdfs.disable(world)
    ops = _ops(collector.records)
    assert "open" in ops and "close" in ops and "fork" in ops


def test_kernel_collector_untraced_calls_skipped(world):
    collector = kdfs.enable(world)
    world.run("/bin/date", ["date"])
    kdfs.disable(world)
    assert "gettimeofday" not in _ops(collector.records)


def test_kernel_collector_buffer_limit(world):
    collector = kdfs.enable(world, buffer_limit=2)
    world.run("/bin/sh", ["sh", "-c", "cat /etc/passwd > /dev/null"])
    kdfs.disable(world)
    assert len(collector.records) == 2
    assert collector.dropped > 0


def test_drain_empties_buffer(world):
    collector = kdfs.enable(world)
    world.run("/bin/true", ["true"])
    records = collector.drain()
    assert records
    assert collector.records == []


def test_agent_and_kernel_traces_equivalent(world):
    """The agent-based implementation is compatible with the kernel-based
    tools: the same client operations yield the same record stream."""
    collector = kdfs.enable(world)
    agent = DfsTraceAgent("/tmp/dfs.log")
    status = run_under_agent(
        world, agent, "/bin/sh",
        ["sh", "-c", "echo z > /tmp/z; cat /tmp/z; rm /tmp/z"],
    )
    assert WEXITSTATUS(status) == 0
    kdfs.disable(world)

    # The kernel also saw the agent's own machinery (its log writes, the
    # exec reimplementation's probes); restrict both streams to the
    # client's pathname operations on /tmp/z for a faithful comparison.
    def client_ops(records):
        return [
            (r.opcode, r.detail.split()[0])
            for r in records
            if r.detail.startswith("/tmp/z")
        ]

    agent_view = client_ops(agent.records)
    kernel_view = client_ops(collector.records)
    assert agent_view == kernel_view
    assert agent_view  # non-empty


def test_flush_batches(world):
    agent = DfsTraceAgent("/tmp/dfs.log")
    # Fewer records than FLUSH_EVERY before exit: exit flushes the rest.
    run_under_agent(world, agent, "/bin/true", ["true"])
    text = world.read_file("/tmp/dfs.log").decode()
    assert len(text.splitlines()) == len(agent.records)


def test_agent_uses_no_kernel_hooks(world):
    """The agent implementation works with kernel tracing disabled —
    no kernel modifications required (paper's portability point)."""
    assert world.dfstrace is None
    agent = DfsTraceAgent("/tmp/dfs.log")
    status = run_under_agent(world, agent, "/bin/sh", ["sh", "-c", "ls / > /dev/null"])
    assert WEXITSTATUS(status) == 0
    assert agent.records
    assert world.dfstrace is None
