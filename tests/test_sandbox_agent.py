"""Tests for the sandbox agent (protected environments, paper Section 1.4)."""

import pytest

from repro.agents.sandbox import SandboxAgent, SandboxPolicy, SandboxViolation
from repro.kernel.proc import WEXITSTATUS, WIFSIGNALED
from repro.toolkit import run_under_agent


def run_sandboxed(world, policy, command):
    agent = SandboxAgent(policy)
    status = run_under_agent(world, agent, "/bin/sh", ["sh", "-c", command])
    return agent, status, world.console.take_output().decode()


def test_hidden_paths_appear_missing(world):
    agent, status, out = run_sandboxed(
        world, SandboxPolicy(hidden=("/etc",)), "cat /etc/passwd; true"
    )
    assert "ENOENT" in out
    assert ("lookup", "/etc/passwd") in agent.violations


def test_write_outside_writable_denied(world):
    agent, status, out = run_sandboxed(
        world, SandboxPolicy(writable=("/tmp",)),
        "echo x > /home/mbj/file; true",
    )
    assert not world.lookup_host("/home/mbj").contains("file")
    assert ("write", "/home/mbj/file") in agent.violations


def test_write_inside_writable_allowed(world):
    agent, status, out = run_sandboxed(
        world, SandboxPolicy(writable=("/tmp",)), "echo ok > /tmp/fine"
    )
    assert WEXITSTATUS(status) == 0
    assert world.read_file("/tmp/fine") == b"ok\n"
    assert agent.violations == []


def test_mutations_checked(world):
    world.write_file("/home/mbj/precious", "keep me")
    agent, status, out = run_sandboxed(
        world, SandboxPolicy(writable=("/tmp",)),
        "rm /home/mbj/precious; mkdir /home/mbj/lair; true",
    )
    assert world.read_file("/home/mbj/precious") == b"keep me"
    assert not world.lookup_host("/home/mbj").contains("lair")
    assert len(agent.violations) == 2


def test_emulated_writes_fool_the_client(world):
    world.mkdir_p("/tmp/shadow")
    world.write_file("/home/mbj/target", "original")
    policy = SandboxPolicy(writable=("/tmp/nowhere",),
                           emulate_writes_to="/tmp/shadow")
    agent, status, out = run_sandboxed(
        world, policy,
        "echo overwritten > /home/mbj/target; cat /home/mbj/target",
    )
    assert WEXITSTATUS(status) == 0
    assert "overwritten" in out  # the client sees its own write
    assert world.read_file("/home/mbj/target") == b"original"


def test_emulated_write_seeds_original_contents(world):
    world.mkdir_p("/tmp/shadow2")
    world.write_file("/home/mbj/seeded", "AAAABBBB")
    policy = SandboxPolicy(writable=("/tmp/none",),
                           emulate_writes_to="/tmp/shadow2")

    def patcher(sys, argv, envp):
        from repro.programs.libc import O_WRONLY

        fd = sys.open("/home/mbj/seeded", O_WRONLY)
        sys.write(fd, b"XX")  # partial overwrite
        sys.close(fd)
        sys.print_out(sys.read_whole("/home/mbj/seeded").decode())
        return 0

    from tests.conftest import install_program

    install_program(world, "patcher", patcher)
    agent = SandboxAgent(policy)
    status = run_under_agent(world, agent, "/bin/patcher", ["patcher"])
    out = world.console.take_output().decode()
    assert out == "XXAABBBB"  # seeded from the original, then patched
    assert world.read_file("/home/mbj/seeded") == b"AAAABBBB"


def test_syscall_limit_enforced(world):
    policy = SandboxPolicy(max_syscalls=10)
    agent, status, out = run_sandboxed(
        world, policy, "echo a; echo b; echo c; echo d; echo e; echo f"
    )
    assert any(op.startswith("limit:syscalls") for op, _ in agent.violations)


def test_fork_limit(world):
    policy = SandboxPolicy(max_forks=1)
    agent, status, out = run_sandboxed(world, policy, "echo one; echo two")
    assert any(op == "limit:forks" for op, _ in agent.violations)


def test_open_limit(world):
    policy = SandboxPolicy(max_opens=1)
    agent, status, out = run_sandboxed(
        world, policy, "cat /etc/passwd /etc/passwd > /dev/null; true"
    )
    assert any(op == "limit:opens" for op, _ in agent.violations)


def test_bytes_written_limit(world):
    policy = SandboxPolicy(max_bytes_written=10, writable=("/tmp",))
    agent, status, out = run_sandboxed(
        world, policy,
        "echo 0123456789abcdef > /tmp/big; true",
    )
    assert any(op == "limit:bytes" for op, _ in agent.violations)


def test_privileged_calls_denied(world):
    agent, status, out = run_sandboxed(
        world, SandboxPolicy(), "true"
    )

    # Drive setuid/chroot directly through a custom binary.
    def villain(sys, argv, envp):
        from repro.kernel.errno import EPERM, SyscallError

        for op in (lambda: sys.setuid(0), lambda: sys.chroot("/tmp"),
                   lambda: sys.settimeofday(0, 0)):
            try:
                op()
                return 1
            except SyscallError as err:
                if err.errno != EPERM:
                    return 1
        return 0

    from tests.conftest import install_program

    install_program(world, "villain", villain)
    agent = SandboxAgent(SandboxPolicy())
    status = run_under_agent(world, agent, "/bin/villain", ["villain"])
    assert WEXITSTATUS(status) == 0
    assert len(agent.violations) == 3


def test_kill_outside_family_denied(world):
    def sniper(sys, argv, envp):
        from repro.kernel.errno import EPERM, SyscallError

        try:
            sys.kill(1, 9)
            return 1
        except SyscallError as err:
            return 0 if err.errno == EPERM else 1

    from tests.conftest import install_program

    install_program(world, "sniper", sniper)

    # Keep a long-lived victim around as pid 1's sibling... simply use a
    # foreign pid that exists: the loader process itself is the client's
    # ancestor, so pick pid 1 (init) — outside the family once forked.
    agent = SandboxAgent(SandboxPolicy())
    status = run_under_agent(world, agent, "/bin/sh", ["sh", "-c", "sniper"])
    assert WEXITSTATUS(status) == 0


def test_reviewer_hook_consulted(world):
    asked = []

    def reviewer(op, path):
        asked.append((op, path))
        return not path.endswith("forbidden.txt")

    world.write_file("/tmp/allowed.txt", "yes")
    world.write_file("/tmp/forbidden.txt", "no")
    policy = SandboxPolicy(writable=("/tmp",), reviewer=reviewer)
    agent, status, out = run_sandboxed(
        world, policy, "cat /tmp/allowed.txt; cat /tmp/forbidden.txt; true"
    )
    assert "yes" in out
    assert "no\n" not in out
    assert ("open", "/tmp/forbidden.txt") in asked


def test_loader_spec(world):
    status = world.run(
        "/bin/sh",
        ["sh", "-c", "agentrun sandbox hide=/etc -- sh -c 'cat /etc/passwd; true'"],
    )
    out = world.console.take_output().decode()
    assert "root:" not in out
