"""Tests for the foreign-OS emulation agent (paper Section 1.4)."""

import pytest

from repro.agents.emul import (
    FOREIGN_BASE,
    EmulAgent,
    ForeignContext,
    foreign_errno,
    foreign_number,
)
from repro.kernel.errno import ENOENT, SyscallError
from repro.kernel.proc import WEXITSTATUS
from repro.kernel.sysent import number_of


def test_number_mapping():
    assert foreign_number(5) == 1005
    assert foreign_errno(2) == 102  # ENOENT
    assert foreign_errno(5) == 5  # unmapped values pass through


def _foreign_session(world, body):
    """Run *body(foreign_ctx)* under the emulation agent."""

    def main(ctx):
        agent = EmulAgent()
        agent.attach(ctx)
        return body(ForeignContext(ctx), agent)

    return WEXITSTATUS(world.run_entry(main))


def test_foreign_binary_runs(world):
    def body(f, agent):
        fd = f.trap(5, "/tmp/foreign.txt", 0x0201 | 0x0200, 0o644)  # open
        f.trap(4, fd, b"hpux says hi\n")  # write
        f.trap(6, fd)  # close
        assert agent.translated == 3
        return 0

    assert _foreign_session(world, body) == 0
    assert world.read_file("/tmp/foreign.txt") == b"hpux says hi\n"


def test_foreign_errno_convention(world):
    def body(f, agent):
        try:
            f.trap(5, "/definitely/missing", 0, 0)
        except SyscallError as err:
            return 0 if err.errno == 102 else 1
        return 1

    assert _foreign_session(world, body) == 0


def test_foreign_two_register_calls(world):
    def body(f, agent):
        pid, flag = f.trap(2, lambda c: 5)  # fork
        wpid, status = f.trap(7)  # wait
        assert wpid == pid and flag == 0
        return WEXITSTATUS(status)

    assert _foreign_session(world, body) == 5


def test_unknown_foreign_number_enosys(world):
    def body(f, agent):
        try:
            f.trap(199)  # no such native call
        except SyscallError as err:
            from repro.kernel.errno import ENOSYS

            return 0 if err.errno == ENOSYS else 1
        return 1

    assert _foreign_session(world, body) == 0


def test_native_calls_unaffected(world):
    def main(ctx):
        EmulAgent().attach(ctx)
        assert ctx.trap(number_of("getpid")) == ctx.proc.pid
        return 0

    assert WEXITSTATUS(world.run_entry(main)) == 0


def test_foreign_binary_without_agent_fails(world):
    def main(ctx):
        try:
            ForeignContext(ctx).trap(20)  # getpid, foreign numbering
        except SyscallError as err:
            from repro.kernel.errno import ENOSYS

            return 0 if err.errno == ENOSYS else 1
        return 1

    assert WEXITSTATUS(world.run_entry(main)) == 0
