"""Tests for the union directories agent (paper Section 3.3.3)."""

import pytest

from repro.agents.union_dirs import UnionAgent, normalize
from repro.kernel.proc import WEXITSTATUS
from repro.toolkit import run_under_agent


# -- unit: path normalization ------------------------------------------

def test_normalize_absolute():
    assert normalize("/a/b/../c") == "/a/c"
    assert normalize("/a//b/./c/") == "/a/b/c"
    assert normalize("/..") == "/"
    assert normalize("/") == "/"


def test_normalize_relative_with_cwd():
    assert normalize("x/y", "/home") == "/home/x/y"
    assert normalize("../y", "/home/sub") == "/home/y"
    assert normalize(".", "/home") == "/home"


# -- behaviour --------------------------------------------------------------

@pytest.fixture
def union_world(world):
    world.mkdir_p("/src")
    world.mkdir_p("/obj")
    world.mkdir_p("/view")
    world.write_file("/src/main.c", "int main(){}\n")
    world.write_file("/src/shared.txt", "from src\n")
    world.write_file("/obj/main.o", "!object\n")
    world.write_file("/obj/shared.txt", "from obj\n")
    return world


def _agent():
    agent = UnionAgent()
    agent.pset.add_union("/view", ["/src", "/obj"])
    return agent


def run_union(world, command):
    status = run_under_agent(
        world, _agent(), "/bin/sh", ["sh", "-c", command]
    )
    return WEXITSTATUS(status), world.console.take_output().decode()


def test_merged_listing(union_world):
    code, out = run_union(union_world, "ls /view")
    assert code == 0
    assert out.splitlines() == ["main.c", "main.o", "shared.txt"]


def test_first_member_shadows(union_world):
    code, out = run_union(union_world, "cat /view/shared.txt")
    assert out == "from src\n"


def test_fallthrough_to_second_member(union_world):
    code, out = run_union(union_world, "cat /view/main.o")
    assert out == "!object\n"


def test_creation_goes_to_first_member(union_world):
    code, _ = run_union(union_world, "echo fresh > /view/new.txt")
    assert code == 0
    assert union_world.read_file("/src/new.txt") == b"fresh\n"
    assert not union_world.lookup_host("/obj").contains("new.txt")


def test_unlink_through_union(union_world):
    code, _ = run_union(union_world, "rm /view/main.o")
    assert code == 0
    assert not union_world.lookup_host("/obj").contains("main.o")


def test_stat_through_union(union_world):
    code, out = run_union(union_world, "ls -l /view/shared.txt")
    assert code == 0
    assert "9" in out  # size of "from src\n"


def test_missing_name_enoent(union_world):
    code, out = run_union(union_world, "cat /view/absent")
    assert code == 1
    assert "ENOENT" in out or "absent" in out


def test_relative_paths_through_cwd(union_world):
    code, out = run_union(union_world, "cd /view; cat shared.txt")
    assert out == "from src\n"


def test_non_union_paths_untouched(union_world):
    code, out = run_union(union_world, "cat /etc/passwd")
    assert code == 0
    assert "root:" in out


def test_make_over_union_view(union_world):
    """The paper's motivating case: distinct source and object
    directories appear as a single directory when running make."""
    union_world.write_file(
        "/src/Makefile",
        "prog: main.c\n"
        "\tcc -o prog main.c\n",
    )
    code, out = run_union(union_world, "cd /view; make")
    assert code == 0, out
    # The output landed in the first member, visible through the view.
    assert union_world.lookup_host("/src").contains("prog")
    code, out = run_union(union_world, "ls /view")
    assert "prog" in out.split()


def test_dot_entries_come_from_first_member_only(union_world):
    code, out = run_union(union_world, "ls -a /view")
    names = out.split()
    assert names.count(".") == 1
    assert names.count("..") == 1


def test_loader_spec_parsing(world):
    world.mkdir_p("/m1")
    world.mkdir_p("/m2")
    world.write_file("/m1/a", "")
    world.write_file("/m2/b", "")
    world.mkdir_p("/u")
    status = world.run(
        "/bin/sh",
        ["sh", "-c", "agentrun union /u=/m1:/m2 -- ls /u"],
    )
    assert WEXITSTATUS(status) == 0
    assert world.console.take_output().decode().split() == ["a", "b"]


def test_union_of_three_members(world):
    for i, name in ((1, "one"), (2, "two"), (3, "three")):
        world.mkdir_p("/m%d" % i)
        world.write_file("/m%d/%s" % (i, name), "")
    agent = UnionAgent()
    agent.pset.add_union("/all", ["/m1", "/m2", "/m3"])
    status = run_under_agent(world, agent, "/bin/sh", ["sh", "-c", "ls /all"])
    assert world.console.take_output().decode().split() == [
        "one", "three", "two"
    ]
