"""Kernel fault sites: scheduling, arming, and clean error unwind.

The sites must be invisible until armed, deterministic under rules and
seeds, and — the property the chaos harness rests on — every injected
error must unwind without corrupting machine state (the creat-unwind
inode leak these sites originally exposed is pinned here).
"""

import pytest

from repro.kernel.errno import EIO, ENOSPC, EPERM, SyscallError
from repro.kernel.faultsite import SITES, FaultRule, FaultSet
from repro.kernel.ofile import O_CREAT, O_WRONLY
from repro.kernel.proc import WEXITSTATUS
from repro.kernel.sysent import number_of
from repro.workloads import boot_world

NR_OPEN = number_of("open")
NR_CLOSE = number_of("close")
NR_MKNOD = number_of("mknod")
NR_SYMLINK = number_of("symlink")


# -- scheduling --------------------------------------------------------------


def test_fault_rule_schedules():
    def firings(rule, count):
        return [rule.should_fire() for _ in range(count)]

    assert firings(FaultRule("always"), 3) == [True, True, True]
    assert firings(FaultRule("once"), 3) == [True, False, False]
    assert firings(FaultRule(("after", 3)), 4) == [False, False, True, True]
    assert firings(FaultRule(("every", 2)), 4) == [False, True, False, True]


def test_fault_rule_parsing():
    assert FaultRule.parse("once").schedule == "once"
    assert FaultRule.parse("after-3").schedule == ("after", 3)
    assert FaultRule.parse("every-2").schedule == ("every", 2)
    rule = FaultRule(("after", 1), errno=EPERM)
    assert FaultRule.parse(rule) is rule
    with pytest.raises(ValueError):
        FaultRule.parse("sometimes")
    with pytest.raises(ValueError):
        FaultRule("sometimes")


def test_fault_set_parsing_and_unknown_tags():
    fs = FaultSet.parse("ufs.make:once, pipe.write:every-3, ufs.unlink")
    assert fs.rules["ufs.make"].schedule == "once"
    assert fs.rules["pipe.write"].schedule == ("every", 3)
    assert fs.rules["ufs.unlink"].schedule == "always"
    assert FaultSet.parse(fs) is fs
    assert FaultSet.parse({"ufs.link": "once"}).rules["ufs.link"]
    with pytest.raises(ValueError):
        FaultSet.parse("ufs.bogus:once")
    with pytest.raises(TypeError):
        FaultSet.parse(42)


def test_check_counts_and_raises_the_site_errno():
    fs = FaultSet.parse("ufs.make:once")
    with pytest.raises(SyscallError) as err:
        fs.check("ufs.make")
    assert err.value.errno == ENOSPC  # the site's default errno
    fs.check("ufs.make")  # "once" is spent
    fs.check("pipe.read")  # no rule, no rng: never fires
    assert fs.stats()["checked"] == {"ufs.make": 2, "pipe.read": 1}
    assert fs.stats()["fired"] == {"ufs.make": 1}
    assert fs.total_fired() == 1


def test_rule_errno_override_beats_the_default():
    fs = FaultSet(rules={"pipe.write": FaultRule("always", errno=EPERM)})
    with pytest.raises(SyscallError) as err:
        fs.check("pipe.write")
    assert err.value.errno == EPERM


def test_seeded_random_mode_replays_exactly():
    def stream(seed):
        fs = FaultSet.random(seed, rate=0.3)
        fired = []
        for i in range(200):
            try:
                fs.check("namei.lookup")
            except SyscallError:
                fired.append(i)
        return fired

    assert stream(7) == stream(7)
    assert stream(7) != stream(8)
    assert stream(7)  # rate 0.3 over 200 draws: some must fire


def test_random_mode_tag_restriction():
    fs = FaultSet(seed=1, rate=1.0, tags=["pipe.read"])
    with pytest.raises(SyscallError):
        fs.check("pipe.read")
    fs.check("ufs.make")  # not in the tag set: never fires
    with pytest.raises(ValueError):
        FaultSet(seed=1, rate=1.0, tags=["not.a.site"])


# -- arming a live kernel ----------------------------------------------------


def test_sites_are_off_until_armed_and_off_after_disarm(world):
    assert world.faultsites is None
    assert world.rootfs.faultsites is None
    armed = world.arm_faults("ufs.make:always")
    assert world.faultsites is armed
    assert world.rootfs.faultsites is armed
    world.disarm_faults()
    assert world.faultsites is None
    assert world.rootfs.faultsites is None


def test_creat_sees_injected_enospc_once(world):
    world.arm_faults("ufs.make:once")

    def main(ctx):
        with pytest.raises(SyscallError) as err:
            ctx.trap(NR_OPEN, "/tmp/a.txt", O_CREAT | O_WRONLY, 0o644)
        assert err.value.errno == ENOSPC
        fd = ctx.trap(NR_OPEN, "/tmp/b.txt", O_CREAT | O_WRONLY, 0o644)
        ctx.trap(NR_CLOSE, fd)
        return 0

    assert WEXITSTATUS(world.run_entry(main)) == 0
    assert world.faultsites.fired == {"ufs.make": 1}


def test_pipe_sites_surface_as_eio(world):
    world.arm_faults("pipe.write:once")
    status, out = _sh(world, "echo through | cat")
    # The writer's first pipe write dies with EIO; the shell reports it.
    assert "through" not in out


def test_namei_site_fails_lookups_cleanly(world):
    def main(ctx):
        # Arm from inside the process: run_entry's own setup resolves
        # paths too, and the "once" must land on the open below.
        world.arm_faults("namei.lookup:once")
        with pytest.raises(SyscallError) as err:
            ctx.trap(NR_OPEN, "/tmp/x", 0, 0)
        assert err.value.errno == EIO
        return 0

    assert WEXITSTATUS(world.run_entry(main)) == 0


def _sh(world, command):
    status = world.run("/bin/sh", ["sh", "-c", command])
    return status, world.console.take_output().decode()


# -- error unwind leaves no debris (the leak regression) ---------------------


def inode_count(fs):
    return len(fs._inodes)


def test_failed_creat_link_reclaims_the_fresh_inode(world):
    # Regression: open(O_CREAT) allocates the inode and then links it;
    # when the link faults, the unlinked inode must not leak.
    world.arm_faults("ufs.link:once")
    before = inode_count(world.rootfs)

    def main(ctx):
        with pytest.raises(SyscallError) as err:
            ctx.trap(NR_OPEN, "/tmp/leak.txt", O_CREAT | O_WRONLY, 0o644)
        assert err.value.errno == EIO
        return 0

    assert WEXITSTATUS(world.run_entry(main)) == 0
    assert inode_count(world.rootfs) == before


def test_failed_mknod_and_symlink_reclaim_too(world):
    world.arm_faults("ufs.link:always")
    before = inode_count(world.rootfs)
    import repro.kernel.stat as st

    def main(ctx):
        with pytest.raises(SyscallError):
            ctx.trap(NR_MKNOD, "/tmp/fifo", st.S_IFIFO | 0o644, 0)
        with pytest.raises(SyscallError):
            ctx.trap(NR_SYMLINK, "/tmp/target", "/tmp/sym")
        return 0

    assert WEXITSTATUS(world.run_entry(main)) == 0
    assert inode_count(world.rootfs) == before


def test_failed_unlink_leaves_the_file_intact(world):
    world.write_file("/tmp/keep.txt", "data")
    world.arm_faults("ufs.unlink:once")
    status, out = _sh(world, "rm /tmp/keep.txt; cat /tmp/keep.txt")
    assert "data" in out  # the failed unlink removed nothing


def test_injections_flow_through_the_obs_bus():
    kernel = boot_world(obs="metrics,trace")
    kernel.arm_faults("pipe.write:once")
    kinds = []
    kernel.obs.bus.subscribe(lambda event: kinds.append(event.kind))
    kernel.run("/bin/sh", ["sh", "-c", "echo x | cat"])
    kernel.console.take_output()
    assert "fault.inject" in kinds
    counters = kernel.obs.metrics.snapshot()["counters"]
    assert any("fault.inject" in str(key) for key in counters)


def test_kernel_stats_reports_the_faultsite_section(world):
    def check(expected_enabled):
        def main(ctx):
            section = ctx.trap(number_of("kernel_stats"))["faultsites"]
            if expected_enabled:
                assert "checked" in section and "fired" in section
            else:
                assert section == {"enabled": False}
            return 0

        assert WEXITSTATUS(world.run_entry(main)) == 0

    check(False)
    world.arm_faults("ufs.make:once")
    check(True)
    world.disarm_faults()
    check(False)


def test_every_declared_site_is_consulted_by_real_traffic(world):
    # Drive a workload touching files, pipes, and lookups with a
    # never-firing random set: every declared site must be consulted,
    # proving the tags in SITES are all live code paths.
    armed = world.arm_faults(FaultSet.random(seed=0, rate=0.0))
    _sh(world, "mkdir /tmp/d; echo x > /tmp/d/f; ln /tmp/d/f /tmp/d/g; "
               "cat /tmp/d/f | cat; rm /tmp/d/f /tmp/d/g; rmdir /tmp/d")
    assert set(armed.checked) == set(SITES)
    assert armed.total_fired() == 0
