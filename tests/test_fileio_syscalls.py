"""Tests for descriptor-based system calls: read/write/lseek/dup/fcntl..."""

import pytest

from repro.kernel.errno import EBADF, EINVAL, EISDIR, ESPIPE, SyscallError
from repro.kernel.ofile import (
    F_DUPFD,
    F_GETFD,
    F_GETFL,
    F_SETFD,
    F_SETFL,
    FD_CLOEXEC,
    O_APPEND,
    O_CREAT,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
    SEEK_CUR,
    SEEK_END,
    SEEK_SET,
)
from repro.kernel.sysent import number_of

NR = {n: number_of(n) for n in (
    "open", "read", "write", "close", "lseek", "dup", "dup2", "fcntl",
    "fstat", "ftruncate", "fsync", "getdirentries", "select",
    "getdtablesize", "mkdir",
)}


def test_read_write_offsets(kernel, run_entry):
    def main(ctx):
        fd = ctx.trap(NR["open"], "/tmp/f", O_RDWR | O_CREAT, 0o644)
        ctx.trap(NR["write"], fd, b"hello world")
        ctx.trap(NR["lseek"], fd, 0, SEEK_SET)
        assert ctx.trap(NR["read"], fd, 5) == b"hello"
        assert ctx.trap(NR["read"], fd, 6) == b" world"
        assert ctx.trap(NR["read"], fd, 6) == b""
        return 0

    assert run_entry(main) == 0


def test_lseek_whences(kernel, run_entry):
    def main(ctx):
        fd = ctx.trap(NR["open"], "/tmp/f", O_RDWR | O_CREAT, 0o644)
        ctx.trap(NR["write"], fd, b"0123456789")
        assert ctx.trap(NR["lseek"], fd, 2, SEEK_SET) == 2
        assert ctx.trap(NR["lseek"], fd, 3, SEEK_CUR) == 5
        assert ctx.trap(NR["lseek"], fd, -1, SEEK_END) == 9
        assert ctx.trap(NR["read"], fd, 10) == b"9"
        try:
            ctx.trap(NR["lseek"], fd, -100, SEEK_SET)
        except SyscallError as err:
            assert err.errno == EINVAL
            return 0
        return 1

    assert run_entry(main) == 0


def test_write_beyond_eof_via_seek(kernel, run_entry):
    def main(ctx):
        fd = ctx.trap(NR["open"], "/tmp/hole", O_RDWR | O_CREAT, 0o644)
        ctx.trap(NR["lseek"], fd, 4, SEEK_SET)
        ctx.trap(NR["write"], fd, b"x")
        ctx.trap(NR["lseek"], fd, 0, SEEK_SET)
        assert ctx.trap(NR["read"], fd, 10) == b"\0\0\0\0x"
        return 0

    assert run_entry(main) == 0


def test_dup_shares_offset(kernel, run_entry):
    def main(ctx):
        fd = ctx.trap(NR["open"], "/tmp/f2", O_RDWR | O_CREAT, 0o644)
        ctx.trap(NR["write"], fd, b"abcdef")
        dup_fd = ctx.trap(NR["dup"], fd)
        assert dup_fd != fd
        ctx.trap(NR["lseek"], fd, 1, SEEK_SET)
        assert ctx.trap(NR["read"], dup_fd, 2) == b"bc"  # shared offset
        return 0

    assert run_entry(main) == 0


def test_dup2_replaces_target(kernel, run_entry):
    kernel.write_file("/tmp/a", "AAA")
    kernel.write_file("/tmp/b", "BBB")

    def main(ctx):
        fd_a = ctx.trap(NR["open"], "/tmp/a", O_RDONLY, 0)
        fd_b = ctx.trap(NR["open"], "/tmp/b", O_RDONLY, 0)
        ctx.trap(NR["dup2"], fd_a, fd_b)
        assert ctx.trap(NR["read"], fd_b, 3) == b"AAA"
        assert ctx.trap(NR["dup2"], fd_a, fd_a) == fd_a  # self-dup is a no-op
        return 0

    assert run_entry(main) == 0


def test_fcntl_dupfd_minimum(kernel, run_entry):
    def main(ctx):
        fd = ctx.trap(NR["open"], "/dev/null", O_RDONLY, 0)
        high = ctx.trap(NR["fcntl"], fd, F_DUPFD, 20)
        assert high >= 20
        return 0

    assert run_entry(main) == 0


def test_fcntl_cloexec_flag(kernel, run_entry):
    def main(ctx):
        fd = ctx.trap(NR["open"], "/dev/null", O_RDONLY, 0)
        assert ctx.trap(NR["fcntl"], fd, F_GETFD, 0) == 0
        ctx.trap(NR["fcntl"], fd, F_SETFD, FD_CLOEXEC)
        assert ctx.trap(NR["fcntl"], fd, F_GETFD, 0) == FD_CLOEXEC
        ctx.trap(NR["fcntl"], fd, F_SETFD, 0)
        assert ctx.trap(NR["fcntl"], fd, F_GETFD, 0) == 0
        return 0

    assert run_entry(main) == 0


def test_fcntl_getfl_setfl(kernel, run_entry):
    def main(ctx):
        fd = ctx.trap(NR["open"], "/tmp/fl", O_WRONLY | O_CREAT, 0o644)
        ctx.trap(NR["fcntl"], fd, F_SETFL, O_APPEND)
        assert ctx.trap(NR["fcntl"], fd, F_GETFL, 0) & O_APPEND
        return 0

    assert run_entry(main) == 0


def test_append_mode_writes_at_end(kernel, run_entry):
    kernel.write_file("/tmp/log", "start:")

    def main(ctx):
        fd = ctx.trap(NR["open"], "/tmp/log", O_WRONLY | O_APPEND, 0)
        ctx.trap(NR["lseek"], fd, 0, SEEK_SET)
        ctx.trap(NR["write"], fd, b"appended")
        return 0

    run_entry(main)
    assert kernel.read_file("/tmp/log") == b"start:appended"


def test_read_on_writeonly_fd_ebadf(kernel, run_entry):
    def main(ctx):
        fd = ctx.trap(NR["open"], "/tmp/w", O_WRONLY | O_CREAT, 0o644)
        try:
            ctx.trap(NR["read"], fd, 1)
        except SyscallError as err:
            assert err.errno == EBADF
            return 0
        return 1

    assert run_entry(main) == 0


def test_write_on_readonly_fd_ebadf(kernel, run_entry):
    kernel.write_file("/tmp/r", "x")

    def main(ctx):
        fd = ctx.trap(NR["open"], "/tmp/r", O_RDONLY, 0)
        try:
            ctx.trap(NR["write"], fd, b"nope")
        except SyscallError as err:
            assert err.errno == EBADF
            return 0
        return 1

    assert run_entry(main) == 0


def test_operations_on_closed_fd(kernel, run_entry):
    def main(ctx):
        fd = ctx.trap(NR["open"], "/dev/null", O_RDONLY, 0)
        ctx.trap(NR["close"], fd)
        for call, args in ((NR["read"], (fd, 1)), (NR["close"], (fd,)),
                           (NR["fstat"], (fd,))):
            try:
                ctx.trap(call, *args)
            except SyscallError as err:
                assert err.errno == EBADF
            else:
                return 1
        return 0

    assert run_entry(main) == 0


def test_ftruncate(kernel, run_entry):
    kernel.write_file("/tmp/t", "0123456789")

    def main(ctx):
        fd = ctx.trap(NR["open"], "/tmp/t", O_WRONLY, 0)
        ctx.trap(NR["ftruncate"], fd, 4)
        return 0

    run_entry(main)
    assert kernel.read_file("/tmp/t") == b"0123"


def test_ftruncate_readonly_rejected(kernel, run_entry):
    kernel.write_file("/tmp/t2", "data")

    def main(ctx):
        fd = ctx.trap(NR["open"], "/tmp/t2", O_RDONLY, 0)
        try:
            ctx.trap(NR["ftruncate"], fd, 0)
        except SyscallError as err:
            assert err.errno == EBADF
            return 0
        return 1

    assert run_entry(main) == 0


def test_getdirentries_batches_and_offset(kernel, run_entry):
    kernel.mkdir_p("/tmp/dir")
    for i in range(5):
        kernel.write_file("/tmp/dir/f%d" % i, "x")

    def main(ctx):
        fd = ctx.trap(NR["open"], "/tmp/dir", O_RDONLY, 0)
        first = ctx.trap(NR["getdirentries"], fd, 3)
        rest = ctx.trap(NR["getdirentries"], fd, 100)
        names = [d.d_name for d in first + rest]
        assert names == [".", "..", "f0", "f1", "f2", "f3", "f4"]
        assert ctx.trap(NR["getdirentries"], fd, 10) == []
        # rewind via lseek
        ctx.trap(NR["lseek"], fd, 0, SEEK_SET)
        assert len(ctx.trap(NR["getdirentries"], fd, 100)) == 7
        return 0

    assert run_entry(main) == 0


def test_getdirentries_on_file_einval(kernel, run_entry):
    kernel.write_file("/tmp/plain", "x")

    def main(ctx):
        fd = ctx.trap(NR["open"], "/tmp/plain", O_RDONLY, 0)
        try:
            ctx.trap(NR["getdirentries"], fd, 10)
        except SyscallError as err:
            assert err.errno == EINVAL
            return 0
        return 1

    assert run_entry(main) == 0


def test_read_directory_eisdir(kernel, run_entry):
    def main(ctx):
        fd = ctx.trap(NR["open"], "/tmp", O_RDONLY, 0)
        try:
            ctx.trap(NR["read"], fd, 10)
        except SyscallError as err:
            assert err.errno == EISDIR
            return 0
        return 1

    assert run_entry(main) == 0


def test_select_advances_virtual_time(kernel, run_entry):
    def main(ctx):
        before = ctx.kernel.clock.usec()
        ctx.trap(NR["select"], 2_000_000)
        assert ctx.kernel.clock.usec() - before >= 2_000_000
        return 0

    assert run_entry(main) == 0


def test_getdtablesize(run_entry):
    def main(ctx):
        assert ctx.trap(NR["getdtablesize"]) == 64
        return 0

    assert run_entry(main) == 0


def test_fd_numbers_lowest_free(kernel, run_entry):
    def main(ctx):
        a = ctx.trap(NR["open"], "/dev/null", O_RDONLY, 0)
        b = ctx.trap(NR["open"], "/dev/null", O_RDONLY, 0)
        assert (a, b) == (3, 4)  # 0-2 are the console
        ctx.trap(NR["close"], a)
        c = ctx.trap(NR["open"], "/dev/null", O_RDONLY, 0)
        assert c == a
        return 0

    assert run_entry(main) == 0
