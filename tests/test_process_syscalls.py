"""Tests for process lifecycle: fork, wait, exit, identity, status codes."""

import pytest

from repro.kernel.errno import ECHILD, EPERM, SyscallError
from repro.kernel.proc import (
    WEXITSTATUS,
    WIFEXITED,
    WIFSIGNALED,
    WTERMSIG,
    wait_status_exited,
    wait_status_signaled,
)
from repro.kernel.sysent import number_of

NR = {n: number_of(n) for n in (
    "fork", "wait", "exit", "getpid", "getppid", "getuid", "geteuid",
    "getgid", "getegid", "setuid", "getgroups", "setgroups", "getpgrp",
    "setpgrp", "umask", "brk", "getpagesize", "gethostname", "open",
    "write", "read", "close", "getrusage",
)}


def test_wait_status_macros():
    status = wait_status_exited(7)
    assert WIFEXITED(status) and WEXITSTATUS(status) == 7
    assert not WIFSIGNALED(status)
    status = wait_status_signaled(9)
    assert WIFSIGNALED(status) and WTERMSIG(status) == 9
    assert not WIFEXITED(status)


def test_fork_returns_child_pid_and_zero(run_entry):
    def main(ctx):
        pid, second = ctx.trap(NR["fork"], None)
        assert second == 0
        assert pid > ctx.trap(NR["getpid"])
        ctx.trap(NR["wait"])
        return 0

    assert run_entry(main) == 0


def test_wait_returns_pid_and_status(run_entry):
    def main(ctx):
        pid, _ = ctx.trap(NR["fork"], lambda c: 42)
        wpid, status = ctx.trap(NR["wait"])
        assert wpid == pid
        assert WEXITSTATUS(status) == 42
        return 0

    assert run_entry(main) == 0


def test_wait_no_children_echild(run_entry):
    def main(ctx):
        try:
            ctx.trap(NR["wait"])
        except SyscallError as err:
            assert err.errno == ECHILD
            return 0
        return 1

    assert run_entry(main) == 0


def test_child_sees_parent_pid(run_entry):
    def main(ctx):
        me = ctx.trap(NR["getpid"])
        result = []

        def child(cctx):
            result.append(cctx.trap(number_of("getppid")))
            return 0

        ctx.trap(NR["fork"], child)
        ctx.trap(NR["wait"])
        assert result == [me]
        return 0

    assert run_entry(main) == 0


def test_multiple_children_all_reaped(run_entry):
    def main(ctx):
        pids = set()
        for code in (1, 2, 3):
            pid, _ = ctx.trap(NR["fork"], lambda c, code=code: code)
            pids.add(pid)
        codes = set()
        for _ in range(3):
            wpid, status = ctx.trap(NR["wait"])
            assert wpid in pids
            codes.add(WEXITSTATUS(status))
        assert codes == {1, 2, 3}
        return 0

    assert run_entry(main) == 0


def test_child_inherits_descriptors(kernel, run_entry):
    def main(ctx):
        fd = ctx.trap(NR["open"], "/tmp/shared", 0x0201 | 0x0200, 0o644)
        ctx.trap(NR["write"], fd, b"parent")

        def child(cctx):
            cctx.trap(NR["write"], fd, b"+child")
            return 0

        ctx.trap(NR["fork"], child)
        ctx.trap(NR["wait"])
        ctx.trap(NR["write"], fd, b"+more")
        return 0

    run_entry(main)
    assert kernel.read_file("/tmp/shared") == b"parent+child+more"


def test_child_fd_close_does_not_affect_parent(kernel, run_entry):
    kernel.write_file("/tmp/keep", "content")

    def main(ctx):
        fd = ctx.trap(NR["open"], "/tmp/keep", 0, 0)

        def child(cctx):
            cctx.trap(NR["close"], fd)
            return 0

        ctx.trap(NR["fork"], child)
        ctx.trap(NR["wait"])
        assert ctx.trap(NR["read"], fd, 100) == b"content"
        return 0

    assert run_entry(main) == 0


def test_identity_calls(run_entry):
    def main(ctx):
        assert ctx.trap(NR["getuid"]) == 0
        assert ctx.trap(NR["geteuid"]) == 0
        assert ctx.trap(NR["getgid"]) == 0
        assert ctx.trap(NR["getegid"]) == 0
        assert ctx.trap(NR["getgroups"]) == [0]
        assert ctx.trap(NR["getpgrp"]) == ctx.trap(NR["getpid"])
        return 0

    assert run_entry(main) == 0


def test_setuid_drops_privilege_one_way(run_entry):
    def main(ctx):
        ctx.trap(NR["setuid"], 100)
        assert ctx.trap(NR["getuid"]) == 100
        try:
            ctx.trap(NR["setuid"], 0)
        except SyscallError as err:
            assert err.errno == EPERM
            return 0
        return 1

    assert run_entry(main) == 0


def test_setgroups_requires_root(run_entry):
    def main(ctx):
        ctx.trap(NR["setgroups"], [1, 2, 3])
        assert ctx.trap(NR["getgroups"]) == [1, 2, 3]
        return 0

    assert run_entry(main) == 0

    def unprivileged(ctx):
        try:
            ctx.trap(NR["setgroups"], [1])
        except SyscallError as err:
            assert err.errno == EPERM
            return 0
        return 1

    assert run_entry(unprivileged, uid=50) == 0


def test_umask_returns_previous(run_entry):
    def main(ctx):
        old = ctx.trap(NR["umask"], 0o027)
        assert old == 0o022
        assert ctx.trap(NR["umask"], 0o022) == 0o027
        return 0

    assert run_entry(main) == 0


def test_umask_applies_to_creation(kernel, run_entry):
    def main(ctx):
        ctx.trap(NR["umask"], 0o077)
        fd = ctx.trap(NR["open"], "/tmp/masked", 0x0201 | 0x0200, 0o666)
        ctx.trap(NR["close"], fd)
        return 0

    run_entry(main)
    assert kernel.lookup_host("/tmp/masked").mode & 0o777 == 0o600


def test_setpgrp(run_entry):
    def main(ctx):
        ctx.trap(NR["setpgrp"], 0, 77)
        assert ctx.trap(NR["getpgrp"]) == 77
        return 0

    assert run_entry(main) == 0


def test_child_inherits_pgrp(run_entry):
    def main(ctx):
        ctx.trap(NR["setpgrp"], 0, 55)
        seen = []

        def child(cctx):
            seen.append(cctx.trap(NR["getpgrp"]))
            return 0

        ctx.trap(NR["fork"], child)
        ctx.trap(NR["wait"])
        assert seen == [55]
        return 0

    assert run_entry(main) == 0


def test_misc_info_calls(run_entry):
    def main(ctx):
        assert ctx.trap(NR["getpagesize"]) == 4096
        assert "repro" in ctx.trap(NR["gethostname"])
        ctx.trap(NR["brk"], 0x20000)
        return 0

    assert run_entry(main) == 0


def test_rusage_counts_syscalls(run_entry):
    def main(ctx):
        before = ctx.trap(NR["getrusage"], 0).ru_nsyscalls
        for _ in range(10):
            ctx.trap(NR["getpid"])
        after = ctx.trap(NR["getrusage"], 0).ru_nsyscalls
        assert after - before >= 10
        return 0

    assert run_entry(main) == 0


def test_child_rusage_accumulated(run_entry):
    def main(ctx):
        def child(cctx):
            for _ in range(25):
                cctx.trap(NR["getpid"])
            return 0

        ctx.trap(NR["fork"], child)
        ctx.trap(NR["wait"])
        children = ctx.trap(NR["getrusage"], -1)
        assert children.ru_nsyscalls >= 25
        return 0

    assert run_entry(main) == 0


def test_orphans_reparented_to_init(kernel):
    from repro.kernel.sysent import number_of

    def main(ctx):
        def middle(mctx):
            # Grandchild outlives its parent.
            def grandchild(gctx):
                gctx.trap(number_of("select"), 100)
                return 0

            mctx.trap(NR["fork"], grandchild)
            return 0  # middle exits without waiting

        ctx.trap(NR["fork"], middle)
        ctx.trap(NR["wait"])  # reap middle
        # The grandchild is now init's (ours); we can reap it too.
        wpid, _ = ctx.trap(NR["wait"])
        assert wpid > 0
        return 0

    status = kernel.run_entry(main)
    assert WEXITSTATUS(status) == 0
    assert kernel.process_count() == 0
