"""Tests for causal span assembly, cross-process edges, and the critical path.

Covers the span layer end to end: per-trap spans on both dispatch paths,
htg downcalls as children of agent spans, the four causal edge kinds
(fork, exec, pipe, signal), the same edges recovered under union+txn
agent stacks, the pay-per-use guarantee with spans off, the
``Kernel(obs=...)`` boot spec, in-world introspection via
``kernel_stats``, and the critical-path walk's 100%-attribution
invariant.
"""

import pytest

from repro import obs
from repro.agents.monitor import MonitorAgent
from repro.agents.txn import TxnAgent
from repro.agents.union_dirs import UnionAgent
from repro.kernel import Kernel
from repro.kernel.proc import WEXITSTATUS
from repro.kernel.sysent import number_of
from repro.obs import events as ev
from repro.obs.critical import BUCKETS, critical_path
from repro.obs.spans import SpanAssembler
from repro.workloads import boot_world

NR_GETPID = number_of("getpid")
NR_FORK = number_of("fork")
NR_WAIT = number_of("wait")
NR_KILL = number_of("kill")
NR_SIGVEC = number_of("sigvec")
NR_KERNEL_STATS = number_of("kernel_stats")
NR_SET_REDIRECT = number_of("task_set_signal_redirect")

#: corpus big enough that every pipeline stage genuinely blocks
CORPUS = b"interposition agents compose\n" * 2000


def _spans_by_kind(assembler):
    out = {}
    for span in assembler.finished():
        out.setdefault(span.kind, []).append(span)
    return out


def _edges_by_kind(assembler):
    out = {}
    for edge in assembler.all_edges():
        out.setdefault(edge.kind, []).append(edge)
    return out


def _run_pipeline(stack):
    """The 3-stage pipeline, bare or under a union+txn agent stack."""
    world = boot_world(obs="spans")
    world.mkdir_p("/data")
    world.write_file("/data/corpus", CORPUS)
    if stack == "bare":
        status = world.run("/bin/sh", ["sh", "-c",
                                       "cat /data/corpus | sort | wc"])
    else:
        union = UnionAgent()
        union.pset.add_union("/view", ["/data"])
        txn = TxnAgent(scratch_dir="/tmp/spans.txn", outcome="commit")
        agents = [union, txn]

        def loader(ctx):
            for agent in agents:
                agent.attach(ctx)
            agents[-1].exec_client(
                "/bin/sh", ["sh", "-c", "cat /view/corpus | sort | wc"], {})

        status = world.run_entry(loader)
    assert WEXITSTATUS(status) == 0
    world.obs.spans.close_open()
    return world


# -- span assembly on the two dispatch paths -----------------------------


def test_kernel_path_traps_become_spans(kernel, run_entry):
    obs.enable(kernel, spans=True)

    def main(ctx):
        ctx.trap(NR_GETPID)
        ctx.trap(NR_GETPID)
        return 0

    assert run_entry(main) == 0
    kernel.obs.spans.close_open()
    by_kind = _spans_by_kind(kernel.obs.spans)
    getpids = [s for s in by_kind[ev.TRAP_KERNEL] if s.name == "getpid"]
    assert len(getpids) == 2
    for span in getpids:
        assert span.parent == 0
        assert span.end_usec is not None and span.end_usec > span.start_usec
        assert span.close_seq > span.open_seq


def test_agent_path_nests_htg_downcalls(kernel, run_entry):
    obs.enable(kernel, spans=True)

    def main(ctx):
        ctx.trap(number_of("task_set_emulation"), [NR_GETPID],
                 lambda hctx, n, a: hctx.htg(n, *a))
        ctx.trap(NR_GETPID)
        return 0

    assert run_entry(main) == 0
    kernel.obs.spans.close_open()
    by_kind = _spans_by_kind(kernel.obs.spans)
    agent_spans = [s for s in by_kind[ev.TRAP_AGENT] if s.name == "getpid"]
    assert len(agent_spans) == 1
    htg_children = [s for s in by_kind["htg"]
                    if s.parent == agent_spans[0].sid]
    assert len(htg_children) == 1 and htg_children[0].name == "getpid"
    # The downcall nests inside the agent trap span in time too.
    assert agent_spans[0].start_usec <= htg_children[0].start_usec
    assert htg_children[0].end_usec <= agent_spans[0].end_usec


# -- fork -> child causal linkage ----------------------------------------


def test_fork_edge_links_child_first_event(kernel, run_entry):
    obs.enable(kernel, spans=True)
    seen = []
    kernel.obs.bus.subscribe(seen.append)

    def main(ctx):
        ctx.trap(NR_FORK, lambda child: 0)
        ctx.trap(NR_WAIT)
        return 0

    assert run_entry(main) == 0
    kernel.obs.spans.close_open()
    forks = _edges_by_kind(kernel.obs.spans)["fork"]
    assert len(forks) == 1
    edge = forks[0]
    fork_events = [e for e in seen if e.kind == ev.PROC_FORK]
    assert edge.src_seq == fork_events[0].seq
    assert edge.src_pid == fork_events[0].pid
    assert edge.dst_pid != edge.src_pid
    # The child's first event is stamped with the fork as its cause.
    child_first = min((e for e in seen if e.pid == edge.dst_pid),
                      key=lambda e: e.seq)
    assert child_first.seq == edge.dst_seq
    assert child_first.cause == edge.src_seq


# -- the 3-stage pipeline: pipe edges, bare and stacked ------------------


@pytest.mark.parametrize("stack", ["bare", "union+txn"])
def test_pipeline_pipe_edges(stack):
    world = _run_pipeline(stack)
    assembler = world.obs.spans
    edges = _edges_by_kind(assembler)
    # sh forks three stages, each execs its program.
    assert len(edges["fork"]) == 3
    assert len(edges["exec"]) >= 3
    # The corpus exceeds PIPE_BUF, so stages really blocked: every pipe
    # edge links a sleeper to a *different* process (its waker), both
    # members of the pipeline.
    assert edges.get("pipe"), "pipeline never blocked on its pipes"
    pids = {e.dst_pid for e in edges["fork"]} | {edges["fork"][0].src_pid}
    for edge in edges["pipe"]:
        assert edge.src_pid != edge.dst_pid
        assert edge.src_pid in pids and edge.dst_pid in pids
        assert edge.src_seq < edge.dst_seq
    # Every pipe edge closes a pipe.blocked span whose cause names the
    # waker's event.
    blocked = {s.close_seq: s for s in assembler.finished()
               if s.kind == "pipe.blocked"}
    linked = [blocked[e.dst_seq] for e in edges["pipe"]
              if e.dst_seq in blocked]
    assert linked, "pipe edges did not pair with pipe.blocked spans"
    for span, edge in zip(linked, edges["pipe"]):
        assert span.cause == edge.src_seq


@pytest.mark.parametrize("stack", ["bare", "union+txn"])
def test_pipeline_critical_path_fully_attributed(stack):
    world = _run_pipeline(stack)
    report = critical_path(world.obs.spans)
    assert report.total_usec() > 0
    # 100% attribution: the bucket totals tile the path exactly.
    assert sum(report.buckets.values()) == report.total_usec()
    assert set(report.buckets) <= set(BUCKETS)
    # The walk crossed processes (wait handoff + pipe wakers).
    assert report.hops > 0
    chain_pids = {seg.pid for seg in report.segments}
    assert len(chain_pids) >= 3
    # Segments tile [start, end] contiguously, latest first.
    cursor = report.end_usec
    for seg in report.segments:
        assert seg.end_usec == cursor
        assert seg.start_usec < seg.end_usec
        cursor = seg.start_usec
    assert cursor == report.start_usec


# -- signal upcall -> deliver, bare and stacked --------------------------


def test_signal_edge_bare_redirect(kernel, run_entry):
    obs.enable(kernel, spans=True)
    seen = []
    kernel.obs.bus.subscribe(seen.append)

    def main(ctx):
        from repro.kernel import signals as sig
        from repro.kernel.trap import deliver_signal_to_application

        ctx.trap(NR_SIGVEC, sig.SIGUSR1, lambda s: None, 0)
        ctx.trap(NR_SET_REDIRECT,
                 lambda c, s, a: deliver_signal_to_application(
                     c.kernel, c.proc, s))
        ctx.trap(NR_KILL, ctx.proc.pid, sig.SIGUSR1)
        return 0

    assert run_entry(main) == 0
    kernel.obs.spans.close_open()
    signal_edges = _edges_by_kind(kernel.obs.spans).get("signal", [])
    assert len(signal_edges) == 1
    upcalls = [e for e in seen if e.kind == ev.SIG_UPCALL]
    delivers = [e for e in seen if e.kind == ev.SIG_DELIVER]
    assert len(upcalls) == 1 and len(delivers) == 1
    assert upcalls[0].seq < delivers[0].seq
    assert signal_edges[0].src_seq == upcalls[0].seq
    assert signal_edges[0].dst_seq == delivers[0].seq
    assert delivers[0].cause == upcalls[0].seq
    blocked = [s for s in kernel.obs.spans.finished()
               if s.kind == "signal.blocked"]
    assert len(blocked) == 1 and blocked[0].name == "SIGUSR1"


@pytest.mark.parametrize("stack", ["monitor", "union+txn"])
def test_signal_edge_under_agent_stack(stack, world):
    """Symbolic-layer agents route signals; forwarding must produce the
    upcall -> deliver pair (and edge) under single agents and stacks."""
    from tests.conftest import install_program

    obs.enable(world, spans=True)

    def selfkill(s, argv, envp):
        from repro.kernel import signals as sig

        hits = []
        s.sigvec(sig.SIGUSR1, lambda signum: hits.append(signum))
        s.kill(s.getpid(), sig.SIGUSR1)
        return 0 if hits == [sig.SIGUSR1] else 1

    install_program(world, "selfkill", selfkill)
    if stack == "monitor":
        agents = [MonitorAgent("/tmp/spans_mon.out")]
    else:
        union = UnionAgent()
        union.pset.add_union("/view", ["/bin"])
        agents = [union, TxnAgent(scratch_dir="/tmp/spans_sig.txn",
                                  outcome="commit")]

    def loader(ctx):
        for agent in agents:
            agent.attach(ctx)
        agents[-1].exec_client("/bin/selfkill", ["selfkill"], {})

    status = world.run_entry(loader)
    assert WEXITSTATUS(status) == 0
    world.obs.spans.close_open()
    edges = _edges_by_kind(world.obs.spans).get("signal", [])
    assert [  # exactly the one SIGUSR1 routing, upcall before deliver
        (e.src_pid == e.dst_pid and e.src_seq < e.dst_seq) for e in edges
    ] == [True]
    blocked = [s for s in world.obs.spans.finished()
               if s.kind == "signal.blocked"]
    assert len(blocked) == 1 and blocked[0].name == "SIGUSR1"
    assert blocked[0].cause == edges[0].src_seq


# -- pay-per-use and wiring ----------------------------------------------


def test_spans_off_leaves_events_unstamped(kernel, run_entry):
    switchboard = obs.enable(kernel)  # metrics, no spans
    assert switchboard.spans is None
    seen = []
    switchboard.bus.subscribe(seen.append)

    def main(ctx):
        ctx.trap(NR_GETPID)
        return 0

    assert run_entry(main) == 0
    assert seen
    for event in seen:
        assert event.span == 0 and event.cause == 0
        assert len(event.to_tuple()) == 7


def test_spans_alone_make_wants_true(kernel):
    switchboard = obs.enable(kernel, spans=True)
    proc = kernel._create_initial_process()
    assert not switchboard.bus.active() and not proc.ktrace_on
    assert switchboard.wants(proc)
    switchboard.disable_spans()
    assert not switchboard.wants(proc)


def test_enable_disable_spans_roundtrip(kernel):
    switchboard = obs.enable(kernel)
    assert switchboard.spans is None
    first = switchboard.enable_spans()
    assert switchboard.enable_spans() is first  # idempotent
    detached = switchboard.disable_spans()
    assert detached is first and switchboard.spans is None
    # enable() with spans=True on an already-enabled kernel is additive.
    assert obs.enable(kernel, spans=True) is switchboard
    assert switchboard.spans is not None


def test_kernel_obs_spec():
    assert Kernel().obs is None
    metrics_only = Kernel(obs=True).obs
    assert metrics_only is not None and metrics_only.spans is None
    spanned = Kernel(obs="spans").obs
    assert spanned.spans is not None
    both = Kernel(obs="trace,spans").obs
    assert both.trace_all and both.spans is not None
    with pytest.raises(ValueError):
        Kernel(obs="sporks")


def test_kernel_stats_reports_span_counts(kernel, run_entry):
    obs.enable(kernel, spans=True)
    stats_holder = []

    def main(ctx):
        ctx.trap(NR_GETPID)
        stats_holder.append(ctx.trap(NR_KERNEL_STATS))
        return 0

    assert run_entry(main) == 0
    stats = stats_holder[0]["spans"]
    assert stats["enabled"] is True
    assert stats["events"] > 0 and stats["spans"] > 0
    # And with spans off the section says so.
    bare = Kernel()
    holder = []
    bare.run_entry(lambda ctx: holder.append(ctx.trap(NR_KERNEL_STATS)) or 0)
    assert holder[0]["spans"] == {"enabled": False}


def test_snapshot_includes_spans_section(kernel, run_entry):
    switchboard = obs.enable(kernel, spans=True)

    def main(ctx):
        ctx.trap(NR_GETPID)
        return 0

    assert run_entry(main) == 0
    snap = switchboard.snapshot()
    assert snap["spans"]["enabled"] is True
    assert snap["spans"]["events"] > 0
    switchboard.disable_spans()
    assert switchboard.snapshot()["spans"] == {"enabled": False}


def test_close_open_closes_dangling_spans():
    assembler = SpanAssembler()
    event = ev.Event(1, 1000, 7, "prog", ev.TRAP_KERNEL, "read")
    assembler.observe(event)
    assert assembler.open_count() == 1
    assembler.close_open(at_usec=2500)
    assert assembler.open_count() == 0
    span = assembler.finished()[-1]
    assert span.name == "read" and span.end_usec == 2500


def test_critical_path_empty_trace():
    report = critical_path(SpanAssembler())
    assert report.total_usec() == 0
    assert report.segments == [] and report.buckets == {}
