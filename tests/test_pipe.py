"""Tests for pipes: ordering, EOF, EPIPE/SIGPIPE, blocking."""

import pytest

from repro.kernel import signals as sig
from repro.kernel.errno import EPIPE, SyscallError
from repro.kernel.pipe import PIPE_BUF
from repro.kernel.sysent import number_of

NR_PIPE = number_of("pipe")
NR_READ = number_of("read")
NR_WRITE = number_of("write")
NR_CLOSE = number_of("close")
NR_FORK = number_of("fork")
NR_WAIT = number_of("wait")
NR_SIGVEC = number_of("sigvec")


def test_pipe_fifo_order(run_entry):
    def main(ctx):
        rfd, wfd = ctx.trap(NR_PIPE)
        ctx.trap(NR_WRITE, wfd, b"one ")
        ctx.trap(NR_WRITE, wfd, b"two ")
        ctx.trap(NR_WRITE, wfd, b"three")
        assert ctx.trap(NR_READ, rfd, 4) == b"one "
        assert ctx.trap(NR_READ, rfd, 100) == b"two three"
        return 0

    assert run_entry(main) == 0


def test_pipe_eof_after_writers_close(run_entry):
    def main(ctx):
        rfd, wfd = ctx.trap(NR_PIPE)
        ctx.trap(NR_WRITE, wfd, b"tail")
        ctx.trap(NR_CLOSE, wfd)
        assert ctx.trap(NR_READ, rfd, 100) == b"tail"
        assert ctx.trap(NR_READ, rfd, 100) == b""  # EOF, not block
        return 0

    assert run_entry(main) == 0


def test_write_with_no_readers_epipe_and_sigpipe(run_entry):
    def main(ctx):
        seen = []
        ctx.trap(NR_SIGVEC, sig.SIGPIPE, lambda s: seen.append(s), 0)
        rfd, wfd = ctx.trap(NR_PIPE)
        ctx.trap(NR_CLOSE, rfd)
        try:
            ctx.trap(NR_WRITE, wfd, b"doomed")
        except SyscallError as err:
            assert err.errno == EPIPE
        else:
            raise AssertionError("expected EPIPE")
        assert seen == [sig.SIGPIPE]
        return 0

    assert run_entry(main) == 0


def test_pipe_blocks_until_child_writes(run_entry):
    def main(ctx):
        rfd, wfd = ctx.trap(NR_PIPE)

        def child(cctx):
            cctx.trap(NR_CLOSE, rfd)
            cctx.trap(NR_WRITE, wfd, b"from child")
            return 0

        ctx.trap(NR_FORK, child)
        ctx.trap(NR_CLOSE, wfd)
        data = ctx.trap(NR_READ, rfd, 100)  # blocks until the child runs
        assert data == b"from child"
        assert ctx.trap(NR_READ, rfd, 100) == b""  # child's end closed
        ctx.trap(NR_WAIT)
        return 0

    assert run_entry(main) == 0


def test_large_transfer_through_bounded_buffer(run_entry):
    payload = bytes(range(256)) * 64  # 16K, 4x the pipe buffer

    def main(ctx):
        rfd, wfd = ctx.trap(NR_PIPE)

        def child(cctx):
            cctx.trap(NR_CLOSE, rfd)
            cctx.trap(NR_WRITE, wfd, payload)  # must block repeatedly
            cctx.trap(NR_CLOSE, wfd)
            return 0

        ctx.trap(NR_FORK, child)
        ctx.trap(NR_CLOSE, wfd)
        received = b""
        while True:
            chunk = ctx.trap(NR_READ, rfd, 1000)
            if not chunk:
                break
            received += chunk
        assert received == payload
        ctx.trap(NR_WAIT)
        return 0

    assert run_entry(main) == 0


def test_pipe_capacity_constant():
    assert PIPE_BUF == 4096


def test_pipe_fstat_is_fifo(run_entry):
    from repro.kernel import stat as st

    NR_FSTAT = number_of("fstat")

    def main(ctx):
        rfd, wfd = ctx.trap(NR_PIPE)
        record = ctx.trap(NR_FSTAT, rfd)
        assert st.S_ISFIFO(record.st_mode)
        return 0

    assert run_entry(main) == 0


def test_dup_keeps_pipe_alive(run_entry):
    def main(ctx):
        NR_DUP = number_of("dup")
        rfd, wfd = ctx.trap(NR_PIPE)
        wfd2 = ctx.trap(NR_DUP, wfd)
        ctx.trap(NR_CLOSE, wfd)
        ctx.trap(NR_WRITE, wfd2, b"still open")
        ctx.trap(NR_CLOSE, wfd2)
        assert ctx.trap(NR_READ, rfd, 100) == b"still open"
        assert ctx.trap(NR_READ, rfd, 100) == b""
        return 0

    assert run_entry(main) == 0
