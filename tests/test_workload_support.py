"""Tests for workload setup/clean helpers and world bootstrap."""

import pytest

from repro.kernel.proc import WEXITSTATUS
from repro.workloads import (
    afs_bench,
    boot_world,
    format_dissertation,
    make_programs,
)


def test_boot_world_installs_binaries(world):
    for path in ("/bin/sh", "/bin/cat", "/bin/make", "/bin/cc",
                 "/usr/lib/cpp", "/usr/lib/cc1", "/bin/as", "/bin/ld",
                 "/usr/bin/scribe", "/bin/agentrun", "/bin/sort",
                 "/bin/tee"):
        node = world.lookup_host(path)
        assert node.is_reg() and node.mode & 0o111, path


def test_boot_world_support_files(world):
    assert world.read_file("/usr/lib/libc.o").startswith(b"!object")
    assert b"report" in world.read_file("/usr/lib/scribe/report.fmt")
    assert b"jones93" in world.read_file("/usr/lib/scribe/bibliography.bib")
    assert b"#define" in world.read_file("/usr/include/stdio.h")


def test_dissertation_setup_paths(world):
    path = format_dissertation.setup(world)
    assert path == format_dissertation.MANUSCRIPT
    top = world.read_file(path).decode()
    assert top.count("@include") == len(format_dissertation.CHAPTERS)
    for number in range(1, len(format_dissertation.CHAPTERS) + 1):
        assert world.lookup_host(
            "/home/mbj/diss/chapter%d.mss" % number
        ).is_reg()


def test_dissertation_setup_deterministic(world):
    format_dissertation.setup(world)
    first = world.read_file("/home/mbj/diss/chapter1.mss")
    other = boot_world()
    format_dissertation.setup(other)
    assert other.read_file("/home/mbj/diss/chapter1.mss") == first


def test_make_clean_allows_rebuild(world):
    make_programs.setup(world)
    assert WEXITSTATUS(make_programs.run(world)) == 0
    world.console.take_output()
    make_programs.clean(world)
    src = world.lookup_host(make_programs.SRC_DIR)
    assert not src.contains("prog1")
    assert WEXITSTATUS(make_programs.run(world)) == 0
    assert "cc -o prog1" in world.console.take_output().decode()


def test_afs_clean_allows_rerun(world):
    afs_bench.setup(world)
    assert WEXITSTATUS(afs_bench.run(world)) == 0
    afs_bench.clean(world)
    assert not world.lookup_host(afs_bench.BASE).contains("tree")
    assert WEXITSTATUS(afs_bench.run(world)) == 0


def test_afs_setup_writes_script(world):
    script_path = afs_bench.setup(world)
    script = world.read_file(script_path).decode()
    for phase_marker in ("mkdir", "cp ", "ls -l", "grep", "wc", "cc -o"):
        assert phase_marker in script
