"""Tests for layer 1: the symbolic system call layer."""

import pytest

from repro.agents.time_symbolic import TimeSymbolic
from repro.kernel.proc import WEXITSTATUS
from repro.kernel.sysent import bsd_numbers, number_of
from repro.toolkit import run_under_agent
from repro.toolkit.symbolic import SymbolicSyscall
from repro.workloads import boot_world


def test_default_agent_is_fully_transparent_for_shell_session(world):
    """The unmodified-applications goal: same behaviour with and without."""
    script = (
        "mkdir /tmp/w; echo data > /tmp/w/f; cat /tmp/w/f; "
        "ln /tmp/w/f /tmp/w/g; ls /tmp/w; rm /tmp/w/f /tmp/w/g; rmdir /tmp/w"
    )
    bare = boot_world()
    bare_status = bare.run("/bin/sh", ["sh", "-c", script])
    bare_out = bare.console.take_output()

    agented = boot_world()
    status = run_under_agent(
        agented, TimeSymbolic(), "/bin/sh", ["sh", "-c", script]
    )
    agent_out = agented.console.take_output()
    assert WEXITSTATUS(status) == WEXITSTATUS(bare_status)
    assert agent_out == bare_out


def test_every_bsd_call_has_a_sys_method():
    """Completeness: the symbolic layer covers the whole interface."""
    from repro.kernel.sysent import SYSCALLS

    agent = TimeSymbolic()
    for number in bsd_numbers():
        name = SYSCALLS[number].name
        assert hasattr(agent, "sys_" + name), name


def test_registers_whole_interface_on_init(world):
    agent = TimeSymbolic()

    def main(ctx):
        agent.attach(ctx)
        vector = ctx.proc.emulation_vector
        for number in bsd_numbers():
            assert number in vector
        assert ctx.proc.signal_redirect is not None
        return 0

    assert WEXITSTATUS(world.run_entry(main)) == 0


def test_single_method_override(world):
    class FixedPid(SymbolicSyscall):
        def sys_getpid(self):
            return 12345

    def main(ctx):
        FixedPid().attach(ctx)
        assert ctx.trap(number_of("getpid")) == 12345
        # Everything else still behaves.
        assert ctx.trap(number_of("getuid")) == 0
        return 0

    assert WEXITSTATUS(world.run_entry(main)) == 0


def test_unknown_syscall_hook(world):
    hits = []

    class Watcher(SymbolicSyscall):
        def unknown_syscall(self, number, args, regs):
            hits.append(number)
            return self.syscall_down_numeric(number, args)

    def main(ctx):
        agent = Watcher()
        agent.attach(ctx)
        # Redirect a Mach trap that has no sys_* method.
        agent.register_interest(number_of("task_get_descriptors"))
        ctx.trap(number_of("task_get_descriptors"))
        return 0

    world.run_entry(main)
    assert hits == [number_of("task_get_descriptors")]


def test_init_child_called_in_forked_children(world):
    children = []

    class ChildWatcher(SymbolicSyscall):
        def init_child(self):
            children.append(self.ctx.proc.pid)

    status = run_under_agent(
        world, ChildWatcher(), "/bin/sh",
        ["sh", "-c", "echo a; echo b | cat"],
    )
    assert WEXITSTATUS(status) == 0
    assert len(children) >= 3  # echo, echo, cat


def test_agent_survives_exec_chain(world):
    """The agent must still be interposed after several execs."""

    class Counter(SymbolicSyscall):
        def __init__(self):
            super().__init__()
            self.execs = 0

        def sys_execve(self, path, argv=None, envp=None):
            self.execs += 1
            return super().sys_execve(path, argv, envp)

    agent = Counter()
    status = run_under_agent(
        world, agent, "/bin/sh",
        ["sh", "-c", "sh -c 'sh -c \"echo deep\"'"],
    )
    assert WEXITSTATUS(status) == 0
    assert "deep" in world.console.take_output().decode()
    assert agent.execs >= 3


def test_symbolic_agent_on_make_workload(world):
    from repro.workloads import make_programs

    make_programs.setup(world)
    status = run_under_agent(
        world, TimeSymbolic(), "/bin/sh",
        ["sh", "-c", "cd %s; make" % make_programs.SRC_DIR],
    )
    assert WEXITSTATUS(status) == 0
    for i in range(1, 9):
        assert world.read_file(
            "%s/prog%d" % (make_programs.SRC_DIR, i)
        ).startswith(b"!executable")
