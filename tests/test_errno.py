"""Unit tests for the errno module."""

import pytest

from repro.kernel import errno as E


def test_values_match_43bsd():
    assert E.EPERM == 1
    assert E.ENOENT == 2
    assert E.EBADF == 9
    assert E.EACCES == 13
    assert E.EEXIST == 17
    assert E.ENOTDIR == 20
    assert E.EISDIR == 21
    assert E.EINVAL == 22
    assert E.EPIPE == 32
    assert E.EWOULDBLOCK == 35
    assert E.ELOOP == 62
    assert E.ENOSYS == 78


def test_eagain_aliases_ewouldblock():
    assert E.EAGAIN == E.EWOULDBLOCK


def test_errno_name_known():
    assert E.errno_name(E.ENOENT) == "ENOENT"
    assert E.errno_name(E.EPERM) == "EPERM"
    assert E.errno_name(E.ENOTEMPTY) == "ENOTEMPTY"


def test_errno_name_unknown():
    assert E.errno_name(9999) == "E?9999?"


def test_syscall_error_carries_errno():
    err = E.SyscallError(E.EACCES)
    assert err.errno == E.EACCES
    assert "EACCES" in str(err)


def test_syscall_error_custom_message():
    err = E.SyscallError(E.ENOENT, "/nope")
    assert err.errno == E.ENOENT
    assert "/nope" in str(err)


def test_syscall_error_repr():
    assert "ENOENT" in repr(E.SyscallError(E.ENOENT))


def test_syscall_error_is_exception():
    with pytest.raises(E.SyscallError):
        raise E.SyscallError(E.EIO)
