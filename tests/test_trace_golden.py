"""Golden-format test for the trace agent, plus small robustness checks."""

import pytest

from repro.agents.trace import TraceSymbolicSyscall
from repro.kernel.errno import ENOEXEC, SyscallError
from repro.kernel.proc import WEXITSTATUS
from repro.kernel.sysent import number_of
from repro.programs.libc import O_CREAT, O_RDONLY, O_WRONLY, Sys


def test_trace_log_exact_format(world):
    """The trace format is part of the tool's interface: pin it down."""
    world.write_file("/tmp/fixed", "0123456789")
    agent = TraceSymbolicSyscall("/tmp/golden.trace")

    def main(ctx):
        agent.attach(ctx)
        sys = Sys(ctx)
        fd = sys.open("/tmp/fixed", O_RDONLY)
        sys.read(fd, 4)
        sys.close(fd)
        try:
            sys.open("/tmp/absent", O_RDONLY)
        except SyscallError:
            pass
        return 0

    world.run_entry(main)
    log = world.read_file("/tmp/golden.trace").decode()
    pid = log.split("]")[0].lstrip("[")
    expected = (
        "[{p}] open('/tmp/fixed', O_RDONLY, 666) ...\n"
        "[{p}] ... open -> 3\n"
        "[{p}] read(3, 4) ...\n"
        "[{p}] ... read -> [4 bytes]\n"
        "[{p}] close(3) ...\n"
        "[{p}] ... close -> 0\n"
        "[{p}] open('/tmp/absent', O_RDONLY, 666) ...\n"
        "[{p}] ... open -> ENOENT\n"
        "[{p}] exit(0) ...\n"
    ).format(p=pid)
    assert log == expected


def test_watchdog_surfaces_deadlocks(kernel):
    """A process sleeping forever is reported, not hung."""
    kernel._watchdog_seconds = 0.3

    def main(ctx):
        rfd, wfd = ctx.trap(number_of("pipe"))
        ctx.trap(number_of("read"), rfd, 1)  # nobody will ever write
        return 0

    from repro.kernel.kernel import ProgramCrash

    with pytest.raises(ProgramCrash) as exc:
        kernel.run_entry(main)
    assert "watchdog" in str(exc.value)


def test_interpreter_of_interpreter_rejected(world):
    """One level of #! indirection is supported, as in 4.3BSD; a script
    whose interpreter is itself a script fails with ENOEXEC."""
    world.write_file("/tmp/level1.sh", "#!/bin/sh\necho level1\n", mode=0o755)
    world.lookup_host("/tmp/level1.sh").mode |= 0o111
    world.write_file("/tmp/level2.sh", "#!/tmp/level1.sh\n", mode=0o755)
    world.lookup_host("/tmp/level2.sh").mode |= 0o111

    def main(ctx):
        try:
            ctx.trap(number_of("execve"), "/tmp/level2.sh", ["level2"], {})
        except SyscallError as err:
            return 10 if err.errno == ENOEXEC else 1
        return 1

    assert WEXITSTATUS(world.run_entry(main)) == 10


def test_trace_agent_reuse_rejected_gracefully(world):
    """One agent instance can serve one client tree per attach; a second
    attach in a fresh world still works (fresh log)."""
    agent = TraceSymbolicSyscall("/tmp/reuse.trace")
    from repro.toolkit import run_under_agent

    status = run_under_agent(world, agent, "/bin/true", ["true"])
    assert WEXITSTATUS(status) == 0
    first = world.read_file("/tmp/reuse.trace")
    status = run_under_agent(world, agent, "/bin/true", ["true"])
    assert WEXITSTATUS(status) == 0
    second = world.read_file("/tmp/reuse.trace")
    assert b"exit(0)" in second
    assert len(second) >= len(first)


def test_trace_overrides_every_bsd_call():
    """Maintenance guard: adding a system call without a trace printer
    would silently fall back to unformatted tracing."""
    from repro.kernel.sysent import SYSCALLS, bsd_numbers
    from repro.toolkit.symbolic import SymbolicSyscall

    missing = []
    for number in bsd_numbers():
        name = "sys_" + SYSCALLS[number].name
        if getattr(TraceSymbolicSyscall, name) is getattr(
            SymbolicSyscall, name
        ):
            missing.append(name)
    assert not missing, "trace has no printer for: %s" % missing
