"""Tests for named pipes (FIFOs) created with mknod."""

import pytest

from repro.kernel import stat as st
from repro.kernel.proc import WEXITSTATUS
from repro.kernel.sysent import number_of

NR = {n: number_of(n) for n in (
    "mknod", "open", "read", "write", "close", "fork", "wait", "stat",
    "fstat", "unlink",
)}

O_RDONLY = 0
O_WRONLY = 1


def test_fifo_created_with_mknod(run_entry):
    def main(ctx):
        ctx.trap(NR["mknod"], "/tmp/fifo", st.S_IFIFO | 0o644, 0)
        record = ctx.trap(NR["stat"], "/tmp/fifo")
        assert st.S_ISFIFO(record.st_mode)
        return 0

    assert run_entry(main) == 0


def test_fifo_carries_data_between_processes(run_entry):
    def main(ctx):
        ctx.trap(NR["mknod"], "/tmp/chan", st.S_IFIFO | 0o666, 0)

        def producer(cctx):
            fd = cctx.trap(NR["open"], "/tmp/chan", O_WRONLY, 0)
            cctx.trap(NR["write"], fd, b"over the named pipe")
            cctx.trap(NR["close"], fd)
            return 0

        ctx.trap(NR["fork"], producer)
        fd = ctx.trap(NR["open"], "/tmp/chan", O_RDONLY, 0)
        data = ctx.trap(NR["read"], fd, 100)
        assert data == b"over the named pipe"
        ctx.trap(NR["close"], fd)
        ctx.trap(NR["wait"])
        return 0

    assert run_entry(main) == 0


def test_fifo_fstat_reports_fifo(run_entry):
    def main(ctx):
        ctx.trap(NR["mknod"], "/tmp/f2", st.S_IFIFO | 0o666, 0)
        fd = ctx.trap(NR["open"], "/tmp/f2", 2, 0)  # O_RDWR keeps both ends
        record = ctx.trap(NR["fstat"], fd)
        assert st.S_ISFIFO(record.st_mode)
        return 0

    assert run_entry(main) == 0


def test_fifo_eof_when_writers_gone(run_entry):
    def main(ctx):
        ctx.trap(NR["mknod"], "/tmp/f3", st.S_IFIFO | 0o666, 0)

        def writer(cctx):
            fd = cctx.trap(NR["open"], "/tmp/f3", O_WRONLY, 0)
            cctx.trap(NR["write"], fd, b"bye")
            cctx.trap(NR["close"], fd)
            return 0

        ctx.trap(NR["fork"], writer)
        fd = ctx.trap(NR["open"], "/tmp/f3", O_RDONLY, 0)
        assert ctx.trap(NR["read"], fd, 10) == b"bye"
        assert ctx.trap(NR["read"], fd, 10) == b""  # EOF
        ctx.trap(NR["wait"])
        return 0

    assert run_entry(main) == 0


def test_fifo_buffer_survives_unlink_while_open(run_entry):
    def main(ctx):
        ctx.trap(NR["mknod"], "/tmp/f4", st.S_IFIFO | 0o666, 0)
        fd = ctx.trap(NR["open"], "/tmp/f4", 2, 0)
        ctx.trap(NR["write"], fd, b"still here")
        ctx.trap(NR["unlink"], "/tmp/f4")
        assert ctx.trap(NR["read"], fd, 100) == b"still here"
        return 0

    assert run_entry(main) == 0


def test_fifo_open_blocks_until_peer(run_entry):
    """open(O_WRONLY) on a FIFO waits for a reader, as in 4.3BSD."""
    order = []

    def main(ctx):
        ctx.trap(NR["mknod"], "/tmp/f5", st.S_IFIFO | 0o666, 0)

        def writer(cctx):
            fd = cctx.trap(NR["open"], "/tmp/f5", O_WRONLY, 0)
            order.append("writer-open")
            cctx.trap(NR["write"], fd, b"x")
            cctx.trap(NR["close"], fd)
            return 0

        ctx.trap(NR["fork"], writer)
        order.append("before-reader-open")
        fd = ctx.trap(NR["open"], "/tmp/f5", O_RDONLY, 0)
        assert ctx.trap(NR["read"], fd, 1) == b"x"
        ctx.trap(NR["wait"])
        return 0

    assert run_entry(main) == 0
    # The writer's open could not have completed before the reader's.
    assert order.index("before-reader-open") == 0
