"""Tests for the separate-address-space agent placement."""

import threading
import time

import pytest

from repro.agents.monitor import MonitorAgent
from repro.agents.timex import TimexSymbolicSyscall
from repro.agents.trace import TraceSymbolicSyscall
from repro.agents.union_dirs import UnionAgent
from repro.kernel.errno import EIO, SyscallError
from repro.kernel.proc import WEXITSTATUS
from repro.kernel.sysent import number_of
from repro.toolkit import run_under_agent
from repro.toolkit.boilerplate import Agent
from repro.toolkit.remote import SeparateSpaceAgent, _marshal
from repro.workloads import boot_world


def test_marshal_copies_plain_data():
    source = {"key": [1, "two", b"three"]}
    copied = _marshal(source)
    assert copied == source
    assert copied is not source
    assert copied["key"] is not source["key"]


def test_marshal_passes_callables_by_reference():
    fn = lambda: None  # noqa: E731
    assert _marshal((fn, 1))[0] is fn


def test_marshal_copies_stat_records():
    from repro.kernel.stat import Stat

    record = Stat(st_ino=5, st_size=10)
    copied = _marshal(record)
    assert copied == record
    copied.st_size = 99
    assert record.st_size == 10


def test_timex_identical_in_either_placement(world):
    remote = SeparateSpaceAgent(TimexSymbolicSyscall(offset=7777))
    status = run_under_agent(world, remote, "/bin/date", ["date"])
    assert WEXITSTATUS(status) == 0
    shown = int(world.console.take_output().decode().split(".")[0])
    assert shown - world.clock.now().tv_sec >= 7770
    assert remote.ipc_round_trips > 0
    remote.shutdown()


def test_trace_across_fork_and_exec_remotely(world):
    inner = TraceSymbolicSyscall("/tmp/remote.trace")
    remote = SeparateSpaceAgent(inner)
    status = run_under_agent(
        world, remote, "/bin/sh", ["sh", "-c", "echo a | cat; echo done"]
    )
    assert WEXITSTATUS(status) == 0
    out = world.console.take_output().decode()
    assert "a" in out and "done" in out
    log = world.read_file("/tmp/remote.trace").decode()
    assert "execve(" in log
    assert "(child of fork starts)" in log
    remote.shutdown()


def test_remote_output_matches_local(world):
    script = "mkdir /tmp/rw; echo x > /tmp/rw/f; ls /tmp/rw; cat /tmp/rw/f"
    local_world = boot_world()
    run_under_agent(
        local_world, TimexSymbolicSyscall(offset=5), "/bin/sh",
        ["sh", "-c", script],
    )
    expected = local_world.console.take_output()

    remote = SeparateSpaceAgent(TimexSymbolicSyscall(offset=5))
    status = run_under_agent(world, remote, "/bin/sh", ["sh", "-c", script])
    assert WEXITSTATUS(status) == 0
    assert world.console.take_output() == expected
    remote.shutdown()


def test_union_semantics_preserved_remotely(world):
    world.mkdir_p("/m1")
    world.mkdir_p("/m2")
    world.write_file("/m1/a", "A")
    world.write_file("/m2/b", "B")
    world.mkdir_p("/u")
    inner = UnionAgent()
    inner.pset.add_union("/u", ["/m1", "/m2"])
    remote = SeparateSpaceAgent(inner)
    status = run_under_agent(
        world, remote, "/bin/sh", ["sh", "-c", "ls /u; cat /u/b"]
    )
    assert WEXITSTATUS(status) == 0
    out = world.console.take_output().decode()
    assert out.split() == ["a", "b", "B"]
    remote.shutdown()


def test_concurrent_clients_not_serialized(world):
    """A client blocked inside the agent must not stall other clients:
    a pipe producer and consumer both run interposed."""
    remote = SeparateSpaceAgent(MonitorAgent("/tmp/remote.mon"))
    status = run_under_agent(
        world, remote, "/bin/sh", ["sh", "-c", "echo through | cat | wc"]
    )
    assert WEXITSTATUS(status) == 0
    assert world.console.take_output().decode().split()[:2] == ["1", "1"]
    remote.shutdown()


def test_signals_cross_the_boundary(world):
    from repro.kernel import signals as sig
    from repro.kernel.sysent import number_of

    seen = []

    class SignalWatcher(TimexSymbolicSyscall):
        def signal_handler(self, signum, code, context):
            seen.append(signum)
            super().signal_handler(signum, code, context)

    remote = SeparateSpaceAgent(SignalWatcher())
    caught = []

    def main(ctx):
        remote.attach(ctx)
        ctx.trap(number_of("sigvec"), sig.SIGUSR1, lambda s: caught.append(s), 0)
        ctx.trap(number_of("kill"), ctx.proc.pid, sig.SIGUSR1)
        return 0

    assert WEXITSTATUS(world.run_entry(main)) == 0
    assert seen == [sig.SIGUSR1]  # agent upcall ran (in the agent task)
    assert caught == [sig.SIGUSR1]  # and was forwarded to the client
    remote.shutdown()


# -- IPC failure containment (the watchdog and liveness paths) ---------------


class _TimeOnly(Agent):
    """Interposes on gettimeofday alone, delegating it downward — exit
    stays un-interposed, so a dead agent task cannot also take the
    client's exit path down with it."""

    def init(self, agentargv):
        """Register interest in gettimeofday(2) only."""
        self.register_interest_many([number_of("gettimeofday")])


def test_dead_dispatcher_surfaces_as_a_clean_error(world):
    # Regression: the client's reply wait used to be an unbounded
    # queue.get() — a dead agent task hung the client forever.  Now a
    # killed dispatcher surfaces as SyscallError(EIO) well inside the
    # watchdog, and the machine stays usable.
    remote = SeparateSpaceAgent(_TimeOnly())

    def main(ctx):
        remote.attach(ctx)
        assert remote.shutdown()  # the agent task dies mid-session
        start = time.monotonic()
        with pytest.raises(SyscallError) as err:
            ctx.trap(number_of("gettimeofday"))
        assert err.value.errno == EIO
        assert "dispatcher dead" in str(err.value)
        assert time.monotonic() - start < 5.0  # not the 60s watchdog
        return 0

    assert WEXITSTATUS(world.run_entry(main)) == 0
    assert remote.stalls == 1
    # The machine itself is fine: a fresh program still runs.
    assert WEXITSTATUS(world.run("/bin/echo", ["echo", "alive"])) == 0
    assert b"alive" in world.console.take_output()


def test_watchdog_converts_a_wedged_agent_into_a_clean_error(world):
    class Wedged(_TimeOnly):
        def handle_syscall(self, number, args):
            time.sleep(1.0)  # alive but stuck outside the kernel
            return super().handle_syscall(number, args)

    remote = SeparateSpaceAgent(Wedged(), watchdog=0.1)

    def main(ctx):
        remote.attach(ctx)
        with pytest.raises(SyscallError) as err:
            ctx.trap(number_of("gettimeofday"))
        assert err.value.errno == EIO
        assert "watchdog" in str(err.value)
        return 0

    assert WEXITSTATUS(world.run_entry(main)) == 0
    assert remote.stalls == 1
    remote.shutdown()


def test_shutdown_is_idempotent_and_reports_success():
    remote = SeparateSpaceAgent(TimexSymbolicSyscall())
    assert remote.shutdown() is True
    assert remote.shutdown() is True
    assert remote.stalls == 0


def test_shutdown_reports_a_stuck_dispatcher():
    # Regression: shutdown used to join and silently return whatever
    # happened.  A dispatcher that outlives the join must be reported.
    remote = SeparateSpaceAgent(TimexSymbolicSyscall())
    assert remote.shutdown()
    wedged = threading.Thread(target=time.sleep, args=(30,), daemon=True)
    wedged.start()
    remote._dispatcher = wedged  # stand-in for a wedged accept loop
    assert remote.shutdown(timeout=0.1) is False
    assert remote.stalls == 1


def test_ipc_stalls_flow_through_the_obs_bus():
    kernel = boot_world(obs="metrics,trace")
    remote = SeparateSpaceAgent(_TimeOnly())
    kinds = []
    kernel.obs.bus.subscribe(lambda event: kinds.append(event.kind))

    def main(ctx):
        remote.attach(ctx)
        remote.shutdown()
        with pytest.raises(SyscallError):
            ctx.trap(number_of("gettimeofday"))
        return 0

    assert WEXITSTATUS(kernel.run_entry(main)) == 0
    assert "remote.stall" in kinds
    counters = kernel.obs.metrics.snapshot()["counters"]
    assert any("remote.stall" in str(key) for key in counters)
