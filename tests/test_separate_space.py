"""Tests for the separate-address-space agent placement."""

import pytest

from repro.agents.monitor import MonitorAgent
from repro.agents.timex import TimexSymbolicSyscall
from repro.agents.trace import TraceSymbolicSyscall
from repro.agents.union_dirs import UnionAgent
from repro.kernel.proc import WEXITSTATUS
from repro.toolkit import run_under_agent
from repro.toolkit.remote import SeparateSpaceAgent, _marshal
from repro.workloads import boot_world


def test_marshal_copies_plain_data():
    source = {"key": [1, "two", b"three"]}
    copied = _marshal(source)
    assert copied == source
    assert copied is not source
    assert copied["key"] is not source["key"]


def test_marshal_passes_callables_by_reference():
    fn = lambda: None  # noqa: E731
    assert _marshal((fn, 1))[0] is fn


def test_marshal_copies_stat_records():
    from repro.kernel.stat import Stat

    record = Stat(st_ino=5, st_size=10)
    copied = _marshal(record)
    assert copied == record
    copied.st_size = 99
    assert record.st_size == 10


def test_timex_identical_in_either_placement(world):
    remote = SeparateSpaceAgent(TimexSymbolicSyscall(offset=7777))
    status = run_under_agent(world, remote, "/bin/date", ["date"])
    assert WEXITSTATUS(status) == 0
    shown = int(world.console.take_output().decode().split(".")[0])
    assert shown - world.clock.now().tv_sec >= 7770
    assert remote.ipc_round_trips > 0
    remote.shutdown()


def test_trace_across_fork_and_exec_remotely(world):
    inner = TraceSymbolicSyscall("/tmp/remote.trace")
    remote = SeparateSpaceAgent(inner)
    status = run_under_agent(
        world, remote, "/bin/sh", ["sh", "-c", "echo a | cat; echo done"]
    )
    assert WEXITSTATUS(status) == 0
    out = world.console.take_output().decode()
    assert "a" in out and "done" in out
    log = world.read_file("/tmp/remote.trace").decode()
    assert "execve(" in log
    assert "(child of fork starts)" in log
    remote.shutdown()


def test_remote_output_matches_local(world):
    script = "mkdir /tmp/rw; echo x > /tmp/rw/f; ls /tmp/rw; cat /tmp/rw/f"
    local_world = boot_world()
    run_under_agent(
        local_world, TimexSymbolicSyscall(offset=5), "/bin/sh",
        ["sh", "-c", script],
    )
    expected = local_world.console.take_output()

    remote = SeparateSpaceAgent(TimexSymbolicSyscall(offset=5))
    status = run_under_agent(world, remote, "/bin/sh", ["sh", "-c", script])
    assert WEXITSTATUS(status) == 0
    assert world.console.take_output() == expected
    remote.shutdown()


def test_union_semantics_preserved_remotely(world):
    world.mkdir_p("/m1")
    world.mkdir_p("/m2")
    world.write_file("/m1/a", "A")
    world.write_file("/m2/b", "B")
    world.mkdir_p("/u")
    inner = UnionAgent()
    inner.pset.add_union("/u", ["/m1", "/m2"])
    remote = SeparateSpaceAgent(inner)
    status = run_under_agent(
        world, remote, "/bin/sh", ["sh", "-c", "ls /u; cat /u/b"]
    )
    assert WEXITSTATUS(status) == 0
    out = world.console.take_output().decode()
    assert out.split() == ["a", "b", "B"]
    remote.shutdown()


def test_concurrent_clients_not_serialized(world):
    """A client blocked inside the agent must not stall other clients:
    a pipe producer and consumer both run interposed."""
    remote = SeparateSpaceAgent(MonitorAgent("/tmp/remote.mon"))
    status = run_under_agent(
        world, remote, "/bin/sh", ["sh", "-c", "echo through | cat | wc"]
    )
    assert WEXITSTATUS(status) == 0
    assert world.console.take_output().decode().split()[:2] == ["1", "1"]
    remote.shutdown()


def test_signals_cross_the_boundary(world):
    from repro.kernel import signals as sig
    from repro.kernel.sysent import number_of

    seen = []

    class SignalWatcher(TimexSymbolicSyscall):
        def signal_handler(self, signum, code, context):
            seen.append(signum)
            super().signal_handler(signum, code, context)

    remote = SeparateSpaceAgent(SignalWatcher())
    caught = []

    def main(ctx):
        remote.attach(ctx)
        ctx.trap(number_of("sigvec"), sig.SIGUSR1, lambda s: caught.append(s), 0)
        ctx.trap(number_of("kill"), ctx.proc.pid, sig.SIGUSR1)
        return 0

    assert WEXITSTATUS(world.run_entry(main)) == 0
    assert seen == [sig.SIGUSR1]  # agent upcall ran (in the agent task)
    assert caught == [sig.SIGUSR1]  # and was forwarded to the client
    remote.shutdown()
