"""Tests for the Chrome trace export, its validator, and kdump stability.

Satellite guarantees of the span-tracing PR: the exported trace-event
JSON obeys what Perfetto depends on (required keys per phase, monotone
per-track timestamps, matched begin/end, paired flow ids); the
validator rejects each class of malformed document; and ``kdump``
output is *byte-identical* to the historic format whenever span tracing
never stamped a record — golden strings pin that down.
"""

import pytest

from repro.kernel.proc import WEXITSTATUS
from repro.obs import events as ev
from repro.obs.export import (chrome_trace, event_to_dict, format_record,
                              kdump_lines, validate_chrome_trace)
from repro.workloads import boot_world


@pytest.fixture(scope="module")
def pipeline_trace():
    """One traced 3-stage pipeline, shared by the export tests."""
    world = boot_world(obs="spans")
    world.mkdir_p("/data")
    world.write_file("/data/corpus", b"sort me please, i am a corpus\n" * 1500)
    status = world.run("/bin/sh", ["sh", "-c", "cat /data/corpus | sort | wc"])
    assert WEXITSTATUS(status) == 0
    world.obs.spans.close_open()
    return world.obs.spans, chrome_trace(world.obs.spans, workload="pipeline")


# -- the real export passes the spec -------------------------------------


def test_pipeline_export_is_spec_valid(pipeline_trace):
    assembler, doc = pipeline_trace
    summary = validate_chrome_trace(doc)
    assert summary["X"] == sum(1 for s in assembler.finished()
                               if s.end_usec is not None)
    assert summary["flows"] == len(assembler.all_edges())
    assert summary["flows"] > 0


def test_one_track_and_metadata_per_pid(pipeline_trace):
    assembler, doc = pipeline_trace
    pids = {s.pid for s in assembler.finished()}
    slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert {e["pid"] for e in slices} == pids
    for entry in slices:
        assert entry["tid"] == entry["pid"]  # one track per process
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert {e["pid"] for e in meta} == pids
    for entry in meta:
        assert entry["name"] == "process_name"
        assert entry["args"]["name"].startswith("pid %d (" % entry["pid"])


def test_flow_arrows_cross_processes(pipeline_trace):
    assembler, doc = pipeline_trace
    flows = {}
    for entry in doc["traceEvents"]:
        if entry["ph"] in ("s", "f"):
            flows.setdefault(entry["id"], {})[entry["ph"]] = entry
    assert len(flows) == len(assembler.all_edges())
    cats = set()
    for pair in flows.values():
        assert set(pair) == {"s", "f"}
        assert pair["f"]["bp"] == "e"
        assert pair["s"]["ts"] <= pair["f"]["ts"]
        cats.add(pair["s"]["cat"])
    # fork and pipe causality both render as arrows, between processes.
    assert {"edge.fork", "edge.pipe"} <= cats
    assert any(pair["s"]["pid"] != pair["f"]["pid"]
               for pair in flows.values())


def test_timestamps_normalised_to_trace_start(pipeline_trace):
    _, doc = pipeline_trace
    timed = [e for e in doc["traceEvents"] if "ts" in e]
    assert min(e["ts"] for e in timed) == 0
    assert doc["otherData"]["clock"] == "virtual-usec"
    assert doc["otherData"]["workload"] == "pipeline"


# -- validator negative cases --------------------------------------------


def _minimal():
    return {"traceEvents": [
        {"name": "a", "ph": "X", "ts": 0, "dur": 5, "pid": 1, "tid": 1},
        {"name": "b", "ph": "X", "ts": 2, "dur": 1, "pid": 1, "tid": 1},
    ]}


def test_validator_accepts_minimal_doc():
    assert validate_chrome_trace(_minimal())["X"] == 2


@pytest.mark.parametrize("mangle, message", [
    (lambda d: d.pop("traceEvents"), "traceEvents"),
    (lambda d: d.__setitem__("traceEvents", "nope"), "must be a list"),
    (lambda d: d["traceEvents"][0].pop("ph"), "not a dict with a ph"),
    (lambda d: d["traceEvents"][0].pop("ts"), "missing ts"),
    (lambda d: d["traceEvents"][0].pop("pid"), "missing pid"),
    (lambda d: d["traceEvents"][0].pop("name"), "missing name"),
    (lambda d: d["traceEvents"][1].__setitem__("ts", -1), "goes backward"),
    (lambda d: d["traceEvents"][0].pop("dur"), "dur >= 0"),
    (lambda d: d["traceEvents"][0].__setitem__("ph", "Z"), "unknown phase"),
])
def test_validator_rejects_malformed(mangle, message):
    doc = _minimal()
    mangle(doc)
    with pytest.raises(ValueError, match=message):
        validate_chrome_trace(doc)


def test_validator_rejects_unmatched_begin_end():
    doc = {"traceEvents": [
        {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
    ]}
    with pytest.raises(ValueError, match="unclosed B"):
        validate_chrome_trace(doc)
    doc = {"traceEvents": [
        {"name": "a", "ph": "E", "ts": 0, "pid": 1, "tid": 1},
    ]}
    with pytest.raises(ValueError, match="E without B"):
        validate_chrome_trace(doc)


def test_validator_rejects_unpaired_flow_ids():
    doc = {"traceEvents": [
        {"name": "x", "ph": "s", "id": 1, "ts": 0, "pid": 1, "tid": 1},
        {"name": "x", "ph": "f", "id": 2, "ts": 1, "pid": 2, "tid": 2},
    ]}
    with pytest.raises(ValueError, match="unpaired flow ids"):
        validate_chrome_trace(doc)


def test_validator_rejects_metadata_without_pid():
    doc = {"traceEvents": [{"ph": "M", "name": "process_name"}]}
    with pytest.raises(ValueError, match="metadata needs name"):
        validate_chrome_trace(doc)


# -- kdump golden: byte-identical when spans never stamped ----------------


def test_format_record_golden_unstamped():
    event = ev.Event(3, 715_000_000_000_100, 1, "sh",
                     ev.TRAP_KERNEL, "read", "fd=3")
    assert format_record(event) == (
        "     3 715000000.000100     1 sh       CALL   read fd=3")
    agent = ev.Event(4, 715_000_000_000_200, 2, "cat", ev.TRAP_AGENT, "open")
    assert format_record(agent) == (
        "     4 715000000.000200     2 cat      CALL*  open")


def test_format_record_golden_stamped():
    event = ev.Event(3, 715_000_000_000_100, 1, "sh",
                     ev.TRAP_KERNEL, "read", "fd=3", span=2, cause=7)
    assert format_record(event) == (
        "     3 715000000.000100     1 sh       CALL   read fd=3"
        " [span=2 cause=7]")
    # Either id alone is enough to earn the suffix.
    cause_only = ev.Event(5, 715_000_000_000_300, 9, "wc",
                          ev.PIPE_WAKEUP, "", "pipe", cause=12)
    assert format_record(cause_only).endswith(" [span=0 cause=12]")


def test_kdump_lines_golden():
    records = [
        ev.Event(1, 715_000_000_000_000, 1, "init", ev.PROC_FORK, "", "->2"),
        ev.Event(2, 715_000_000_000_100, 2, "sh", ev.TRAP_KERNEL, "getpid"),
    ]
    assert kdump_lines(records) == [
        "     1 715000000.000000     1 init     FORK   ->2",
        "     2 715000000.000100     2 sh       CALL   getpid",
        "2 events, 0 dropped",
    ]


def test_kdump_identical_with_and_without_span_fields():
    """A record that spans never touched renders the same whether it was
    stored as the historic 7-tuple or the widened 9-tuple."""
    event = ev.Event(8, 715_000_000_001_000, 3, "sort",
                     ev.TRAP_RET, "read", "=4096")
    seven = event.to_tuple()
    assert len(seven) == 7
    nine = seven + (0, 0)
    assert format_record(seven) == format_record(nine) == format_record(event)


# -- serialisation round-trips -------------------------------------------


def test_event_to_dict_always_has_span_fields():
    plain = ev.Event(1, 1000, 1, "sh", ev.TRAP_KERNEL, "getpid")
    doc = event_to_dict(plain)
    assert doc["span"] == 0 and doc["cause"] == 0
    stamped = ev.Event(2, 2000, 1, "sh", ev.TRAP_KERNEL, "read",
                       span=4, cause=1)
    doc = event_to_dict(stamped.to_tuple())
    assert doc["span"] == 4 and doc["cause"] == 1


def test_to_tuple_roundtrip_both_widths():
    plain = ev.Event(1, 1000, 1, "sh", ev.TRAP_KERNEL, "getpid", "d")
    assert ev.Event.from_tuple(plain.to_tuple()).to_tuple() == plain.to_tuple()
    stamped = ev.Event(2, 2000, 1, "sh", ev.HTG, "read", span=3, cause=9)
    wide = stamped.to_tuple()
    assert len(wide) == 9
    back = ev.Event.from_tuple(wide)
    assert back.span == 3 and back.cause == 9
    assert back.to_tuple() == wide


def test_empty_assembler_exports_empty_valid_doc():
    from repro.obs.spans import SpanAssembler

    doc = chrome_trace(SpanAssembler())
    summary = validate_chrome_trace(doc)
    assert summary == {"X": 0, "M": 0, "flows": 0, "tracks": 0}
