"""Crash consistency: the UFS write-ahead journal and kill-anywhere
recovery (docs/ROBUSTNESS.md, "Crash consistency and recovery").

Covers, per the acceptance criteria:

* the journal's begin/intent/commit/abort protocol and its lazy trim;
* replay semantics — committed transactions redone idempotently,
  uncommitted ones undone in reverse, aborted ones left alone;
* freeze/thaw and the metadata snapshot helper;
* the kill-anywhere matrix: a machine crashed at *every* armed fault
  site (torn mid-mutation sites and kill-at-entry error sites alike),
  remounted, passes the PR 5 invariant walk — and the unjournaled
  control arm demonstrably corrupts;
* record/replay bit-identity of crash scenarios under the recorder;
* the pay-per-use gate: a journal-disabled world's event stream is
  bit-for-bit the seed's;
* the kernel_stats ``journal`` section.
"""

import pytest

from repro.kernel import Kernel
from repro.kernel.errno import EBUSY, SyscallError
from repro.kernel.faultsite import CRASH_SITES, FaultSet, MachineCrash
from repro.kernel.journal import Journal
from repro.kernel.syscalls.obscalls import kernel_stats_payload
from repro.obs.recorder import RECORD, REPLAY, Recorder
from repro.programs.libc import Sys
from repro.obs.timetravel import META_EVENT_KINDS
from repro.workloads import boot_world
from repro.workloads.chaos import (
    CRASH_TAGS,
    check_invariants,
    run_crash_scenario,
    run_crash_suite,
)


# -- the journal protocol ------------------------------------------------


def test_journal_disabled_by_default():
    kernel = Kernel()
    assert kernel.journal_on is False
    assert kernel.rootfs.journal is None


def test_journal_attached_when_asked():
    kernel = Kernel(journal=True)
    assert kernel.journal_on is True
    assert kernel.rootfs.journal is not None
    assert kernel.new_filesystem().journal is not None


def test_begin_commit_abort_counters():
    journal = Journal()
    txn = journal.begin("link")
    txn.intent("enter", 2, "name", 5)
    journal.commit(txn)
    other = journal.begin("unlink")
    journal.abort(other)
    stats = journal.stats()
    assert stats["begun"] == 2
    assert stats["committed"] == 1
    assert stats["aborted"] == 1
    assert stats["live"] == 0
    # begin + intent + commit + begin + abort
    assert stats["records"] == 5


def test_txn_cannot_resolve_twice():
    journal = Journal()
    txn = journal.begin("link")
    journal.commit(txn)
    with pytest.raises(AssertionError):
        journal.commit(txn)


def test_log_stays_bounded_when_quiescent():
    journal = Journal()
    for _ in range(200):
        journal.commit(journal.begin("op"))  # 2 records each
    # begin() trims a quiescent log past 64 records, so it never grows
    # without bound under steady committed traffic.
    assert len(journal.records) <= 66


def test_log_never_trims_under_a_live_txn():
    journal = Journal()
    held = journal.begin("slow")
    for _ in range(60):
        journal.commit(journal.begin("op"))
    assert len(journal.records) > 64  # held txn pins the log
    journal.commit(held)
    journal.commit(journal.begin("op"))  # quiescent again: trimmed
    assert len(journal.records) == 2


# -- replay semantics ----------------------------------------------------


def _journaled_fs():
    kernel = Kernel(journal=True)
    return kernel, kernel.rootfs


def test_replay_undoes_uncommitted_enter():
    kernel, fs = _journaled_fs()
    node = fs.create_file(0o644, kernel._host.cred)
    fs.link(fs.root, "file", node)
    # A torn link: entry entered, nlink bump lost, no commit mark.
    txn = fs.journal_begin("link")
    txn.intent("enter", fs.root.ino, "torn", node.ino)
    txn.intent("nlink", node.ino, node.nlink, node.nlink + 1)
    fs.root.enter("torn", node.ino)
    report = fs.journal.replay(fs)
    assert report == {"redone": 0, "undone": 1, "torn_txns": 1}
    assert "torn" not in fs.root.entries
    assert node.nlink == 1
    assert fs.journal.records == [] and fs.journal.live == {}


def test_replay_redoes_committed_half_applied():
    kernel, fs = _journaled_fs()
    node = fs.create_file(0o644, kernel._host.cred)
    fs.link(fs.root, "file", node)
    # Committed, but the machine died before the in-memory nlink bump
    # (not possible with the in-tree site placement, which commits
    # last — this exercises redo's idempotent guards directly).
    txn = fs.journal_begin("link")
    txn.intent("enter", fs.root.ino, "second", node.ino)
    txn.intent("nlink", node.ino, 1, 2)
    fs.root.enter("second", node.ino)  # first step applied, second lost
    fs.journal_commit(txn)
    report = fs.journal.replay(fs)
    assert report["redone"] == 1  # only the missing nlink is re-applied
    assert fs.root.entries["second"] == node.ino
    assert node.nlink == 2


def test_replay_leaves_aborted_txns_alone():
    kernel, fs = _journaled_fs()
    txn = fs.journal_begin("link")
    txn.intent("enter", fs.root.ino, "ghost", 9999)
    fs.journal_abort(txn)  # the error path already unwound
    report = fs.journal.replay(fs)
    assert report == {"redone": 0, "undone": 0, "torn_txns": 0}
    assert "ghost" not in fs.root.entries


def test_replay_is_idempotent_on_a_clean_volume():
    kernel, fs = _journaled_fs()
    node = fs.create_file(0o644, kernel._host.cred)
    fs.link(fs.root, "file", node)
    before = fs.snapshot_meta()
    report = fs.journal.replay(fs)
    assert report["undone"] == 0
    assert fs.snapshot_meta() == before


# -- freeze/thaw and snapshots -------------------------------------------


def test_frozen_volume_refuses_mutation():
    kernel, fs = _journaled_fs()
    fs.freeze()
    with pytest.raises(SyscallError) as err:
        fs.create_file(0o644, kernel._host.cred)
    assert err.value.errno == EBUSY
    fs.thaw()
    assert fs.create_file(0o644, kernel._host.cred) is not None


def test_snapshot_meta_names_every_inode():
    kernel, fs = _journaled_fs()
    node = fs.create_file(0o644, kernel._host.cred)
    fs.link(fs.root, "file", node)
    snap = fs.snapshot_meta()
    assert set(snap) == set(fs._inodes)
    assert snap[fs.root.ino]["entries"]["file"] == node.ino
    assert snap[node.ino]["nlink"] == 1
    assert snap[node.ino]["type"] == "RegularFile"


# -- kill-anywhere recovery ----------------------------------------------

#: a workload known to reach each crash site at least once
_REACHING = {
    "ufs.alloc.torn": "files", "ufs.link.torn": "files",
    "ufs.unlink.torn": "files", "ufs.mkdir.torn": "files",
    "ufs.rmdir.torn": "files", "ufs.rename.torn": "moves",
    "ufs.make": "files", "ufs.link": "files", "ufs.unlink": "files",
    "namei.lookup": "files", "pipe.read": "pipes", "pipe.write": "pipes",
}


@pytest.mark.parametrize("tag", sorted(_REACHING))
def test_kill_at_every_site_recovers(tag):
    report = run_crash_scenario(0, workload=_REACHING[tag], tag=tag,
                                nth=1, journal=True)
    assert report.outcome == "crashed"
    assert report.crashed == tag
    assert report.violations == []
    assert report.recovery  # remount ran recovery on every volume


def test_unjournaled_torn_link_corrupts():
    report = run_crash_scenario(0, workload="files", tag="ufs.link.torn",
                                nth=1, journal=False)
    assert report.outcome == "crashed"
    assert not report.passed
    assert any("dangling" in v or "nlink" in v or "orphaned" in v
               for v in report.violations)


def test_kill_anywhere_suite_300_scenarios():
    """The acceptance sweep: 300 seeded kill-at-site scenarios, every
    torn site fired at least once, every recovery passes the invariant
    walk; the unjournaled control arm fails at least once."""
    reports = run_crash_suite(count=300, journal=True)
    failed = [r for r in reports if not r.passed]
    assert failed == []
    crashed_tags = {r.crashed for r in reports if r.crashed}
    assert set(CRASH_SITES) <= crashed_tags
    assert sum(1 for r in reports if r.outcome == "crashed") >= 60
    control = run_crash_suite(count=60, journal=False)
    assert any(not r.passed for r in control)


def test_remount_resets_processes_and_clears_crash():
    kernel = boot_world(journal=True)
    kernel.arm_faults(FaultSet({"ufs.link.torn": "crash"}))
    try:
        kernel.run("/bin/sh", ["sh", "-c", "echo hi > /tmp/x"])
    except MachineCrash:
        pass
    finally:
        kernel.disarm_faults()
    assert kernel.crashed is not None
    kernel.remount()
    assert kernel.crashed is None
    assert check_invariants(kernel) == []
    # The machine is usable again after remount.
    kernel.run("/bin/sh", ["sh", "-c", "echo back > /tmp/y"])
    assert kernel.read_file("/tmp/y") == b"back\n"


def test_explicit_kernel_crash_halts_and_remounts():
    kernel = boot_world(journal=True)
    kernel.crash("host.test")
    assert kernel.crashed == "host.test"
    kernel.remount()
    assert kernel.crashed is None
    assert check_invariants(kernel) == []


# -- record/replay bit-identity ------------------------------------------


def _drive_crash(recorder, **kwargs):
    events = []

    def on_boot(kernel):
        kernel.obs.bus.subscribe(lambda e: events.append(e.to_tuple()))
        recorder.attach(kernel)

    report = run_crash_scenario(obs="metrics", on_boot=on_boot, **kwargs)
    filtered = [t for t in events if t[4] not in META_EVENT_KINDS]
    return report, filtered


@pytest.mark.parametrize("tag,workload", [
    ("ufs.link.torn", "files"),
    ("ufs.rename.torn", "moves"),
    ("ufs.unlink", "files"),
])
def test_crash_scenarios_replay_bit_identical(tag, workload):
    kwargs = dict(seed=0, workload=workload, tag=tag, nth=1, journal=True)
    recorder = Recorder(mode=RECORD)
    recorded, rec_events = _drive_crash(recorder, **kwargs)
    assert recorded.outcome == "crashed"
    # The crash is the log's final decision.
    assert recorder.decisions[-1].value == "%s CRASH" % tag

    replayer = Recorder(mode=REPLAY, log=recorder.decisions)
    replayed, rep_events = _drive_crash(replayer, **kwargs)
    assert replayed.outcome == recorded.outcome
    assert replayed.crashed == recorded.crashed
    assert replayed.violations == recorded.violations
    assert rep_events == rec_events


# -- the pay-per-use gate ------------------------------------------------


def _event_stream(**kernel_kwargs):
    """A single-process metadata-heavy run with its full event stream.

    Single process on purpose: multi-process interleaving is host-
    scheduling-dependent without the recorder, and this gate is about
    the *journal's* footprint, not the scheduler's.
    """
    kernel = boot_world(obs="metrics", **kernel_kwargs)
    events = []
    kernel.obs.bus.subscribe(lambda e: events.append(e.to_tuple()))

    def loader(ctx):
        sys = Sys(ctx)
        sys.mkdir("/tmp/d")
        sys.write_whole("/tmp/d/f", b"data\n")
        sys.link("/tmp/d/f", "/tmp/d/g")
        sys.unlink("/tmp/d/f")
        sys.unlink("/tmp/d/g")
        sys.rmdir("/tmp/d")
        return 0

    kernel.run_entry(loader)
    return kernel, events


def test_journal_disabled_world_is_bit_for_bit_seed():
    seed_kernel, seed_events = _event_stream()
    off_kernel, off_events = _event_stream(journal=False)
    assert off_events == seed_events
    assert (off_kernel.rootfs.snapshot_meta()
            == seed_kernel.rootfs.snapshot_meta())


# -- kernel_stats --------------------------------------------------------


def test_kernel_stats_journal_section_live():
    kernel = boot_world(journal=True)
    kernel.run("/bin/sh", ["sh", "-c", "echo x > /tmp/f; rm /tmp/f"])
    payload = kernel_stats_payload(kernel)
    journal = payload["journal"]
    assert journal["enabled"] is True
    assert journal["begun"] > 0
    assert journal["committed"] > 0
    assert journal["live"] == 0
    assert journal["volumes"] >= 1


def test_kernel_stats_journal_disabled_shape():
    payload = kernel_stats_payload(boot_world())
    assert payload["journal"] == {"enabled": False}
