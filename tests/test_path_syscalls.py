"""Tests for pathname-based system calls."""

import pytest

from repro.kernel import stat as st
from repro.kernel.errno import (
    EACCES,
    EEXIST,
    EINVAL,
    EISDIR,
    ENOENT,
    ENOTDIR,
    ENOTEMPTY,
    EPERM,
    EXDEV,
    SyscallError,
)
from repro.kernel.ofile import O_CREAT, O_EXCL, O_RDONLY, O_RDWR, O_TRUNC, O_WRONLY
from repro.kernel.sysent import number_of

NR = {n: number_of(n) for n in (
    "open", "close", "read", "write", "link", "unlink", "rename", "chdir",
    "chroot", "mknod", "chmod", "chown", "access", "stat", "lstat",
    "symlink", "readlink", "truncate", "mkdir", "rmdir", "utimes",
    "setuid", "fstat",
)}


def _expect(ctx, errno_value, call, *args):
    try:
        ctx.trap(call, *args)
    except SyscallError as err:
        assert err.errno == errno_value, (err.errno, errno_value)
        return
    raise AssertionError("expected errno %d" % errno_value)


def test_creat_excl(kernel, run_entry):
    def main(ctx):
        fd = ctx.trap(NR["open"], "/tmp/x", O_WRONLY | O_CREAT | O_EXCL, 0o644)
        ctx.trap(NR["close"], fd)
        _expect(ctx, EEXIST, NR["open"], "/tmp/x", O_WRONLY | O_CREAT | O_EXCL, 0o644)
        return 0

    assert run_entry(main) == 0


def test_open_trunc(kernel, run_entry):
    kernel.write_file("/tmp/t", "old content")

    def main(ctx):
        fd = ctx.trap(NR["open"], "/tmp/t", O_WRONLY | O_TRUNC, 0)
        ctx.trap(NR["write"], fd, b"new")
        return 0

    run_entry(main)
    assert kernel.read_file("/tmp/t") == b"new"


def test_open_missing_enoent(run_entry):
    def main(ctx):
        _expect(ctx, ENOENT, NR["open"], "/tmp/absent", O_RDONLY, 0)
        return 0

    assert run_entry(main) == 0


def test_open_directory_for_write_eisdir(run_entry):
    def main(ctx):
        _expect(ctx, EISDIR, NR["open"], "/tmp", O_RDWR, 0)
        return 0

    assert run_entry(main) == 0


def test_open_respects_permissions(kernel, run_entry):
    kernel.write_file("/tmp/secret", "root only")
    kernel.lookup_host("/tmp/secret").mode = st.S_IFREG | 0o600

    def main(ctx):
        ctx.trap(NR["setuid"], 100)
        _expect(ctx, EACCES, NR["open"], "/tmp/secret", O_RDONLY, 0)
        return 0

    assert run_entry(main) == 0


def test_link_and_unlink(kernel, run_entry):
    kernel.write_file("/tmp/orig", "shared")

    def main(ctx):
        ctx.trap(NR["link"], "/tmp/orig", "/tmp/alias")
        assert ctx.trap(NR["stat"], "/tmp/alias").st_nlink == 2
        ctx.trap(NR["unlink"], "/tmp/orig")
        assert ctx.trap(NR["stat"], "/tmp/alias").st_nlink == 1
        fd = ctx.trap(NR["open"], "/tmp/alias", O_RDONLY, 0)
        assert ctx.trap(NR["read"], fd, 100) == b"shared"
        return 0

    assert run_entry(main) == 0


def test_link_to_directory_eperm(run_entry):
    def main(ctx):
        _expect(ctx, EPERM, NR["link"], "/tmp", "/tmp2link")
        return 0

    assert run_entry(main) == 0


def test_link_existing_target_eexist(kernel, run_entry):
    kernel.write_file("/tmp/a", "a")
    kernel.write_file("/tmp/b", "b")

    def main(ctx):
        _expect(ctx, EEXIST, NR["link"], "/tmp/a", "/tmp/b")
        return 0

    assert run_entry(main) == 0


def test_unlink_directory_eperm(run_entry):
    def main(ctx):
        _expect(ctx, EPERM, NR["unlink"], "/tmp")
        return 0

    assert run_entry(main) == 0


def test_unlinked_open_file_still_readable(kernel, run_entry):
    kernel.write_file("/tmp/ghost", "boo")

    def main(ctx):
        fd = ctx.trap(NR["open"], "/tmp/ghost", O_RDONLY, 0)
        ctx.trap(NR["unlink"], "/tmp/ghost")
        _expect(ctx, ENOENT, NR["stat"], "/tmp/ghost")
        assert ctx.trap(NR["read"], fd, 10) == b"boo"
        return 0

    assert run_entry(main) == 0


def test_rename_file(kernel, run_entry):
    kernel.write_file("/tmp/from", "move me")

    def main(ctx):
        ctx.trap(NR["rename"], "/tmp/from", "/tmp/to")
        _expect(ctx, ENOENT, NR["stat"], "/tmp/from")
        assert ctx.trap(NR["stat"], "/tmp/to").st_size == 7
        return 0

    assert run_entry(main) == 0


def test_rename_replaces_target(kernel, run_entry):
    kernel.write_file("/tmp/src", "new")
    kernel.write_file("/tmp/dst", "old old old")

    def main(ctx):
        ctx.trap(NR["rename"], "/tmp/src", "/tmp/dst")
        assert ctx.trap(NR["stat"], "/tmp/dst").st_size == 3
        return 0

    assert run_entry(main) == 0


def test_rename_directory_rewires_dotdot(kernel, run_entry):
    kernel.mkdir_p("/tmp/d1/sub")
    kernel.mkdir_p("/tmp/d2")

    def main(ctx):
        ctx.trap(NR["rename"], "/tmp/d1/sub", "/tmp/d2/moved")
        parent = ctx.trap(NR["stat"], "/tmp/d2")
        dotdot = ctx.trap(NR["stat"], "/tmp/d2/moved/..")
        assert dotdot.st_ino == parent.st_ino
        return 0

    assert run_entry(main) == 0


def test_rename_into_own_subtree_einval(kernel, run_entry):
    kernel.mkdir_p("/tmp/outer/inner")

    def main(ctx):
        _expect(ctx, EINVAL, NR["rename"], "/tmp/outer", "/tmp/outer/inner/bad")
        return 0

    assert run_entry(main) == 0


def test_rename_file_over_directory_eisdir(kernel, run_entry):
    kernel.write_file("/tmp/plain2", "x")
    kernel.mkdir_p("/tmp/dir2")

    def main(ctx):
        _expect(ctx, EISDIR, NR["rename"], "/tmp/plain2", "/tmp/dir2")
        return 0

    assert run_entry(main) == 0


def test_rename_onto_self_is_noop(kernel, run_entry):
    kernel.write_file("/tmp/same", "x")

    def main(ctx):
        ctx.trap(NR["rename"], "/tmp/same", "/tmp/same")
        assert ctx.trap(NR["stat"], "/tmp/same").st_size == 1
        return 0

    assert run_entry(main) == 0


def test_mkdir_rmdir(kernel, run_entry):
    def main(ctx):
        ctx.trap(NR["mkdir"], "/tmp/newdir", 0o755)
        record = ctx.trap(NR["stat"], "/tmp/newdir")
        assert st.S_ISDIR(record.st_mode)
        assert record.st_nlink == 2
        ctx.trap(NR["rmdir"], "/tmp/newdir")
        _expect(ctx, ENOENT, NR["stat"], "/tmp/newdir")
        return 0

    assert run_entry(main) == 0


def test_rmdir_nonempty(kernel, run_entry):
    kernel.mkdir_p("/tmp/full")
    kernel.write_file("/tmp/full/f", "x")

    def main(ctx):
        _expect(ctx, ENOTEMPTY, NR["rmdir"], "/tmp/full")
        return 0

    assert run_entry(main) == 0


def test_rmdir_updates_parent_nlink(kernel, run_entry):
    def main(ctx):
        before = ctx.trap(NR["stat"], "/tmp").st_nlink
        ctx.trap(NR["mkdir"], "/tmp/counted", 0o755)
        assert ctx.trap(NR["stat"], "/tmp").st_nlink == before + 1
        ctx.trap(NR["rmdir"], "/tmp/counted")
        assert ctx.trap(NR["stat"], "/tmp").st_nlink == before
        return 0

    assert run_entry(main) == 0


def test_rmdir_dot_einval(run_entry):
    def main(ctx):
        ctx.trap(NR["chdir"], "/tmp")
        _expect(ctx, EINVAL, NR["rmdir"], ".")
        return 0

    assert run_entry(main) == 0


def test_symlink_and_readlink(kernel, run_entry):
    kernel.write_file("/tmp/real", "pointed at")

    def main(ctx):
        ctx.trap(NR["symlink"], "/tmp/real", "/tmp/ln")
        assert ctx.trap(NR["readlink"], "/tmp/ln", 1024) == "/tmp/real"
        assert ctx.trap(NR["stat"], "/tmp/ln").st_size == 10  # follows
        assert st.S_ISLNK(ctx.trap(NR["lstat"], "/tmp/ln").st_mode)
        _expect(ctx, EINVAL, NR["readlink"], "/tmp/real", 1024)
        return 0

    assert run_entry(main) == 0


def test_dangling_symlink(kernel, run_entry):
    def main(ctx):
        ctx.trap(NR["symlink"], "/nowhere", "/tmp/dangling")
        _expect(ctx, ENOENT, NR["stat"], "/tmp/dangling")
        assert st.S_ISLNK(ctx.trap(NR["lstat"], "/tmp/dangling").st_mode)
        return 0

    assert run_entry(main) == 0


def test_chmod_chown(kernel, run_entry):
    kernel.write_file("/tmp/perm", "x")

    def main(ctx):
        ctx.trap(NR["chmod"], "/tmp/perm", 0o751)
        assert ctx.trap(NR["stat"], "/tmp/perm").st_mode & 0o777 == 0o751
        ctx.trap(NR["chown"], "/tmp/perm", 42, 43)
        record = ctx.trap(NR["stat"], "/tmp/perm")
        assert (record.st_uid, record.st_gid) == (42, 43)
        return 0

    assert run_entry(main) == 0


def test_chmod_requires_ownership(kernel, run_entry):
    kernel.write_file("/tmp/notmine", "x")

    def main(ctx):
        ctx.trap(NR["setuid"], 100)
        _expect(ctx, EPERM, NR["chmod"], "/tmp/notmine", 0o777)
        _expect(ctx, EPERM, NR["chown"], "/tmp/notmine", 100, 100)
        return 0

    assert run_entry(main) == 0


def test_access_uses_real_uid(kernel, run_entry):
    kernel.write_file("/tmp/rootfile", "x")
    kernel.lookup_host("/tmp/rootfile").mode = st.S_IFREG | 0o600

    def main(ctx):
        ctx.trap(NR["setuid"], 100)
        _expect(ctx, EACCES, NR["access"], "/tmp/rootfile", 4)
        ctx.trap(NR["access"], "/tmp/rootfile", 0)  # F_OK passes
        return 0

    assert run_entry(main) == 0


def test_truncate_path(kernel, run_entry):
    kernel.write_file("/tmp/tr", "0123456789")

    def main(ctx):
        ctx.trap(NR["truncate"], "/tmp/tr", 4)
        assert ctx.trap(NR["stat"], "/tmp/tr").st_size == 4
        _expect(ctx, EINVAL, NR["truncate"], "/tmp/tr", -1)
        return 0

    assert run_entry(main) == 0


def test_utimes(kernel, run_entry):
    kernel.write_file("/tmp/stamp", "x")

    def main(ctx):
        ctx.trap(NR["utimes"], "/tmp/stamp", 1_000_000, 2_000_000)
        record = ctx.trap(NR["stat"], "/tmp/stamp")
        assert record.st_atime == 1
        assert record.st_mtime == 2
        return 0

    assert run_entry(main) == 0


def test_chdir_affects_relative_paths(kernel, run_entry):
    kernel.mkdir_p("/tmp/workdir")
    kernel.write_file("/tmp/workdir/here", "found")

    def main(ctx):
        ctx.trap(NR["chdir"], "/tmp/workdir")
        assert ctx.trap(NR["stat"], "here").st_size == 5
        _expect(ctx, ENOTDIR, NR["chdir"], "/tmp/workdir/here")
        return 0

    assert run_entry(main) == 0


def test_chroot_requires_root_and_confines(kernel, run_entry):
    kernel.mkdir_p("/tmp/jail/inside")
    kernel.write_file("/tmp/jail/inside/f", "jailed")

    def main(ctx):
        ctx.trap(NR["chroot"], "/tmp/jail")
        assert ctx.trap(NR["stat"], "/inside/f").st_size == 6
        _expect(ctx, ENOENT, NR["stat"], "/etc")
        return 0

    assert run_entry(main) == 0

    def unprivileged(ctx):
        ctx.trap(NR["setuid"], 100)
        _expect(ctx, EPERM, NR["chroot"], "/tmp")
        return 0

    assert run_entry(unprivileged) == 0


def test_mknod_fifo_by_user(kernel, run_entry):
    def main(ctx):
        ctx.trap(NR["setuid"], 100)
        ctx.trap(NR["chdir"], "/tmp")
        ctx.trap(NR["mknod"], "fifo1", st.S_IFIFO | 0o644, 0)
        assert st.S_ISFIFO(ctx.trap(NR["stat"], "fifo1").st_mode)
        _expect(ctx, EPERM, NR["mknod"], "dev1", st.S_IFCHR | 0o644, 1)
        return 0

    assert run_entry(main) == 0


def test_mode_bits_masked_by_umask(kernel, run_entry):
    def main(ctx):
        ctx.trap(NR["mkdir"], "/tmp/dmode", 0o777)
        assert ctx.trap(NR["stat"], "/tmp/dmode").st_mode & 0o777 == 0o755
        return 0

    assert run_entry(main) == 0
