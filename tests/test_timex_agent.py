"""Tests for the timex agent (paper Section 3.3.1)."""

import pytest

from repro.agents.timex import TimexSymbolicSyscall
from repro.kernel.proc import WEXITSTATUS
from repro.kernel.sysent import number_of
from repro.toolkit import run_under_agent

NR_GETTIMEOFDAY = number_of("gettimeofday")


def test_time_shifted_forward(world):
    def main(ctx):
        agent = TimexSymbolicSyscall(offset=86400)
        real = ctx.htg(NR_GETTIMEOFDAY)
        agent.attach(ctx)
        funky = ctx.trap(NR_GETTIMEOFDAY)
        assert funky.tv_sec - real.tv_sec >= 86400
        return 0

    assert WEXITSTATUS(world.run_entry(main)) == 0


def test_time_shifted_backward(world):
    def main(ctx):
        agent = TimexSymbolicSyscall(offset=-1000)
        real = ctx.htg(NR_GETTIMEOFDAY)
        agent.attach(ctx)
        funky = ctx.trap(NR_GETTIMEOFDAY)
        assert real.tv_sec - funky.tv_sec >= 999
        return 0

    assert WEXITSTATUS(world.run_entry(main)) == 0


def test_offset_from_agent_command_line(world):
    status = run_under_agent(
        world, TimexSymbolicSyscall(), "/bin/date", ["date"],
        agentargv=["500000"],
    )
    assert WEXITSTATUS(status) == 0
    shifted = int(world.console.take_output().decode().split(".")[0])
    assert shifted - world.clock.now().tv_sec >= 499_990


def test_kernel_clock_not_affected(world):
    before = world.clock.now().tv_sec
    run_under_agent(
        world, TimexSymbolicSyscall(offset=10**6), "/bin/date", ["date"]
    )
    world.console.take_output()
    assert world.clock.now().tv_sec - before < 100


def test_date_under_loader(world):
    status = world.run(
        "/bin/sh", ["sh", "-c", "agentrun timex 7777777 -- date"]
    )
    assert WEXITSTATUS(status) == 0
    shifted = int(world.console.take_output().decode().split(".")[0])
    assert shifted > world.clock.now().tv_sec + 7_000_000


def test_everything_else_unchanged(world):
    status = run_under_agent(
        world, TimexSymbolicSyscall(offset=1000), "/bin/sh",
        ["sh", "-c", "echo side effects > /tmp/tx; cat /tmp/tx"],
    )
    assert WEXITSTATUS(status) == 0
    assert "side effects" in world.console.take_output().decode()
    assert world.read_file("/tmp/tx") == b"side effects\n"
