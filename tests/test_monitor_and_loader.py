"""Tests for the monitor agent and the generic agent loader."""

import json

import pytest

from repro.agents.monitor import MonitorAgent
from repro.kernel.proc import WEXITSTATUS
from repro.toolkit import run_under_agent

#: the pinned key set of the --json report; bump schema_version on change
MONITOR_JSON_SCHEMA_V4 = frozenset({
    "schema_version", "calls", "errors", "bytes_read", "bytes_written",
    "forks", "opens_by_path", "signals", "kernel", "spans",
    "recorder", "procfs", "profile", "watch",
})


def test_monitor_counts_calls(world):
    agent = MonitorAgent("/tmp/mon.out")
    status = run_under_agent(
        world, agent, "/bin/sh",
        ["sh", "-c", "echo hi; cat /etc/passwd > /dev/null"],
    )
    assert WEXITSTATUS(status) == 0
    assert agent.call_counts["fork"] == 2
    assert agent.call_counts["open"] >= 2
    assert agent.bytes_written > 0
    assert agent.bytes_read > 0
    assert agent.opens_by_path.get("/etc/passwd") == 1


def test_monitor_counts_errors(world):
    agent = MonitorAgent("/tmp/mon.out")
    run_under_agent(world, agent, "/bin/sh", ["sh", "-c", "cat /missing; true"])
    assert any(name == "open" for name, _ in agent.error_counts)


def test_monitor_report_written_at_exit(world):
    run_under_agent(
        world, MonitorAgent("/tmp/mon.out"), "/bin/sh", ["sh", "-c", "echo x"]
    )
    report = world.read_file("/tmp/mon.out").decode()
    assert "system call usage:" in report
    assert "bytes written:" in report
    assert "forks:" in report


def test_monitor_counts_signals(world):
    from repro.kernel import signals as sig
    from repro.kernel.sysent import number_of

    agent = MonitorAgent("/tmp/mon.out")

    def main(ctx):
        agent.attach(ctx)
        ctx.trap(number_of("sigvec"), sig.SIGUSR1, lambda s: None, 0)
        ctx.trap(number_of("kill"), ctx.proc.pid, sig.SIGUSR1)
        return 0

    world.run_entry(main)
    assert agent.signals == {sig.SIGUSR1: 1}


def test_monitor_json_report_schema_golden(world):
    """The --json report's top-level shape is a frozen contract."""
    agent = MonitorAgent("/tmp/mon.json")
    agent.json_report = True
    status = run_under_agent(world, agent, "/bin/sh", ["sh", "-c", "echo hi"])
    assert WEXITSTATUS(status) == 0
    doc = json.loads(world.read_file("/tmp/mon.json").decode())
    assert set(doc) == MONITOR_JSON_SCHEMA_V4
    assert doc["schema_version"] == 4
    assert doc["calls"]["write"] >= 1
    # Span tracing was off, and the report says so explicitly.
    assert doc["spans"] == {"enabled": False}
    assert doc["kernel"]["spans"] == {"enabled": False}
    # No recorder attached, and the report says so explicitly.
    assert doc["recorder"] == {"enabled": False}
    # Live introspection was off across the board, likewise explicit.
    assert doc["procfs"] == {"enabled": False}
    assert doc["profile"] == {"enabled": False}
    assert doc["watch"] == {"enabled": False}


def test_monitor_json_report_spans_section(world):
    """With span tracing on, the report carries the kernel's span counts."""
    from repro import obs

    obs.enable(world, spans=True)
    agent = MonitorAgent("/tmp/mon_spans.json")
    agent.json_report = True
    status = run_under_agent(world, agent, "/bin/sh", ["sh", "-c", "echo hi"])
    assert WEXITSTATUS(status) == 0
    doc = json.loads(world.read_file("/tmp/mon_spans.json").decode())
    assert set(doc) == MONITOR_JSON_SCHEMA_V4
    assert doc["spans"]["enabled"] is True
    assert doc["spans"]["spans"] > 0
    assert set(doc["spans"]["edges_by_kind"]) <= {"fork", "exec", "pipe",
                                                  "signal"}


def test_loader_monitor_json_flag(world):
    """agentrun forwards --json to the monitor agent."""
    status = world.run(
        "/bin/sh",
        ["sh", "-c", "agentrun monitor /tmp/m4.json --json -- echo hi"])
    assert WEXITSTATUS(status) == 0
    doc = json.loads(world.read_file("/tmp/m4.json").decode())
    assert doc["schema_version"] == 4 and "spans" in doc


# -- the agent loader program --------------------------------------------

def test_loader_usage_lists_agents(world):
    status = world.run("/bin/agentrun", ["agentrun"])
    assert WEXITSTATUS(status) == 2
    out = world.console.take_output().decode()
    assert "usage:" in out
    for name in ("timex", "trace", "union", "dfs_trace", "sandbox", "txn"):
        assert name in out


def test_loader_unknown_agent(world):
    status = world.run("/bin/agentrun", ["agentrun", "bogus", "--", "true"])
    assert WEXITSTATUS(status) == 2
    assert "unknown agent" in world.console.take_output().decode()


def test_loader_no_program(world):
    status = world.run("/bin/agentrun", ["agentrun", "timex", "--"])
    assert WEXITSTATUS(status) == 2


def test_loader_without_separator(world):
    status = world.run("/bin/agentrun", ["agentrun", "monitor", "echo", "hi"])
    assert WEXITSTATUS(status) == 0
    assert "hi" in world.console.take_output().decode()


def test_loader_path_search(world):
    status = world.run(
        "/bin/sh", ["sh", "-c", "agentrun monitor /tmp/m2.out -- echo found"]
    )
    assert WEXITSTATUS(status) == 0
    assert "found" in world.console.take_output().decode()


def test_loader_stacks_agents(world):
    """agentrun under agentrun: both agents observe the client."""
    status = world.run(
        "/bin/sh",
        ["sh", "-c",
         "agentrun monitor /tmp/outer.out -- "
         "agentrun monitor /tmp/inner.out -- echo stacked"],
    )
    assert WEXITSTATUS(status) == 0
    assert "stacked" in world.console.take_output().decode()
    outer = world.read_file("/tmp/outer.out").decode()
    inner = world.read_file("/tmp/inner.out").decode()
    assert "system call usage:" in outer
    assert "system call usage:" in inner


def test_client_exit_status_preserved_through_loader(world):
    status = world.run(
        "/bin/sh", ["sh", "-c", "agentrun monitor /tmp/m3.out -- sh -c 'exit 5'"]
    )
    assert WEXITSTATUS(status) == 5
