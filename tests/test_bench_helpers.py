"""Tests for the benchmark support package (statement counting, timing)."""

import pytest

from repro.bench.loc import count_statements, module_statements
from repro.bench.timing import (
    _median,
    paired_slowdowns,
    slowdown,
    time_matrix,
    usec_per_call,
)


def test_count_statements_basic():
    assert count_statements("x = 1\ny = 2\n") == 2


def test_count_statements_excludes_docstrings():
    source = '"""module docstring"""\ndef f():\n    "doc"\n    return 1\n'
    # def + return, not the two docstrings
    assert count_statements(source) == 2


def test_count_statements_compound():
    source = (
        "for i in range(3):\n"
        "    if i:\n"
        "        print(i)\n"
    )
    assert count_statements(source) == 3


def test_count_statements_comments_free():
    assert count_statements("# just a comment\nx = 1  # trailing\n") == 1


def test_module_statements_positive():
    import repro.kernel.errno as mod

    assert module_statements(mod) > 10


def test_toolkit_layer_sets():
    from repro.bench.loc import modules_statements, toolkit_layers

    simple = modules_statements(toolkit_layers(False))
    with_objects = modules_statements(toolkit_layers(True))
    assert with_objects > simple > 0


def test_median_odd_even():
    assert _median([3, 1, 2]) == 2
    assert _median([4, 1, 2, 3]) == 2.5


def test_slowdown_percent():
    assert slowdown(1.0, 1.5) == pytest.approx(50.0)
    assert slowdown(0.0, 1.0) == 0.0


def test_usec_per_call_scale():
    usec = usec_per_call(lambda: None, calls=500, repeats=2)
    assert 0 < usec < 100  # a no-op lambda costs well under 100 usec


def test_time_matrix_and_paired_slowdowns():
    import time

    def fast():
        return lambda: None

    def slow():
        return lambda: time.sleep(0.002)

    results = time_matrix({"none": fast, "slow": slow}, runs=3)
    assert set(results) == {"none", "slow"}
    assert results["slow"][0] > results["none"][0]
    ratios = paired_slowdowns(results, base_name="none")
    assert ratios["none"] == pytest.approx(0.0)
    assert ratios["slow"] > 50.0


def test_agent_size_report_rows():
    from repro.bench.loc import agent_size_report

    rows = agent_size_report()
    assert [r[0] for r in rows] == ["timex", "trace", "union", "dfs_trace"]
    for _, toolkit, agent, total in rows:
        assert total == toolkit + agent
        assert toolkit > 0 and agent > 0
