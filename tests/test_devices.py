"""Tests for the device switch and standard devices."""

import pytest

from repro.kernel.devices import (
    ConsoleDevice,
    DeviceSwitch,
    FIONREAD,
    NullDevice,
    TIOCGWINSZ,
    ZeroDevice,
)
from repro.kernel.errno import ENODEV, ENOTTY, SyscallError
from repro.kernel.sysent import number_of

NR_OPEN = number_of("open")
NR_READ = number_of("read")
NR_WRITE = number_of("write")
NR_IOCTL = number_of("ioctl")


def test_null_device_reads_eof_swallows_writes(run_entry):
    def main(ctx):
        fd = ctx.trap(NR_OPEN, "/dev/null", 2, 0)
        assert ctx.trap(NR_READ, fd, 100) == b""
        assert ctx.trap(NR_WRITE, fd, b"x" * 1000) == 1000
        return 0

    assert run_entry(main) == 0


def test_zero_device(run_entry):
    def main(ctx):
        fd = ctx.trap(NR_OPEN, "/dev/zero", 0, 0)
        assert ctx.trap(NR_READ, fd, 5) == b"\0\0\0\0\0"
        return 0

    assert run_entry(main) == 0


def test_console_echo(kernel, run_entry):
    kernel.console.feed("typed input\n")

    def main(ctx):
        fd = ctx.trap(NR_OPEN, "/dev/console", 2, 0)
        data = ctx.trap(NR_READ, fd, 100)
        ctx.trap(NR_WRITE, fd, b"echo: " + data)
        return 0

    assert run_entry(main) == 0
    assert kernel.console.output_text() == "echo: typed input\n"


def test_console_tty_alias(kernel, run_entry):
    def main(ctx):
        fd = ctx.trap(NR_OPEN, "/dev/tty", 1, 0)
        ctx.trap(NR_WRITE, fd, b"to tty")
        return 0

    run_entry(main)
    assert kernel.console.output_text() == "to tty"


def test_console_window_size_ioctl(run_entry):
    def main(ctx):
        fd = ctx.trap(NR_OPEN, "/dev/tty", 2, 0)
        rows, cols = ctx.trap(NR_IOCTL, fd, TIOCGWINSZ, None)
        assert (rows, cols) == (24, 80)
        return 0

    assert run_entry(main) == 0


def test_console_fionread(kernel, run_entry):
    kernel.console.feed("abc")

    def main(ctx):
        fd = ctx.trap(NR_OPEN, "/dev/tty", 0, 0)
        assert ctx.trap(NR_IOCTL, fd, FIONREAD, None) == 3
        return 0

    assert run_entry(main) == 0


def test_ioctl_on_regular_file_enotty(kernel, run_entry):
    kernel.write_file("/tmp/f", "x")

    def main(ctx):
        fd = ctx.trap(NR_OPEN, "/tmp/f", 0, 0)
        try:
            ctx.trap(NR_IOCTL, fd, TIOCGWINSZ, None)
        except SyscallError as err:
            assert err.errno == ENOTTY
            return 0
        return 1

    assert run_entry(main) == 0


def test_device_switch_registration():
    switch = DeviceSwitch()
    rdev = switch.register(NullDevice())
    assert switch.lookup(rdev).name == "null"
    with pytest.raises(SyscallError) as exc:
        switch.lookup(999)
    assert exc.value.errno == ENODEV
    with pytest.raises(ValueError):
        switch.register(ZeroDevice(), rdev=rdev)


def test_console_feed_and_take():
    console = ConsoleDevice()
    console.feed(b"bytes")
    console.feed("text")
    assert bytes(console.input) == b"bytestext"
    console.output.extend(b"out")
    assert console.take_output() == b"out"
    assert console.take_output() == b""


def test_console_eof(kernel, run_entry):
    kernel.console.mark_eof()

    def main(ctx):
        fd = ctx.trap(NR_OPEN, "/dev/tty", 0, 0)
        assert ctx.trap(NR_READ, fd, 10) == b""
        return 0

    assert run_entry(main) == 0


def test_open_counts_tracked(kernel, run_entry):
    def main(ctx):
        NR_CLOSE = number_of("close")
        fd = ctx.trap(NR_OPEN, "/dev/null", 0, 0)
        fd2 = ctx.trap(NR_OPEN, "/dev/null", 0, 0)
        ctx.trap(NR_CLOSE, fd)
        ctx.trap(NR_CLOSE, fd2)
        return 0

    run_entry(main)
    null = kernel.devswitch.lookup(kernel._null_rdev)
    assert null.open_count == 0
