"""Tests for layer 0: the numeric system call layer."""

import pytest

from repro.kernel.errno import EINVAL, ENOENT, SyscallError
from repro.kernel.proc import WEXITSTATUS
from repro.kernel.sysent import number_of
from repro.toolkit.numeric import (
    EmulRegs,
    NumericSyscall,
    marshal_result,
    unmarshal_result,
)

NR_GETPID = number_of("getpid")
NR_FORK = number_of("fork")
NR_PIPE = number_of("pipe")
NR_WAIT = number_of("wait")
NR_OPEN = number_of("open")


def test_marshal_single_register():
    rv = [0, 0]
    marshal_result(NR_GETPID, 42, rv)
    assert rv == [42, 0]
    assert unmarshal_result(NR_GETPID, rv) == 42


def test_marshal_two_registers():
    rv = [0, 0]
    marshal_result(NR_PIPE, (3, 4), rv)
    assert rv == [3, 4]
    assert unmarshal_result(NR_PIPE, rv) == (3, 4)


def test_marshal_objects_pass_through():
    record = object()
    rv = [0, 0]
    marshal_result(NR_OPEN, record, rv)
    assert rv[0] is record


def test_default_numeric_agent_is_transparent(world):
    agent = NumericSyscall()

    def main(ctx):
        agent.attach(ctx)
        agent.register_interest_many([NR_GETPID, NR_PIPE, NR_OPEN])
        assert ctx.trap(NR_GETPID) == ctx.proc.pid
        rfd, wfd = ctx.trap(NR_PIPE)
        assert rfd != wfd
        return 0

    assert WEXITSTATUS(world.run_entry(main)) == 0


def test_numeric_error_convention(world):
    class Refuser(NumericSyscall):
        def init(self, agentargv):
            self.register_interest(NR_OPEN)

        def syscall(self, number, args, rv, regs):
            return EINVAL  # refuse every open

    def main(ctx):
        Refuser().attach(ctx)
        try:
            ctx.trap(NR_OPEN, "/etc/passwd", 0, 0)
        except SyscallError as err:
            return 10 if err.errno == EINVAL else 1
        return 1

    assert WEXITSTATUS(world.run_entry(main)) == 10


def test_numeric_rewrites_arguments(world):
    """The paper's example: an agent that rewrites untyped arguments."""

    class Rewriter(NumericSyscall):
        def init(self, agentargv):
            self.register_interest(NR_OPEN)

        def syscall(self, number, args, rv, regs):
            args = ["/etc/passwd"] + list(args[1:])
            return self.syscall_down_raw(number, args, rv)

    def main(ctx):
        Rewriter().attach(ctx)
        fd = ctx.trap(NR_OPEN, "/no/such/file", 0, 0)  # rewritten!
        data = ctx.trap(number_of("read"), fd, 4)
        assert data == b"root"
        return 0

    assert WEXITSTATUS(world.run_entry(main)) == 0


def test_number_range_remapping(world):
    """The paper: "one range of system call numbers could be remapped to
    calls on a different range at this level"."""

    OFFSET = 500

    class Remapper(NumericSyscall):
        def init(self, agentargv):
            self.register_interest_range(OFFSET + 1, OFFSET + 200)

        def syscall(self, number, args, rv, regs):
            return self.syscall_down_raw(number - OFFSET, args, rv)

    def main(ctx):
        Remapper().attach(ctx)
        assert ctx.trap(OFFSET + NR_GETPID) == ctx.proc.pid
        return 0

    assert WEXITSTATUS(world.run_entry(main)) == 0


def test_regs_carries_context(world):
    seen = {}

    class Inspector(NumericSyscall):
        def init(self, agentargv):
            self.register_interest(NR_GETPID)

        def syscall(self, number, args, rv, regs):
            seen["regs"] = regs
            return self.syscall_down_raw(number, args, rv)

    def main(ctx):
        Inspector().attach(ctx)
        ctx.trap(NR_GETPID)
        assert isinstance(seen["regs"], EmulRegs)
        assert seen["regs"].ctx.proc is ctx.proc
        return 0

    assert WEXITSTATUS(world.run_entry(main)) == 0


def test_two_register_call_through_numeric_layer(world):
    agent = NumericSyscall()

    def main(ctx):
        agent.attach(ctx)
        agent.register_interest_many([NR_FORK, NR_WAIT])
        pid, flag = ctx.trap(NR_FORK, lambda c: 3)
        assert flag == 0
        wpid, status = ctx.trap(NR_WAIT)
        assert wpid == pid
        assert WEXITSTATUS(status) == 3
        return 0

    assert WEXITSTATUS(world.run_entry(main)) == 0
