"""Tests for the logical-device agent and the numeric-layer tracer."""

import pytest

from repro.agents.logical_dev import (
    CounterDevice,
    LogicalDeviceAgent,
    SinkDevice,
)
from repro.agents.ntrace import NumericTraceAgent
from repro.kernel.proc import WEXITSTATUS
from repro.toolkit import run_under_agent


def _dev_agent():
    agent = LogicalDeviceAgent()
    return agent


def test_fortune_device_serves_reads(world):
    status = run_under_agent(
        world, _dev_agent(), "/bin/sh",
        ["sh", "-c", "cat /dev/fortune; cat /dev/fortune"],
    )
    assert WEXITSTATUS(status) == 0
    lines = world.console.take_output().decode().splitlines()
    assert len(lines) == 2
    assert lines[0] != lines[1]  # successive fortunes differ


def test_counter_device_read_write(world):
    agent = LogicalDeviceAgent()
    counter = CounterDevice()
    agent.add_device("/dev/mycounter", counter)
    status = run_under_agent(
        world, agent, "/bin/sh",
        ["sh", "-c",
         "echo 41 > /dev/mycounter; cat /dev/mycounter; cat /dev/mycounter"],
    )
    out = world.console.take_output().decode().split()
    # "echo 41" set it; each read returns the value and then bumps it.
    assert out == ["41", "42"]
    assert counter.value == 43


def test_sink_device_counts_bytes(world):
    agent = LogicalDeviceAgent()
    sink = SinkDevice()
    agent.add_device("/dev/blackhole", sink)
    run_under_agent(
        world, agent, "/bin/sh",
        ["sh", "-c", "echo 0123456789 > /dev/blackhole"],
    )
    assert sink.bytes_sunk == 11


def test_device_never_touches_kernel_fs(world):
    """The logical device exists only in the agent: the kernel's /dev has
    no such entry, and programs without the agent get ENOENT."""
    run_under_agent(
        world, _dev_agent(), "/bin/sh", ["sh", "-c", "cat /dev/fortune"]
    )
    world.console.take_output()
    assert not world.lookup_host("/dev").contains("fortune")
    status = world.run("/bin/sh", ["sh", "-c", "cat /dev/fortune"])
    assert "ENOENT" in world.console.take_output().decode()


def test_device_stat_is_character_special(world):
    from repro.kernel import stat as st
    from repro.kernel.sysent import number_of

    agent = _dev_agent()

    def main(ctx):
        agent.attach(ctx)
        record = ctx.trap(number_of("stat"), "/dev/fortune")
        assert st.S_ISCHR(record.st_mode)
        return 0

    assert WEXITSTATUS(world.run_entry(main)) == 0


def test_real_files_unaffected_by_device_agent(world):
    status = run_under_agent(
        world, _dev_agent(), "/bin/sh",
        ["sh", "-c", "echo real > /tmp/real; cat /tmp/real"],
    )
    assert world.console.take_output().decode() == "real\n"


# -- ntrace ---------------------------------------------------------------

def test_ntrace_logs_raw_calls(world):
    agent = NumericTraceAgent("/tmp/n.out")
    status = run_under_agent(
        world, agent, "/bin/sh", ["sh", "-c", "echo traced > /tmp/t"]
    )
    assert WEXITSTATUS(status) == 0
    log = world.read_file("/tmp/n.out").decode()
    assert "open<5>(" in log
    assert "write<4>(" in log
    assert "close<6>(" in log


def test_ntrace_logs_errors_symbolically(world):
    agent = NumericTraceAgent("/tmp/n.out")
    run_under_agent(world, agent, "/bin/sh", ["sh", "-c", "cat /gone; true"])
    log = world.read_file("/tmp/n.out").decode()
    assert "-> ENOENT" in log


def test_ntrace_survives_exec(world):
    agent = NumericTraceAgent("/tmp/n.out")
    run_under_agent(world, agent, "/bin/sh", ["sh", "-c", "sh -c 'echo deep'"])
    log = world.read_file("/tmp/n.out").decode()
    assert log.count("execve<59>") >= 2
    assert "deep" in world.console.take_output().decode()


def test_ntrace_much_smaller_than_trace():
    from repro.bench.loc import module_statements
    import repro.agents.ntrace as ntrace_mod
    import repro.agents.trace as trace_mod

    assert module_statements(ntrace_mod) * 3 < module_statements(trace_mod)


def test_ntrace_signals_logged(world):
    from repro.kernel import signals as sig
    from repro.kernel.sysent import number_of

    agent = NumericTraceAgent("/tmp/n.out")

    def main(ctx):
        agent.attach(ctx)
        ctx.trap(number_of("sigvec"), sig.SIGUSR1, lambda s: None, 0)
        ctx.trap(number_of("kill"), ctx.proc.pid, sig.SIGUSR1)
        return 0

    world.run_entry(main)
    log = world.read_file("/tmp/n.out").decode()
    assert "signal<%d>" % sig.SIGUSR1 in log
