"""Tests for make."""

import pytest

from repro.programs.make_prog import _expand, _parse_makefile


# -- unit: parsing -----------------------------------------------------

def test_expand_macros():
    macros = {"CC": "cc", "NAME": "prog"}
    assert _expand("$(CC) -o $(NAME)", macros) == "cc -o prog"
    assert _expand("${CC}", macros) == "cc"
    assert _expand("$(MISSING)", macros) == ""
    assert _expand("$$", macros) == "$"


def test_parse_rules_and_macros():
    macros, rules = _parse_makefile(
        "CC = cc\n"
        "OBJS = a.o b.o\n"
        "\n"
        "prog: $(OBJS)\n"
        "\t$(CC) -o prog $(OBJS)\n"
        "\n"
        "# comment\n"
        "a.o: a.c\n"
        "\tcc -c a.c\n"
    )
    assert macros["CC"] == "cc"
    assert [r.target for r in rules] == ["prog", "a.o"]
    assert rules[0].deps == ["a.o", "b.o"]
    assert rules[0].recipe == ["$(CC) -o prog $(OBJS)"]


def test_macro_expansion_in_definitions():
    macros, _ = _parse_makefile("A = x\nB = $(A)y\n")
    assert macros["B"] == "xy"


# -- end-to-end ---------------------------------------------------------------

@pytest.fixture
def build_world(world):
    world.mkdir_p("/home/mbj/build")
    world.write_file("/home/mbj/build/in.txt", "source data\n")
    world.write_file(
        "/home/mbj/build/Makefile",
        "out.txt: in.txt\n"
        "\tcp in.txt out.txt\n",
    )
    return world


def test_make_builds_missing_target(build_world, sh):
    code, out = sh("cd /home/mbj/build; make")
    assert code == 0
    assert "cp in.txt out.txt" in out
    assert build_world.read_file("/home/mbj/build/out.txt") == b"source data\n"


def test_make_up_to_date_skips(build_world, sh):
    sh("cd /home/mbj/build; make")
    code, out = sh("cd /home/mbj/build; make")
    assert code == 0
    assert "up to date" in out


def test_make_rebuilds_after_touch(build_world, sh):
    sh("cd /home/mbj/build; make")
    build_world.clock.advance(5_000_000)
    sh("cd /home/mbj/build; touch in.txt")
    code, out = sh("cd /home/mbj/build; make")
    assert "cp in.txt out.txt" in out


def test_make_missing_rule_fails(build_world, sh):
    code, out = sh("cd /home/mbj/build; make nonsense")
    assert code == 2
    assert "don't know how to make" in out


def test_make_recipe_failure_stops(build_world, sh):
    build_world.write_file(
        "/home/mbj/build/Makefile",
        "out: \n"
        "\tfalse\n"
        "\techo never reached > /home/mbj/build/never\n",
    )
    code, out = sh("cd /home/mbj/build; make")
    assert code == 1
    assert "Error code 1" in out
    assert not build_world.lookup_host("/home/mbj/build").contains("never")


def test_make_silent_recipes(build_world, sh):
    build_world.write_file(
        "/home/mbj/build/Makefile",
        "quiet:\n"
        "\t@echo silent recipe output\n",
    )
    code, out = sh("cd /home/mbj/build; make")
    assert "silent recipe output" in out
    # the command line itself is not echoed
    assert "@echo" not in out


def test_make_automatic_variables(build_world, sh):
    build_world.write_file(
        "/home/mbj/build/Makefile",
        "target.txt: in.txt\n"
        "\techo building $@ from $< > target.txt\n",
    )
    sh("cd /home/mbj/build; make")
    assert build_world.read_file("/home/mbj/build/target.txt") == (
        b"building target.txt from in.txt\n"
    )


def test_make_dependency_chain(build_world, sh):
    build_world.write_file(
        "/home/mbj/build/Makefile",
        "final: middle\n"
        "\tcp middle final\n"
        "middle: in.txt\n"
        "\tcp in.txt middle\n",
    )
    code, out = sh("cd /home/mbj/build; make")
    assert code == 0
    assert out.index("cp in.txt middle") < out.index("cp middle final")
    assert build_world.read_file("/home/mbj/build/final") == b"source data\n"


def test_make_f_flag(build_world, sh):
    build_world.write_file(
        "/home/mbj/build/Other.mk", "it:\n\techo from other makefile\n"
    )
    code, out = sh("cd /home/mbj/build; make -f Other.mk")
    assert "from other makefile" in out


def test_make_explicit_targets(build_world, sh):
    build_world.write_file(
        "/home/mbj/build/Makefile",
        "a:\n\techo made a\nb:\n\techo made b\n",
    )
    code, out = sh("cd /home/mbj/build; make b")
    assert "made b" in out
    assert "made a" not in out


def test_make_workload_end_to_end(world):
    from repro.kernel.proc import WEXITSTATUS
    from repro.workloads import make_programs

    make_programs.setup(world)
    status = make_programs.run(world)
    assert WEXITSTATUS(status) == 0
    world.console.take_output()  # drain the first build's output
    # All eight programs exist and are executables.
    for i in range(1, 9):
        image = world.read_file("%s/prog%d" % (make_programs.SRC_DIR, i))
        assert image.startswith(b"!executable")
    # Exactly the paper's 64 fork/execve pairs.
    assert world.fork_total == 64
    assert world.exec_total == 64
    # A second make is a no-op.
    status = world.run("/bin/sh", ["sh", "-c", "cd %s; make" % make_programs.SRC_DIR])
    out = world.console.take_output().decode()
    assert "up to date" in out
