"""The flow rules (repro.lint.flow) and their CFG substrate.

Covers, per the agentflow acceptance criteria:

* CFG construction — try/finally inlining, nested ``with``,
  ``while``/``else``, constant-test loops, implicit-exit reachability;
* true-positive / true-negative fixture pairs for F001..F005 against
  the mini protocol tree;
* the checked-in **pre-fix PR 5** creat/symlink fixtures
  (tests/fixtures/flow/): F001 must flag both inode leaks statically,
  and must stay quiet on the fixed shapes;
* the crash-proof sweep (L000), the occurrence-indexed fingerprints,
  ``--diff`` restriction, SARIF output, and the repo-wide self-run —
  agents, toolkit, *and* kernel — linting clean.
"""

import ast
import json
import os
import subprocess
import textwrap

import pytest

from repro.lint import engine, run_lint
from repro.lint.cfg import build_cfg
from repro.lint.sarif import to_sarif
from tests.test_lint import (
    MINI_ERRNO,
    MINI_SYSENT,
    MINI_SYMBOLIC,
    REPO_ROOT,
    _run_cli,
    lint_source,
    rules_fired,
)

FLOW_FIXTURES = os.path.join(REPO_ROOT, "tests", "fixtures", "flow")


@pytest.fixture
def proto_root(tmp_path):
    """A miniature protocol tree (sysent/errno/symbolic) for fixtures."""
    (tmp_path / "kernel").mkdir()
    (tmp_path / "toolkit").mkdir()
    (tmp_path / "kernel" / "sysent.py").write_text(MINI_SYSENT)
    (tmp_path / "kernel" / "errno.py").write_text(MINI_ERRNO)
    (tmp_path / "toolkit" / "symbolic.py").write_text(MINI_SYMBOLIC)
    return tmp_path


def _cfg(source):
    tree = ast.parse(textwrap.dedent(source))
    func = tree.body[0]
    return build_cfg(func), func


def _reachable_ids(cfg):
    return {id(node) for node in cfg.reachable()}


# -- CFG construction ------------------------------------------------------


def test_cfg_try_finally_inlines_one_copy_per_route():
    cfg, func = _cfg("""
    def f():
        try:
            risky()
            return 1
        finally:
            cleanup()
    """)
    reach = _reachable_ids(cfg)
    assert id(cfg.exit_return) in reach
    assert id(cfg.exit_raise) in reach
    # Every path out of the body runs cleanup() first, so the return
    # and the exception routes each get their own inlined copy.
    cleanup = func.body[0].finalbody[0]
    assert len(cfg.nodes_for(cleanup)) >= 2
    # The body ends in return: nothing falls off the end.
    assert not cfg.implicit_exit_reachable()


def test_cfg_try_finally_normal_completion_gets_its_own_copy():
    cfg, func = _cfg("""
    def f():
        try:
            step()
        finally:
            cleanup()
        return 0
    """)
    cleanup = func.body[0].finalbody[0]
    # Normal completion and exception propagation: two copies.
    assert len(cfg.nodes_for(cleanup)) == 2
    assert id(cfg.exit_return) in _reachable_ids(cfg)


def test_cfg_nested_with_chains_one_header_per_item():
    cfg, func = _cfg("""
    def f():
        with first() as a, second() as b:
            use(a, b)
        return 0
    """)
    with_stmt = func.body[0]
    # One header node per context manager, holding only its own
    # context expression (an analysis never sees into the body).
    headers = cfg.nodes_for(with_stmt)
    assert len(headers) == 2
    assert {h.expr.func.id for h in headers} == {"first", "second"}
    assert id(cfg.exit_return) in _reachable_ids(cfg)
    assert not cfg.implicit_exit_reachable()


def test_cfg_while_else_runs_on_normal_exit():
    cfg, func = _cfg("""
    def f():
        while more():
            if stop():
                break
            step()
        else:
            wrapup()
        return 0
    """)
    reach = _reachable_ids(cfg)
    wrapup = func.body[0].orelse[0]
    (node,) = cfg.nodes_for(wrapup)
    assert id(node) in reach
    assert id(cfg.exit_return) in reach
    assert not cfg.implicit_exit_reachable()


def test_cfg_while_true_without_break_never_falls_through():
    cfg, _func = _cfg("""
    def f():
        while True:
            step()
    """)
    reach = _reachable_ids(cfg)
    assert not cfg.implicit_exit_reachable()
    assert id(cfg.exit_return) not in reach
    # step() may raise: the exception route is the only way out.
    assert id(cfg.exit_raise) in reach


def test_cfg_while_true_break_reaches_the_implicit_exit():
    cfg, _func = _cfg("""
    def f():
        while True:
            if done():
                break
    """)
    assert cfg.implicit_exit_reachable()


def test_cfg_if_without_else_falls_through():
    cfg, _func = _cfg("""
    def f(x):
        if x:
            return 1
    """)
    assert cfg.implicit_exit_reachable()
    assert id(cfg.exit_return) in _reachable_ids(cfg)


# -- F001: resource leak on error path -------------------------------------


def test_f001_fires_on_unguarded_commit(tmp_path, proto_root):
    result = lint_source(tmp_path, proto_root, """
    def make_file(fs, parent, name, cred):
        node = fs.create_file(0o644, cred)
        fs.link(parent, name, node)
        return node
    """, in_agents=False)
    assert rules_fired(result) == {"F001"}
    (finding,) = result.active
    assert finding.symbol == "make_file"
    assert "'node' acquired from create_file()" in finding.message
    assert "leaks when the call at line" in finding.message


def test_f001_fires_on_explicit_raise_path(tmp_path, proto_root):
    result = lint_source(tmp_path, proto_root, """
    def checked(fs, parent, cred, ok):
        node = fs.create_file(0o644, cred)
        if not ok:
            raise ValueError("rejected after allocation")
        fs.link(parent, "name", node)
        return node
    """, in_agents=False)
    assert rules_fired(result) == {"F001"}


def test_f001_quiet_when_failure_path_releases(tmp_path, proto_root):
    result = lint_source(tmp_path, proto_root, """
    def make_file(fs, parent, name, cred):
        node = fs.create_file(0o644, cred)
        try:
            fs.link(parent, name, node)
        except Exception:
            fs.maybe_reclaim(node)
            raise
        return node
    """, in_agents=False)
    assert rules_fired(result) == set()


def test_f001_quiet_when_resource_escapes(tmp_path, proto_root):
    result = lint_source(tmp_path, proto_root, """
    def returned(fs, cred):
        node = fs.create_file(0o644, cred)
        return node

    def stored(self, fs, cred):
        node = fs.create_file(0o644, cred)
        self.staged = node
        return 0
    """, in_agents=False)
    assert rules_fired(result) == set()


def test_f001_flags_both_prefix_pr5_fixture_bugs():
    # The acceptance criterion: the checked-in pre-fix creat/symlink
    # shapes — the exact bugs PR 5's fault injection caught — are
    # flagged statically.
    result = run_lint(
        [os.path.join(FLOW_FIXTURES, "prefix_pathcalls.py")],
        check_parity=False)
    assert [f.rule for f in result.active] == ["F001", "F001"]
    assert {f.symbol for f in result.active} == {"sys_open", "sys_symlink"}


def test_f001_quiet_on_postfix_pr5_fixture():
    result = run_lint(
        [os.path.join(FLOW_FIXTURES, "postfix_pathcalls.py")],
        check_parity=False)
    assert result.active == []


# -- F002: path-sensitive refcount balance ----------------------------------


def test_f002_fires_on_early_return_leak(tmp_path, proto_root):
    result = lint_source(tmp_path, proto_root, """
    from repro.toolkit.descriptors import DescSymbolicSyscall

    class EarlyOut(DescSymbolicSyscall):
        def sys_close(self, fd):
            obj = self.dset.lookup(fd).open_object.incref()
            if fd < 0:
                return 0
            obj.decref()
            return super().sys_close(fd)
    """)
    assert rules_fired(result) == {"F002"}
    (finding,) = result.active
    assert "1 more open-object reference(s)" in finding.message
    assert "ending in return" in finding.message


def test_f002_fires_on_over_release(tmp_path, proto_root):
    result = lint_source(tmp_path, proto_root, """
    from repro.toolkit.descriptors import DescSymbolicSyscall

    class Dropper(DescSymbolicSyscall):
        def sys_close(self, fd):
            obj = self.dset.lookup(fd).open_object
            obj.decref()
            if fd > 100:
                obj.decref()
            return super().sys_close(fd)
    """)
    assert rules_fired(result) == {"F002"}
    (finding,) = result.active
    assert "decref" in finding.message
    assert "freed while still referenced" in finding.message


def test_f002_quiet_when_reference_escapes(tmp_path, proto_root):
    result = lint_source(tmp_path, proto_root, """
    from repro.toolkit.descriptors import DescSymbolicSyscall

    class Handing(DescSymbolicSyscall):
        def sys_read(self, fd, count):
            obj = self.dset.lookup(fd).open_object.incref()
            self.held[fd] = obj
            return super().sys_read(fd, count)

        def sys_open(self, path, flags=0, mode=0o666):
            obj = self.pset.open(path, flags, mode).incref()
            return obj
    """)
    assert rules_fired(result) == set()


# -- F003: errno discipline on all paths ------------------------------------


def test_f003_fires_on_fall_through_and_bare_return(tmp_path, proto_root):
    result = lint_source(tmp_path, proto_root, """
    def sys_chmod(proc, path, mode):
        if mode:
            return 0

    def sys_sync(proc):
        return
    """, in_agents=False)
    f003 = [f for f in result.active if f.rule == "F003"]
    assert rules_fired(result) == {"F003"}
    assert len(f003) == 2
    messages = "\n".join(f.message for f in f003)
    assert "falls off the end" in messages
    assert "returns bare" in messages


def test_f003_fires_on_agent_override_fall_through(tmp_path, proto_root):
    result = lint_source(tmp_path, proto_root, """
    from repro.toolkit.symbolic import SymbolicSyscall

    class Partial(SymbolicSyscall):
        def sys_read(self, fd, count):
            if fd == 0:
                return super().sys_read(fd, count)
    """)
    assert "F003" in rules_fired(result)
    (finding,) = [f for f in result.active if f.rule == "F003"]
    assert finding.symbol == "Partial.sys_read"


def test_f003_quiet_when_every_path_returns_or_raises(tmp_path,
                                                      proto_root):
    result = lint_source(tmp_path, proto_root, """
    def sys_chmod(proc, path, mode):
        if mode < 0:
            raise ValueError(mode)
        return 0
    """, in_agents=False)
    assert rules_fired(result) == set()


# -- F004: unbounded block reachable from a handler --------------------------


def test_f004_fires_through_helper_reachable_from_handler(tmp_path,
                                                          proto_root):
    result = lint_source(tmp_path, proto_root, """
    from repro.toolkit.symbolic import SymbolicSyscall

    class Remote(SymbolicSyscall):
        def sys_read(self, fd, count):
            self._await()
            return super().sys_read(fd, count)

        def _await(self):
            return self.replies.get()
    """)
    assert rules_fired(result) == {"F004"}
    (finding,) = result.active
    assert finding.symbol == "Remote._await"
    assert ".get() with no timeout" in finding.message


def test_f004_quiet_for_bounded_and_unreachable_blocking(tmp_path,
                                                         proto_root):
    result = lint_source(tmp_path, proto_root, """
    from repro.toolkit.symbolic import SymbolicSyscall

    class Bounded(SymbolicSyscall):
        def sys_read(self, fd, count):
            self._await()
            return super().sys_read(fd, count)

        def _await(self):
            if not self.flags.get("ready"):
                return None
            self.lock.acquire(False)
            self.worker.join(0.5)
            return self.replies.get(timeout=1.0)

        def _maintenance_only(self):
            return self.replies.get()
    """)
    assert rules_fired(result) == set()


# -- F005: must-delegate-or-fail --------------------------------------------


def test_f005_fires_on_a_path_that_never_delegates(tmp_path, proto_root):
    result = lint_source(tmp_path, proto_root, """
    from repro.toolkit.symbolic import SymbolicSyscall

    class Caching(SymbolicSyscall):
        def sys_open(self, path, flags=0, mode=0o666):
            if path in self.cache:
                return self.cache[path]
            return super().sys_open(path, flags, mode)
    """)
    assert rules_fired(result) == {"F005"}
    (finding,) = result.active
    assert finding.symbol == "Caching.sys_open"
    assert "silently absorbed" in finding.message


def test_f005_quiet_for_raising_and_delegating_paths(tmp_path, proto_root):
    result = lint_source(tmp_path, proto_root, """
    from repro.kernel.errno import EPERM, SyscallError
    from repro.toolkit.symbolic import SymbolicSyscall

    class Denier(SymbolicSyscall):
        def sys_open(self, path, flags=0, mode=0o666):
            raise SyscallError(EPERM, path)

        def sys_read(self, fd, count):
            data = super().sys_read(fd, count)
            return data
    """)
    assert rules_fired(result) == set()


# -- F006: unresolved journal transaction ------------------------------------


def test_f006_fires_when_no_path_resolves_the_txn(tmp_path, proto_root):
    result = lint_source(tmp_path, proto_root, """
    def torn_link(self, dirnode, name, inode):
        txn = self.journal_begin("link")
        if txn is None:
            return 0
        txn.intent("enter", dirnode.ino, name, inode.ino)
        dirnode.enter(name, inode)
        return 0
    """, in_agents=False)
    assert rules_fired(result) == {"F006"}
    (finding,) = result.active
    assert finding.symbol == "torn_link"
    assert "journal transaction 'txn'" in finding.message
    assert "replays as torn" in finding.message


def test_f006_fires_on_explicit_raise_before_commit(tmp_path, proto_root):
    result = lint_source(tmp_path, proto_root, """
    def raise_path(self, op, ok):
        txn = self.journal_begin(op)
        if not ok:
            raise ValueError("rejected after begin")
        self.journal_commit(txn)
        return 0
    """, in_agents=False)
    assert rules_fired(result) == {"F006"}


def test_f006_quiet_on_the_ufs_abort_on_unwind_shape(tmp_path, proto_root):
    # The in-tree shape: mutate under try, abort on SyscallError and
    # re-raise, commit on the normal path (repro.kernel.ufs.link).
    result = lint_source(tmp_path, proto_root, """
    def good_link(self, dirnode, name, inode):
        txn = self.journal_begin("link")
        try:
            dirnode.enter(name, inode)
            inode.nlink += 1
        except Exception:
            self.journal_abort(txn)
            raise
        self.journal_commit(txn)
        return 0
    """, in_agents=False)
    assert rules_fired(result) == set()


def test_f006_quiet_when_the_txn_escapes_or_is_handed_off(tmp_path,
                                                          proto_root):
    # Storing the live transaction transfers the resolution obligation;
    # so does handing it to a helper, provided the exception edge still
    # aborts (the _make/_alloc_inode split in repro.kernel.ufs).
    result = lint_source(tmp_path, proto_root, """
    from repro.kernel.errno import SyscallError

    def stashed(self, op):
        self.pending = self.journal_begin(op)
        return 0

    def delegating(self, cls, mode):
        txn = self.journal_begin("alloc")
        try:
            inode = self._alloc_inode(txn, cls, mode)
        except SyscallError:
            self.journal_abort(txn)
            raise
        self.journal_commit(txn)
        return inode
    """, in_agents=False)
    assert rules_fired(result) == set()


# -- L000: the crash-proof sweep --------------------------------------------


def test_l000_syntax_error_does_not_abort_sweep(tmp_path, proto_root):
    agents = tmp_path / "agents"
    agents.mkdir()
    (agents / "broken.py").write_text("def broken(:\n    pass\n")
    (agents / "typo.py").write_text(textwrap.dedent("""
    from repro.toolkit.symbolic import SymbolicSyscall

    class Typo(SymbolicSyscall):
        def sys_opne(self, path):
            return self.syscall_down("open", path)
    """))
    result = run_lint([str(agents)], protocol_root=str(proto_root),
                      check_parity=False)
    # The broken file is reported, and the sweep still reached typo.py.
    assert len(result.files) == 2
    assert rules_fired(result) == {"L000", "L001"}
    (l000,) = result.internal_errors
    assert l000.symbol == "<file>"
    assert "cannot parse" in l000.message
    assert l000.path.endswith("broken.py")


def test_l000_turns_into_cli_exit_2(tmp_path, proto_root):
    agents = tmp_path / "agents"
    agents.mkdir()
    (agents / "broken.py").write_text("def broken(:\n    pass\n")
    run = _run_cli(["--protocol-root", str(proto_root), "--no-parity",
                    str(agents)])
    assert run.returncode == 2
    assert "could not be analyzed" in run.stderr


# -- occurrence-indexed fingerprints ----------------------------------------


def test_same_symbol_findings_get_distinct_fingerprints(tmp_path,
                                                        proto_root):
    source = """
    def fill(fs, parent, cred):
        first = fs.create_file(0o644, cred)
        second = fs.create_file(0o644, cred)
        fs.link(parent, "a", first)
        fs.link(parent, "b", second)
        return 0
    """
    directory = tmp_path / "plain"
    directory.mkdir()
    target = directory / "fill.py"
    target.write_text(textwrap.dedent(source))
    result = run_lint([str(target)], protocol_root=str(proto_root),
                      check_parity=False)
    assert [f.rule for f in result.active] == ["F001", "F001"]
    one, two = result.active
    assert one.fingerprint() != two.fingerprint()
    assert two.fingerprint() == one.fingerprint() + "#1"
    # A baseline naming only the first fingerprint absorbs exactly one
    # finding — the collision fix: fixing one baselined leak cannot
    # silently re-key the entry onto the other.
    baseline = {one.fingerprint(): "known debt"}
    again = run_lint([str(target)], protocol_root=str(proto_root),
                     check_parity=False, baseline=baseline)
    assert len(again.baselined) == 1
    assert len(again.active) == 1


# -- --diff: restrict the sweep to changed files -----------------------------


def _git(repo, *args):
    subprocess.run(["git", "-C", str(repo)] + list(args), check=True,
                   capture_output=True)


def test_diff_restricts_sweep_to_changed_files(tmp_path, proto_root,
                                               monkeypatch):
    repo = tmp_path / "work"
    repo.mkdir()
    _git(repo, "init", "-q")
    (repo / "one.py").write_text("x = 1\n")
    (repo / "two.py").write_text("y = 1\n")
    _git(repo, "add", "-A")
    _git(repo, "-c", "user.email=lint@test", "-c", "user.name=lint",
         "commit", "-q", "-m", "seed")
    (repo / "two.py").write_text("y = 2\n")
    (repo / "three.py").write_text("z = 3\n")  # untracked counts too

    changed = engine.changed_files("HEAD", cwd=str(repo))
    assert {os.path.basename(p) for p in changed} == {"two.py", "three.py"}

    monkeypatch.chdir(repo)
    result = run_lint([str(repo)], protocol_root=str(proto_root),
                      check_parity=False, diff_ref="HEAD")
    assert sorted(os.path.basename(p) for p in result.files) == [
        "three.py", "two.py"]


# -- SARIF output ------------------------------------------------------------


def test_sarif_document_shape(tmp_path, proto_root):
    result = lint_source(tmp_path, proto_root, """
    from repro.toolkit.symbolic import SymbolicSyscall

    class Odd(SymbolicSyscall):
        def sys_opne(self, path):
            return self.syscall_down("open", path)

        # repro-lint: disable=L005 -- fixture swallows on purpose
        def signal_handler(self, signum, code, context):
            self.seen = signum
    """)
    assert rules_fired(result) == {"L001"}
    doc = to_sarif(result)
    assert doc["version"] == "2.1.0"
    (run,) = doc["runs"]
    rules = run["tool"]["driver"]["rules"]
    from repro.lint import rule_ids
    assert [r["id"] for r in rules] == rule_ids()
    # The deprecated alias advertises its successor.
    (l003,) = [r for r in rules if r["id"] == "L003"]
    assert l003["relationships"][0]["target"]["id"] == "F002"
    # One result per finding, suppressed ones marked as such.
    assert len(run["results"]) == len(result.findings)
    by_rule = {r["ruleId"]: r for r in run["results"]}
    active = by_rule["L001"]
    (finding,) = result.active
    location = active["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith(".py")
    assert location["region"]["startLine"] == finding.line
    assert location["region"]["startColumn"] == finding.col + 1
    assert active["partialFingerprints"]["reproLint/v1"] == \
        finding.fingerprint()
    assert "suppressions" not in active
    suppressed = by_rule["L005"]
    assert suppressed["suppressions"][0]["kind"] == "inSource"
    json.dumps(doc)  # must serialize as-is


def test_cli_writes_sarif_file(tmp_path, proto_root):
    agents = tmp_path / "agents"
    agents.mkdir()
    (agents / "bad.py").write_text(
        "from repro.toolkit.symbolic import SymbolicSyscall\n"
        "class A(SymbolicSyscall):\n"
        "    def sys_opne(self):\n"
        "        return self.syscall_down('open')\n")
    sarif_path = tmp_path / "lint.sarif"
    run = _run_cli(["--protocol-root", str(proto_root), "--no-parity",
                    "--sarif", str(sarif_path), str(agents)])
    assert run.returncode == 1
    doc = json.loads(sarif_path.read_text())
    assert doc["runs"][0]["results"]


# -- the repo itself, kernel included ----------------------------------------


def test_repo_source_tree_lints_clean_including_kernel():
    result = run_lint([os.path.join(REPO_ROOT, "src", "repro")])
    assert result.internal_errors == []
    assert result.active == [], [f.render() for f in result.active]
