"""Tests for layer 2 (descriptor side): DescriptorSet/Descriptor/OpenObject."""

import pytest

from repro.kernel.ofile import F_DUPFD, O_CREAT, O_RDONLY, O_RDWR, O_WRONLY
from repro.kernel.proc import WEXITSTATUS
from repro.kernel.sysent import number_of
from repro.toolkit import run_under_agent
from repro.toolkit.descriptors import DescSymbolicSyscall, OpenObject

NR = {n: number_of(n) for n in (
    "open", "read", "write", "close", "dup", "dup2", "fcntl", "pipe",
    "fork", "wait", "getpid", "fstat", "lseek",
)}


class RecordingObject(OpenObject):
    """Open object that records its lifecycle for assertions."""

    log = []

    def last_close(self):
        RecordingObject.log.append("last_close")

    def read(self, fd, count):
        RecordingObject.log.append(("read", fd, count))
        return super().read(fd, count)


class RecordingAgent(DescSymbolicSyscall):
    class DSET(DescSymbolicSyscall.DESCRIPTOR_SET_CLASS):
        OPEN_OBJECT_CLASS = RecordingObject

    DESCRIPTOR_SET_CLASS = DSET


@pytest.fixture(autouse=True)
def _clear_log():
    RecordingObject.log = []


def test_descriptor_materializes_on_first_use(world):
    world.write_file("/tmp/f", "contents")
    agent = RecordingAgent()

    def main(ctx):
        agent.attach(ctx)
        fd = ctx.trap(NR["open"], "/tmp/f", O_RDONLY, 0)
        assert ctx.trap(NR["read"], fd, 4) == b"cont"
        table = agent.dset.table()
        assert fd in table
        return 0

    assert WEXITSTATUS(world.run_entry(main)) == 0
    assert ("read", 3, 4) in RecordingObject.log


def test_dup_shares_open_object(world):
    world.write_file("/tmp/f", "x")
    agent = RecordingAgent()

    def main(ctx):
        agent.attach(ctx)
        fd = ctx.trap(NR["open"], "/tmp/f", O_RDONLY, 0)
        dup_fd = ctx.trap(NR["dup"], fd)
        table = agent.dset.table()
        assert table[fd].open_object is table[dup_fd].open_object
        assert table[fd].open_object.refcount == 2
        ctx.trap(NR["close"], fd)
        assert table[dup_fd].open_object.refcount == 1
        ctx.trap(NR["close"], dup_fd)
        return 0

    world.run_entry(main)
    assert RecordingObject.log.count("last_close") == 1


def test_dup2_and_fcntl_dupfd_share(world):
    world.write_file("/tmp/f", "x")
    agent = RecordingAgent()

    def main(ctx):
        agent.attach(ctx)
        fd = ctx.trap(NR["open"], "/tmp/f", O_RDONLY, 0)
        ctx.trap(NR["dup2"], fd, 9)
        high = ctx.trap(NR["fcntl"], fd, F_DUPFD, 30)
        table = agent.dset.table()
        obj = table[fd].open_object
        assert table[9].open_object is obj
        assert table[high].open_object is obj
        assert obj.refcount == 3
        return 0

    assert WEXITSTATUS(world.run_entry(main)) == 0


def test_fork_copies_table_sharing_objects(world):
    world.write_file("/tmp/f", "x")
    agent = RecordingAgent()
    shared = {}

    def main(ctx):
        agent.attach(ctx)
        fd = ctx.trap(NR["open"], "/tmp/f", O_RDONLY, 0)
        ctx.trap(NR["read"], fd, 1)  # materialise the descriptor
        shared["parent_obj"] = agent.dset.table()[fd].open_object

        def child(cctx):
            table = agent.dset.table()
            shared["child_obj"] = table[fd].open_object
            return 0

        ctx.trap(NR["fork"], agent.wrap_fork_entry(child))
        ctx.trap(NR["wait"])
        return 0

    world.run_entry(main)
    assert shared["parent_obj"] is shared["child_obj"]


def test_exit_releases_table(world):
    world.write_file("/tmp/f", "x")
    agent = RecordingAgent()

    def main(ctx):
        agent.attach(ctx)
        fd = ctx.trap(NR["open"], "/tmp/f", O_RDONLY, 0)
        ctx.trap(NR["read"], fd, 1)  # materialise the descriptor
        return 0  # exit without closing

    world.run_entry(main)
    assert not agent.dset._tables  # released at exit
    assert "last_close" in RecordingObject.log


def test_pipe_creates_two_objects(world):
    agent = RecordingAgent()

    def main(ctx):
        agent.attach(ctx)
        rfd, wfd = ctx.trap(NR["pipe"])
        table = agent.dset.table()
        assert table[rfd].open_object is not table[wfd].open_object
        assert table[rfd].open_object.kind == "pipe"
        ctx.trap(NR["write"], wfd, b"through the layer")
        assert ctx.trap(NR["read"], rfd, 100) == b"through the layer"
        return 0

    assert WEXITSTATUS(world.run_entry(main)) == 0


def test_close_of_unseen_descriptor_passes_through(world):
    agent = RecordingAgent()

    def main(ctx):
        agent.attach(ctx)
        # fd 0 (console) was opened before the agent attached.
        ctx.trap(NR["close"], 0)
        return 0

    assert WEXITSTATUS(world.run_entry(main)) == 0


def test_descriptor_agent_transparent_for_shell(world):
    status = run_under_agent(
        world, RecordingAgent(), "/bin/sh",
        ["sh", "-c", "echo x > /tmp/o; cat /tmp/o | wc"],
    )
    assert WEXITSTATUS(status) == 0
    out = world.console.take_output().decode()
    assert out.split()[:3] == ["1", "1", "2"]
