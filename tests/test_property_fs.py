"""Property-based tests: the filesystem against simple reference models."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.kernel import Kernel
from repro.kernel.ofile import (
    O_CREAT,
    O_RDWR,
    SEEK_SET,
)
from repro.kernel.sysent import number_of

NR = {n: number_of(n) for n in (
    "open", "read", "write", "lseek", "close", "ftruncate", "mkdir",
    "unlink", "stat", "rename", "getdirentries",
)}

_settings = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

write_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=300),  # offset
        st.binary(min_size=0, max_size=120),      # data
    ),
    min_size=1,
    max_size=12,
)


@given(ops=write_ops)
@_settings
def test_writes_match_bytearray_model(ops):
    """Random seek+write sequences equal the obvious bytearray model."""
    kernel = Kernel()
    model = bytearray()
    result = {}

    def main(ctx):
        fd = ctx.trap(NR["open"], "/tmp/model", O_RDWR | O_CREAT, 0o644)
        for offset, data in ops:
            ctx.trap(NR["lseek"], fd, offset, SEEK_SET)
            ctx.trap(NR["write"], fd, data)
            if offset > len(model):
                model.extend(b"\0" * (offset - len(model)))
            model[offset : offset + len(data)] = data
        ctx.trap(NR["lseek"], fd, 0, SEEK_SET)
        result["data"] = ctx.trap(NR["read"], fd, 10_000)
        result["size"] = ctx.trap(NR["stat"], "/tmp/model").st_size
        return 0

    kernel.run_entry(main)
    assert result["data"] == bytes(model)
    assert result["size"] == len(model)


@given(
    truncations=st.lists(st.integers(min_value=0, max_value=400), min_size=1,
                         max_size=8),
    initial=st.binary(min_size=0, max_size=300),
)
@_settings
def test_truncate_matches_model(truncations, initial):
    kernel = Kernel()
    model = bytearray(initial)
    result = {}

    def main(ctx):
        fd = ctx.trap(NR["open"], "/tmp/t", O_RDWR | O_CREAT, 0o644)
        ctx.trap(NR["write"], fd, initial)
        for length in truncations:
            ctx.trap(NR["ftruncate"], fd, length)
            if length < len(model):
                del model[length:]
            else:
                model.extend(b"\0" * (length - len(model)))
        ctx.trap(NR["lseek"], fd, 0, SEEK_SET)
        result["data"] = ctx.trap(NR["read"], fd, 10_000)
        return 0

    kernel.run_entry(main)
    assert result["data"] == bytes(model)


_names = st.text(
    alphabet=st.sampled_from("abcdefg"), min_size=1, max_size=4
)


@given(names=st.lists(_names, min_size=1, max_size=10, unique=True))
@_settings
def test_directory_listing_matches_created_names(names):
    kernel = Kernel()
    result = {}

    def main(ctx):
        ctx.trap(NR["mkdir"], "/tmp/d", 0o755)
        for name in names:
            fd = ctx.trap(NR["open"], "/tmp/d/" + name, O_CREAT, 0o644)
            ctx.trap(NR["close"], fd)
        fd = ctx.trap(NR["open"], "/tmp/d", 0, 0)
        entries = ctx.trap(NR["getdirentries"], fd, 1000)
        result["names"] = [
            e.d_name for e in entries if e.d_name not in (".", "..")
        ]
        return 0

    kernel.run_entry(main)
    assert sorted(result["names"]) == sorted(names)


@given(
    names=st.lists(_names, min_size=2, max_size=6, unique=True),
    data=st.data(),
)
@_settings
def test_rename_preserves_contents(names, data):
    kernel = Kernel()
    source = names[0]
    target = names[1]
    payload = data.draw(st.binary(min_size=0, max_size=100))
    result = {}

    def main(ctx):
        fd = ctx.trap(NR["open"], "/tmp/" + source, O_RDWR | O_CREAT, 0o644)
        ctx.trap(NR["write"], fd, payload)
        ctx.trap(NR["close"], fd)
        ctx.trap(NR["rename"], "/tmp/" + source, "/tmp/" + target)
        fd = ctx.trap(NR["open"], "/tmp/" + target, 0, 0)
        result["data"] = ctx.trap(NR["read"], fd, 10_000)
        return 0

    kernel.run_entry(main)
    assert result["data"] == payload
