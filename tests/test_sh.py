"""Tests for the shell."""

import pytest

from repro.kernel.proc import WEXITSTATUS
from repro.programs.sh import Shell, _parse_pipeline, _substitute, _tokenize


# -- tokenizer units ------------------------------------------------------

def test_tokenize_simple():
    assert _tokenize("echo hello world") == ["echo", "hello", "world"]


def test_tokenize_quotes():
    assert _tokenize("echo 'a b' \"c d\"") == ["echo", "a b", "c d"]


def test_tokenize_redirection_operators():
    assert _tokenize("a>b") == ["a", ">", "b"]
    assert _tokenize("a >> b") == ["a", ">>", "b"]
    assert _tokenize("a|b<c") == ["a", "|", "b", "<", "c"]


def test_tokenize_comments():
    assert _tokenize("echo hi # a comment") == ["echo", "hi"]
    assert _tokenize("# only comment") == []


def test_substitute_positionals():
    assert _substitute("$1-$2", ["sh", "one", "two"], 0) == "one-two"
    assert _substitute("$9", ["sh"], 0) == ""
    assert _substitute("rc=$?", ["sh"], 3) == "rc=3"


def test_parse_pipeline():
    stages = _parse_pipeline(_tokenize("cat < in | grep x | wc > out"))
    assert len(stages) == 3
    assert stages[0].argv == ["cat"] and stages[0].stdin == "in"
    assert stages[1].argv == ["grep", "x"]
    assert stages[2].argv == ["wc"] and stages[2].stdout == "out"
    assert stages[2].append is False


# -- end-to-end behaviour ------------------------------------------------------

def test_simple_command(sh):
    code, out = sh("echo hello")
    assert code == 0
    assert out == "hello\n"


def test_sequencing_and_status(sh):
    code, out = sh("false; echo ran; true")
    assert code == 0
    assert "ran" in out


def test_exit_status_propagates(sh):
    code, _ = sh("false")
    assert code == 1
    code, _ = sh("exit 7")
    assert code == 7


def test_not_found_127(sh):
    code, out = sh("no-such-command")
    assert code == 127
    assert "not found" in out


def test_output_redirection(world, sh):
    code, _ = sh("echo to file > /tmp/out.txt")
    assert code == 0
    assert world.read_file("/tmp/out.txt") == b"to file\n"


def test_append_redirection(world, sh):
    sh("echo one > /tmp/log")
    sh("echo two >> /tmp/log")
    assert world.read_file("/tmp/log") == b"one\ntwo\n"


def test_input_redirection(world, sh):
    world.write_file("/tmp/in.txt", "redirected input\n")
    code, out = sh("cat < /tmp/in.txt")
    assert code == 0
    assert out == "redirected input\n"


def test_pipeline_two_stages(world, sh):
    world.write_file("/tmp/words", "apple\nbanana\napricot\n")
    code, out = sh("cat /tmp/words | grep ap")
    assert code == 0
    assert out == "apple\napricot\n"


def test_pipeline_three_stages(world, sh):
    world.write_file("/tmp/w2", "a\nb\nc\n")
    code, out = sh("cat /tmp/w2 | grep a | wc")
    assert code == 0
    assert out.split()[:3] == ["1", "1", "2"]


def test_pipeline_status_is_last_stage(world, sh):
    world.write_file("/tmp/w3", "xyz\n")
    code, _ = sh("cat /tmp/w3 | grep nothere")
    assert code == 1  # grep found nothing


def test_cd_builtin(world, sh):
    world.mkdir_p("/tmp/somewhere")
    world.write_file("/tmp/somewhere/marker", "found me")
    code, out = sh("cd /tmp/somewhere; cat marker")
    assert code == 0
    assert out == "found me"


def test_cd_missing_directory(sh):
    code, out = sh("cd /no/where; echo after $?")
    assert "after 1" in out


def test_umask_builtin(world, sh):
    code, out = sh("umask 077; echo x > /tmp/masked.txt")
    assert code == 0
    assert world.lookup_host("/tmp/masked.txt").mode & 0o777 == 0o600


def test_quoted_arguments_preserved(sh):
    code, out = sh("echo 'one  two'")
    assert out == "one  two\n"


def test_script_execution(world):
    world.write_file(
        "/tmp/script.sh",
        "#!/bin/sh\necho script $1 $2\nexit 3\n",
        mode=0o755,
    )
    world.lookup_host("/tmp/script.sh").mode |= 0o111
    status = world.run("/tmp/script.sh", ["script.sh", "a", "b"])
    assert WEXITSTATUS(status) == 3
    assert world.console.take_output().decode() == "script a b\n"


def test_interactive_mode_reads_stdin(world):
    world.console.feed("echo interactive\nexit 4\n")
    world.console.mark_eof()
    status = world.run("/bin/sh", ["sh"])
    assert WEXITSTATUS(status) == 4
    assert "interactive" in world.console.take_output().decode()


def test_dash_c_positional_params(world):
    status = world.run("/bin/sh", ["sh", "-c", "echo p1=$1", "x", "argone"])
    # Our sh -c grammar: everything after the command string is $1...
    out = world.console.take_output().decode()
    assert "p1=" in out


def test_redirection_failure_exits_nonzero(world, sh):
    code, out = sh("echo x > /etc/passwd/not-a-dir")
    assert code != 0


def test_and_operator(sh):
    code, out = sh("true && echo yes")
    assert out == "yes\n"
    code, out = sh("false && echo never")
    assert "never" not in out
    assert code == 1  # status of the skipped chain is the left side's


def test_or_operator(sh):
    code, out = sh("false || echo fallback")
    assert out == "fallback\n"
    assert code == 0
    code, out = sh("true || echo never")
    assert "never" not in out


def test_chained_conditionals_left_to_right(sh):
    code, out = sh("false && echo a || echo b")
    assert out == "b\n"
    code, out = sh("true && echo a || echo b")
    assert out == "a\n"


def test_conditionals_with_pipelines(world, sh):
    world.write_file("/tmp/cw", "needle\n")
    code, out = sh("grep needle /tmp/cw > /dev/null && echo found")
    assert out == "found\n"
    code, out = sh("grep missing /tmp/cw > /dev/null || echo not-found")
    assert out == "not-found\n"


def test_tokenize_conditionals():
    assert _tokenize("a&&b") == ["a", "&&", "b"]
    assert _tokenize("a || b") == ["a", "||", "b"]
    assert _tokenize("a|b") == ["a", "|", "b"]
