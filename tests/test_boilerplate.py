"""Tests for the toolkit boilerplate: attach, chaining, reexec, loader."""

import pytest

from repro.kernel import signals as sig
from repro.kernel.errno import ENOENT, ENOEXEC, SyscallError
from repro.kernel.ofile import F_SETFD, FD_CLOEXEC, O_RDONLY
from repro.kernel.proc import WEXITSTATUS
from repro.kernel.sysent import number_of
from repro.toolkit import run_under_agent
from repro.toolkit.boilerplate import Agent

NR_GETPID = number_of("getpid")
NR_GETTIMEOFDAY = number_of("gettimeofday")
NR_OPEN = number_of("open")
NR_FCNTL = number_of("fcntl")
NR_SIGVEC = number_of("sigvec")
NR_KILL = number_of("kill")


class CountingAgent(Agent):
    """Counts interceptions of getpid, passing the call through."""

    def __init__(self):
        super().__init__()
        self.count = 0

    def init(self, agentargv):
        self.register_interest(NR_GETPID)

    def handle_syscall(self, number, args):
        self.count += 1
        return self.syscall_down_numeric(number, args)


def test_attach_and_intercept(world):
    agent = CountingAgent()

    def main(ctx):
        agent.attach(ctx)
        pid = ctx.trap(NR_GETPID)
        assert pid == ctx.proc.pid
        return 0

    assert WEXITSTATUS(world.run_entry(main)) == 0
    assert agent.count == 1


def test_unregister_interest(world):
    agent = CountingAgent()

    def main(ctx):
        agent.attach(ctx)
        ctx.trap(NR_GETPID)
        agent.unregister_interest([NR_GETPID])
        ctx.trap(NR_GETPID)
        return 0

    world.run_entry(main)
    assert agent.count == 1


def test_register_range(world):
    hits = []

    class RangeAgent(Agent):
        def init(self, agentargv):
            self.register_interest_range(20, 25)

        def handle_syscall(self, number, args):
            hits.append(number)
            return self.syscall_down_numeric(number, args)

    def main(ctx):
        RangeAgent().attach(ctx)
        ctx.trap(NR_GETPID)  # 20: in range
        ctx.trap(number_of("getuid"))  # 24: in range
        ctx.trap(number_of("getpgrp"))  # 81: out of range
        return 0

    world.run_entry(main)
    assert hits == [20, 24]


def test_agent_stacking_chains_downcalls(world):
    """Two stacked agents: the upper's downcall goes to the lower."""

    class Adder(Agent):
        def __init__(self, amount):
            super().__init__()
            self.amount = amount

        def init(self, agentargv):
            self.register_interest(NR_GETPID)

        def handle_syscall(self, number, args):
            return self.syscall_down_numeric(number, args) + self.amount

    def main(ctx):
        lower = Adder(1)
        upper = Adder(10)
        lower.attach(ctx)
        upper.attach(ctx)
        assert ctx.trap(NR_GETPID) == ctx.proc.pid + 11
        # htg bypasses both.
        assert ctx.htg(NR_GETPID) == ctx.proc.pid
        return 0

    assert WEXITSTATUS(world.run_entry(main)) == 0


def test_reexec_preserves_interception(world):
    agent = CountingAgent()
    status = run_under_agent(world, agent, "/bin/sh", ["sh", "-c", "echo alive"])
    assert WEXITSTATUS(status) == 0
    assert "alive" in world.console.take_output().decode()


def test_reexec_validates_before_teardown(world):
    """A failed exec must leave descriptors and handlers intact."""

    def main(ctx):
        agent = CountingAgent()
        agent.attach(ctx)
        fd = ctx.trap(NR_OPEN, "/etc/passwd", O_RDONLY, 0)
        ctx.trap(NR_FCNTL, fd, F_SETFD, FD_CLOEXEC)
        handler = lambda s: None  # noqa: E731
        ctx.trap(NR_SIGVEC, sig.SIGTERM, handler, 0)
        try:
            agent.reexec("/no/such/binary", ["x"], {})
        except SyscallError as err:
            assert err.errno == ENOENT
        # Descriptor still open (teardown did not begin).
        assert ctx.trap(number_of("read"), fd, 1) == b"r"
        assert ctx.proc.dispositions[sig.SIGTERM].handler is handler
        return 0

    assert WEXITSTATUS(world.run_entry(main)) == 0


def test_reexec_closes_cloexec_and_resets_handlers(world):
    state = {}

    def checker(ctx, argv, envp):
        from repro.kernel.errno import EBADF

        try:
            ctx.trap(number_of("read"), 3, 1)
            state["fd3"] = "open"
        except SyscallError as err:
            state["fd3"] = "closed" if err.errno == EBADF else "?"
        state["term"] = ctx.proc.dispositions[sig.SIGTERM].handler
        state["usr1"] = ctx.proc.dispositions[sig.SIGUSR1].handler
        state["vector_size"] = len(ctx.proc.emulation_vector)
        return 0

    world.register_program("reexec-checker", checker)
    world.install_binary("/bin/reexec-checker", "reexec-checker")

    def main(ctx):
        agent = CountingAgent()
        agent.attach(ctx)
        fd = ctx.trap(NR_OPEN, "/etc/passwd", O_RDONLY, 0)
        assert fd == 3
        ctx.trap(NR_FCNTL, fd, F_SETFD, FD_CLOEXEC)
        ctx.trap(NR_SIGVEC, sig.SIGTERM, lambda s: None, 0)
        ctx.trap(NR_SIGVEC, sig.SIGUSR1, sig.SIG_IGN, 0)
        agent.reexec("/bin/reexec-checker", ["reexec-checker"], {})

    world.run_entry(main)
    assert state["fd3"] == "closed"
    assert state["term"] == sig.SIG_DFL
    assert state["usr1"] == sig.SIG_IGN
    assert state["vector_size"] == 1  # the agent survived


def test_run_under_agent_returns_client_status(world):
    status = run_under_agent(
        world, CountingAgent(), "/bin/sh", ["sh", "-c", "exit 9"]
    )
    assert WEXITSTATUS(status) == 9


def test_signal_up_delivers_to_application(world):
    delivered = []

    class Redirector(Agent):
        def init(self, agentargv):
            self.register_signal_interest()

        def handle_signal(self, signum, action):
            delivered.append(("agent", signum))
            self.signal_up(signum)

    def main(ctx):
        Redirector().attach(ctx)
        ctx.trap(NR_SIGVEC, sig.SIGUSR1,
                 lambda s: delivered.append(("app", s)), 0)
        ctx.trap(NR_KILL, ctx.proc.pid, sig.SIGUSR1)
        return 0

    world.run_entry(main)
    assert delivered == [("agent", sig.SIGUSR1), ("app", sig.SIGUSR1)]


def test_default_agent_forwards_signals(world):
    hit = []

    class PassThrough(Agent):
        def init(self, agentargv):
            self.register_signal_interest()

    def main(ctx):
        PassThrough().attach(ctx)
        ctx.trap(NR_SIGVEC, sig.SIGUSR2, lambda s: hit.append(s), 0)
        ctx.trap(NR_KILL, ctx.proc.pid, sig.SIGUSR2)
        return 0

    world.run_entry(main)
    assert hit == [sig.SIGUSR2]


def test_ctx_binding_follows_processes(world):
    """One agent instance serves parent and child with correct contexts."""

    pids_seen = []

    class PidRecorder(Agent):
        def init(self, agentargv):
            self.register_interest(NR_GETPID)

        def handle_syscall(self, number, args):
            pids_seen.append(self.ctx.proc.pid)
            return self.syscall_down_numeric(number, args)

    agent = PidRecorder()

    def main(ctx):
        agent.attach(ctx)
        me = ctx.trap(NR_GETPID)

        def child(cctx):
            return 0 if cctx.trap(NR_GETPID) != me else 1

        ctx.trap(number_of("fork"), agent.wrap_fork_entry(child))
        _, status = ctx.trap(number_of("wait"))
        return WEXITSTATUS(status)

    assert WEXITSTATUS(world.run_entry(main)) == 0
    assert len(set(pids_seen)) == 2
