"""Property-based tests on toolkit and agent invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.agents.transform import _keystream_xor
from repro.agents.union_dirs import normalize
from repro.kernel.sysent import TWO_REGISTER_CALLS, bsd_numbers
from repro.toolkit.numeric import marshal_result, unmarshal_result
from repro.workloads.textgen import Lcg, paragraph, sentence

_settings = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_path_segment = st.sampled_from(["a", "bb", "ccc", ".", "..", ""])


@given(segments=st.lists(_path_segment, max_size=8),
       absolute=st.booleans())
@_settings
def test_normalize_is_idempotent_and_absolute(segments, absolute):
    path = ("/" if absolute else "") + "/".join(segments)
    if not path:
        path = "."
    normalized = normalize(path)
    assert normalized.startswith("/")
    assert normalize(normalized) == normalized
    assert "//" not in normalized
    assert ".." not in normalized.split("/")
    assert "." not in [p for p in normalized.split("/") if p]


@given(segments=st.lists(st.sampled_from(["x", "y", "z"]), min_size=1,
                         max_size=5))
@_settings
def test_normalize_relative_equals_join(segments):
    cwd = "/base/dir"
    path = "/".join(segments)
    assert normalize(path, cwd) == cwd + "/" + path


@given(number=st.sampled_from(sorted(bsd_numbers())),
       value=st.one_of(st.integers(), st.binary(max_size=20), st.text(max_size=10)))
@_settings
def test_marshal_unmarshal_roundtrip_single(number, value):
    if number in TWO_REGISTER_CALLS:
        return
    rv = [0, 0]
    marshal_result(number, value, rv)
    assert unmarshal_result(number, rv) == value


@given(number=st.sampled_from(sorted(TWO_REGISTER_CALLS)),
       pair=st.tuples(st.integers(), st.integers()))
@_settings
def test_marshal_unmarshal_roundtrip_pair(number, pair):
    rv = [0, 0]
    marshal_result(number, pair, rv)
    assert unmarshal_result(number, rv) == pair


@given(data=st.binary(max_size=500),
       key=st.text(min_size=1, max_size=10))
@_settings
def test_keystream_is_an_involution(data, key):
    assert _keystream_xor(_keystream_xor(data, key), key) == data


@given(data=st.binary(min_size=1, max_size=500),
       key=st.text(min_size=1, max_size=10))
@_settings
def test_keystream_preserves_length(data, key):
    assert len(_keystream_xor(data, key)) == len(data)


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@_settings
def test_textgen_deterministic(seed):
    assert sentence(Lcg(seed)) == sentence(Lcg(seed))
    assert paragraph(Lcg(seed)) == paragraph(Lcg(seed))


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@_settings
def test_textgen_sentences_well_formed(seed):
    text = sentence(Lcg(seed))
    assert text.endswith(".")
    assert text[0].isupper()
    assert 2 <= len(text.split()) <= 20
