"""Tests for execve and image loading."""

import pytest

from repro.kernel import signals as sig
from repro.kernel.errno import EACCES, ENOENT, ENOEXEC, SyscallError
from repro.kernel.ofile import F_SETFD, FD_CLOEXEC, O_RDONLY
from repro.kernel.proc import WEXITSTATUS
from repro.kernel.sysent import number_of

NR = {n: number_of(n) for n in (
    "execve", "fork", "wait", "open", "close", "fcntl", "read", "write",
    "sigvec", "setuid", "chmod", "image_header", "task_set_emulation",
    "task_get_emulation", "getpid",
)}


def _install_probe(world, name="probe"):
    """A binary that writes its argv and env marker to stdout."""

    def probe(ctx, argv, envp):
        from repro.programs.libc import Sys

        sys = Sys(ctx)
        sys.print_out("argv=%r env=%r\n" % (argv, sorted(envp)))
        return 5

    world.register_program(name, probe)
    world.install_binary("/bin/" + name, name)


def test_execve_replaces_image(world):
    _install_probe(world)

    def main(ctx):
        ctx.trap(NR["execve"], "/bin/probe", ["probe", "a", "b"], {"K": "V"})
        raise AssertionError("execve returned")

    status = world.run_entry(main)
    assert WEXITSTATUS(status) == 5
    out = world.console.take_output().decode()
    assert "argv=['probe', 'a', 'b']" in out
    assert "env=['K']" in out


def test_execve_missing_file(world):
    def main(ctx):
        try:
            ctx.trap(NR["execve"], "/bin/absent", ["absent"], {})
        except SyscallError as err:
            return 10 if err.errno == ENOENT else 1
        return 1

    assert WEXITSTATUS(world.run_entry(main)) == 10


def test_execve_non_executable_eacces(world):
    world.write_file("/tmp/data.txt", "just data")

    def main(ctx):
        try:
            ctx.trap(NR["execve"], "/tmp/data.txt", ["x"], {})
        except SyscallError as err:
            return 10 if err.errno == EACCES else 1
        return 1

    assert WEXITSTATUS(world.run_entry(main)) == 10


def test_execve_bad_image_enoexec(world):
    world.write_file("/tmp/garbage", "no magic here")
    node = world.lookup_host("/tmp/garbage")
    node.mode |= 0o111

    def main(ctx):
        try:
            ctx.trap(NR["execve"], "/tmp/garbage", ["x"], {})
        except SyscallError as err:
            return 10 if err.errno == ENOEXEC else 1
        return 1

    assert WEXITSTATUS(world.run_entry(main)) == 10


def test_interpreter_script(world):
    world.write_file(
        "/tmp/hello.sh", "#!/bin/sh\necho from script $1\n", mode=0o755
    )
    world.lookup_host("/tmp/hello.sh").mode |= 0o111

    def main(ctx):
        ctx.trap(NR["execve"], "/tmp/hello.sh", ["hello.sh", "arg1"], {})

    world.run_entry(main)
    assert "from script arg1" in world.console.take_output().decode()


def test_execve_closes_cloexec_descriptors(world):
    _install_probe(world)
    world.write_file("/tmp/f", "x")
    observed = {}

    def checker(ctx, argv, envp):
        # fd 3 (cloexec) must be closed; fd 4 must survive.
        from repro.kernel.errno import EBADF

        try:
            ctx.trap(NR["read"], 3, 1)
            observed["fd3"] = "open"
        except SyscallError as err:
            observed["fd3"] = "closed" if err.errno == EBADF else "?"
        observed["fd4"] = ctx.trap(NR["read"], 4, 1)
        return 0

    world.register_program("checker", checker)
    world.install_binary("/bin/checker", "checker")

    def main(ctx):
        fd3 = ctx.trap(NR["open"], "/tmp/f", O_RDONLY, 0)
        fd4 = ctx.trap(NR["open"], "/tmp/f", O_RDONLY, 0)
        assert (fd3, fd4) == (3, 4)
        ctx.trap(NR["fcntl"], fd3, F_SETFD, FD_CLOEXEC)
        ctx.trap(NR["execve"], "/bin/checker", ["checker"], {})

    world.run_entry(main)
    assert observed == {"fd3": "closed", "fd4": b"x"}


def test_execve_resets_caught_handlers_keeps_ignored(world):
    state = {}

    def checker(ctx, argv, envp):
        proc = ctx.proc
        state["term"] = proc.dispositions[sig.SIGTERM].handler
        state["usr1"] = proc.dispositions[sig.SIGUSR1].handler
        return 0

    world.register_program("sigchecker", checker)
    world.install_binary("/bin/sigchecker", "sigchecker")

    def main(ctx):
        ctx.trap(NR["sigvec"], sig.SIGTERM, lambda s: None, 0)
        ctx.trap(NR["sigvec"], sig.SIGUSR1, sig.SIG_IGN, 0)
        ctx.trap(NR["execve"], "/bin/sigchecker", ["sigchecker"], {})

    world.run_entry(main)
    assert state["term"] == sig.SIG_DFL
    assert state["usr1"] == sig.SIG_IGN


def test_native_execve_clears_emulation_vector(world):
    _install_probe(world)
    seen = {}

    def checker(ctx, argv, envp):
        seen["vector"] = dict(ctx.proc.emulation_vector)
        return 0

    world.register_program("vchecker", checker)
    world.install_binary("/bin/vchecker", "vchecker")

    def main(ctx):
        handler = lambda c, n, a: 0  # noqa: E731
        ctx.trap(NR["task_set_emulation"], [NR["getpid"]], handler)
        assert ctx.trap(NR["task_get_emulation"], NR["getpid"]) is handler
        ctx.trap(NR["execve"], "/bin/vchecker", ["vchecker"], {})

    world.run_entry(main)
    assert seen["vector"] == {}


def test_image_header_reports_without_exec(world):
    def main(ctx):
        name, prefix = ctx.trap(NR["image_header"], "/bin/sh")
        assert name == "sh"
        assert prefix == []
        return 0

    assert WEXITSTATUS(world.run_entry(main)) == 0


def test_exec_permission_checked(world):
    _install_probe(world, "noexec")
    node = world.lookup_host("/bin/noexec")
    node.mode &= ~0o111

    def main(ctx):
        ctx.trap(NR["setuid"], 100)
        try:
            ctx.trap(NR["execve"], "/bin/noexec", ["noexec"], {})
        except SyscallError as err:
            return 10 if err.errno == EACCES else 1
        return 1

    assert WEXITSTATUS(world.run_entry(main)) == 10


def test_fork_then_exec_pattern(world):
    _install_probe(world)

    def main(ctx):
        def child(cctx):
            cctx.trap(NR["execve"], "/bin/probe", ["probe", "kid"], {})

        ctx.trap(NR["fork"], child)
        _, status = ctx.trap(NR["wait"])
        return WEXITSTATUS(status)

    status = world.run_entry(main)
    assert WEXITSTATUS(status) == 5
    assert "'kid'" in world.console.take_output().decode()
