"""Table 3-5: per-system-call cost without and with a pass-through agent.

Paper (25 MHz i486; pathnames have 6 components in a UFS filesystem;
the agent is time_symbolic, which decodes each call and takes the
default action):

    operation                 no agent   with agent   overhead
    getpid()                     25         165          140
    gettimeofday()               47         201          154
    fstat()                     128         320          192
    read() 1K of data           370         512          142
    stat()                      892        1056          164
    fork(), wait(), _exit()    9400       19400        10000
    execve()                   9600       19900        10300

Shape targets: the interception overhead is roughly constant across the
cheap calls (so its *relative* cost is huge for getpid and modest for
stat/read), while fork and execve under an agent cost several times
their cheap-call overhead (bookkeeping and the toolkit's execve
reimplementation).
"""

from repro.agents.time_symbolic import TimeSymbolic
from repro.bench.timing import usec_per_call
from repro.kernel.ofile import O_CREAT, O_RDONLY, O_TRUNC, O_WRONLY, SEEK_SET
from repro.kernel.sysent import number_of
from repro.kernel.trap import UserContext
from repro.workloads import boot_world

NR = {
    name: number_of(name)
    for name in (
        "getpid", "gettimeofday", "fstat", "read", "lseek", "stat",
        "open", "write", "close", "fork", "wait", "execve",
    )
}

#: a 6-component pathname in the (simulated) UFS filesystem, as measured
SIX_COMPONENT_PATH = "/usr/lib/scribe/bench/data/measured.txt"


def _setup_context(with_agent):
    kernel = boot_world()
    kernel.mkdir_p("/usr/lib/scribe/bench/data")
    kernel.write_file(SIX_COMPONENT_PATH, b"x" * 4096)
    proc = kernel._create_initial_process()
    ctx = UserContext(kernel, proc)
    if with_agent:
        agent = TimeSymbolic()
        agent.attach(ctx)
    read_fd = ctx.htg(NR["open"], SIX_COMPONENT_PATH, O_RDONLY, 0)
    return kernel, ctx, read_fd


def measure(with_agent, calls=1500):
    """{row: usec} for one column of the table."""
    kernel, ctx, fd = _setup_context(with_agent)
    trap = ctx.trap
    results = {}

    results["getpid()"] = usec_per_call(lambda: trap(NR["getpid"]), calls)
    results["gettimeofday()"] = usec_per_call(
        lambda: trap(NR["gettimeofday"]), calls
    )
    results["fstat()"] = usec_per_call(lambda: trap(NR["fstat"], fd), calls)

    def read_1k():
        trap(NR["lseek"], fd, 0, SEEK_SET)
        trap(NR["read"], fd, 1024)

    results["read() 1K of data"] = usec_per_call(read_1k, calls) / 2

    results["stat()"] = usec_per_call(
        lambda: trap(NR["stat"], SIX_COMPONENT_PATH), calls
    )

    def fork_wait_exit():
        trap(NR["fork"], None)  # the child just _exits
        trap(NR["wait"])

    results["fork(), wait(), _exit()"] = usec_per_call(
        fork_wait_exit, calls=60, repeats=3
    )

    def fork_exec_wait():
        trap(NR["fork"], lambda cctx: cctx.trap(NR["execve"], "/bin/true", ["true"], {}))
        trap(NR["wait"])

    exec_combo = usec_per_call(fork_exec_wait, calls=60, repeats=3)
    results["execve()"] = max(
        0.0, exec_combo - results["fork(), wait(), _exit()"]
    )
    return results


def rows():
    """(operation, usec_without, usec_with, overhead) rows."""
    without = measure(with_agent=False)
    with_agent = measure(with_agent=True)
    return [
        (op, without[op], with_agent[op], with_agent[op] - without[op])
        for op in without
    ]


def print_table():
    print("Table 3-5: per-system-call costs (usec)")
    print("%-26s %10s %10s %10s" % ("operation", "no agent", "agent", "overhead"))
    for op, base, agented, overhead in rows():
        print("%-26s %10.1f %10.1f %10.1f" % (op, base, agented, overhead))


def test_syscall_costs(benchmark):
    table = benchmark.pedantic(rows, rounds=1, iterations=1)
    by_op = {row[0]: row for row in table}
    cheap_ops = ["getpid()", "gettimeofday()", "fstat()", "read() 1K of data"]
    overheads = [by_op[op][3] for op in cheap_ops]
    # Interception overhead is positive and same-order across cheap calls.
    assert all(o > 0 for o in overheads), overheads
    assert max(overheads) < 12 * min(o for o in overheads if o > 0)
    # Relative cost is far larger for getpid than for stat.
    getpid_ratio = by_op["getpid()"][2] / by_op["getpid()"][1]
    stat_ratio = by_op["stat()"][2] / by_op["stat()"][1]
    assert getpid_ratio > stat_ratio
    # The toolkit's reimplemented execve costs many times a cheap call's
    # interception overhead (the paper's fork/execve "roughly doubling").
    # fork's own overhead is dominated by thread-spawn noise here, so the
    # robust shape check is on execve.
    assert by_op["execve()"][3] > 4 * by_op["getpid()"][3]
    assert by_op["fork(), wait(), _exit()"][1] > 10 * by_op["getpid()"][1]
    for op, base, agented, overhead in table:
        benchmark.extra_info[op] = {
            "no_agent": round(base, 2),
            "agent": round(agented, 2),
            "overhead": round(overhead, 2),
        }


if __name__ == "__main__":
    print_table()
