"""The guard layer's pay-per-use claim, measured.

Fault containment follows the repo's standing discipline: with
``kernel.guard`` unset and no :class:`GuardedAgent` in the stack, the
trap spine runs exactly the seed instructions — one ``is None``
attribute test per guarded seam.  This benchmark holds it to that:

* **Micro (uninterposed)**: one getpid trap that no agent intercepts,
  with guarding disabled and with the machine-wide rail armed.  A call
  nobody guards must not pay for guarding.
* **Micro (interposed)**: one getpid trap through a pass-through agent,
  bare versus wrapped in a :class:`GuardedAgent` versus under the rail —
  the price of containment where it *is* bought.
* **Macro**: the format-dissertation workload under a pass-through
  agent in the same three configurations, interleaved rounds and paired
  slowdowns; "disabled" must sit within noise of the seed baseline.
"""

from repro.bench.timing import paired_slowdowns, time_matrix, usec_per_call
from repro.kernel.proc import WEXITSTATUS
from repro.kernel.sysent import bsd_numbers, number_of
from repro.kernel.trap import UserContext
from repro.toolkit import run_under_agent
from repro.toolkit.guard import GuardedAgent, install_guard
from repro.toolkit.numeric import NumericSyscall
from repro.workloads import boot_world, format_dissertation

NR_GETPID = number_of("getpid")

#: the containment configurations under test, cheapest first
CONFIGS = ("disabled", "railed", "wrapper")


class _Passthrough(NumericSyscall):
    """Interposes on every BSD call and takes the default action."""

    def init(self, agentargv):
        """Register interest in the whole BSD range."""
        self.register_interest_many(bsd_numbers())


def _make_agent(config):
    """The agent a client runs under in *config* (None = no agent)."""
    if config == "wrapper":
        return GuardedAgent(_Passthrough(), policy="fail-open")
    return _Passthrough()


def _make_kernel(config):
    kernel = boot_world()
    if config == "railed":
        install_guard(kernel, "fail-open")
    return kernel


def micro_uninterposed_rows(calls=2000):
    """(config, usec) for one getpid trap no agent intercepts.

    Only the rail can even be present on this path (a wrapper guards a
    specific agent), so the wrapper configuration is skipped.
    """
    rows = []
    for config in ("disabled", "railed"):
        kernel = _make_kernel(config)
        proc = kernel._create_initial_process()
        ctx = UserContext(kernel, proc)
        rows.append((config, usec_per_call(lambda: ctx.trap(NR_GETPID),
                                           calls)))
    return rows


def micro_interposed_rows(calls=2000):
    """(config, usec) for one getpid trap through a pass-through agent."""
    rows = []
    for config in CONFIGS:
        kernel = _make_kernel(config)
        proc = kernel._create_initial_process()
        ctx = UserContext(kernel, proc)
        _make_agent(config).attach(ctx)
        rows.append((config, usec_per_call(lambda: ctx.trap(NR_GETPID),
                                           calls)))
    return rows


def _prepare(config):
    """One prepared format-dissertation run under *config*."""
    from benchmarks.bench_support import workload_command

    kernel = _make_kernel(config)
    format_dissertation.setup(kernel)
    agent = _make_agent(config)
    path, argv = workload_command(format_dissertation)

    def run():
        status = run_under_agent(kernel, agent, path, argv)
        assert WEXITSTATUS(status) == 0, "workload failed (%r)" % status
        return kernel

    return run


def macro_rows(runs=9):
    """(config, seconds, slowdown%) for the format workload."""
    prepares = {
        config: (lambda config=config: _prepare(config))
        for config in CONFIGS
    }
    results = time_matrix(prepares, runs=runs)
    slowdowns = paired_slowdowns(results, base_name="disabled")
    return [(config, results[config][0], slowdowns[config])
            for config in CONFIGS]


# -- pytest entry points (the CI gate) -----------------------------------


def test_unguarded_traps_pay_nothing(benchmark):
    """The pay-per-use gate: an unguarded, uninterposed trap must not be
    measurably slower than the same trap with the rail armed — both run
    one attribute test at each guard seam, and a fault-free handler adds
    nothing else."""
    rows = dict(benchmark.pedantic(micro_uninterposed_rows,
                                   rounds=1, iterations=1))
    # Generous jitter bound: the two paths differ by at most the rail's
    # fault-free bookkeeping, which must stay within noise.
    assert rows["disabled"] <= rows["railed"] * 1.25
    for config, usec in rows.items():
        benchmark.extra_info[config] = round(usec, 3)


def test_containment_costs_only_where_bought(benchmark):
    """Interposed traps: the guarded configurations may pay (the wrapper
    adds one Python frame per call), but the unguarded agent must not."""
    rows = dict(benchmark.pedantic(micro_interposed_rows,
                                   rounds=1, iterations=1))
    assert rows["disabled"] <= rows["railed"] * 1.25
    assert rows["disabled"] <= rows["wrapper"] * 1.25
    for config, usec in rows.items():
        benchmark.extra_info[config] = round(usec, 3)


def print_tables(runs=9):
    """Render every table of this benchmark to stdout."""
    print("Guard overhead: format-dissertation workload")
    print("%-16s %10s %10s" % ("config", "seconds", "slowdown"))
    for config, seconds, pct in macro_rows(runs=runs):
        print("%-16s %10.3f %9.1f%%" % (config, seconds, pct))
    print()
    print("Micro: one uninterposed getpid trap")
    for config, usec in micro_uninterposed_rows():
        print("%-16s %10.3f usec" % (config, usec))
    print()
    print("Micro: one getpid trap through a pass-through agent")
    for config, usec in micro_interposed_rows():
        print("%-16s %10.3f usec" % (config, usec))


if __name__ == "__main__":
    import sys as _host_sys

    print_tables(runs=3 if "--quick" in _host_sys.argv else 9)
