"""The recorder's pay-per-use claim, measured.

Record/replay follows the repo's standing discipline: with
``kernel.recorder`` unset the trap spine, the sleep queue, the clock
reads, and the pid/fd allocators each run exactly one ``is None``
attribute test more than the seed.  This benchmark holds it to that:

* **Micro**: one getpid trap that nobody records, with the recorder
  off versus attached in record mode.  A run nobody records must not
  pay for recording; a recorded run pays the turn token and one log
  append per trap.
* **Macro**: the format-dissertation scenario with recording off, in
  record mode, and replayed from its own log — interleaved rounds and
  paired slowdowns against the disabled baseline, which must sit
  within noise of the seed.
"""

from repro.bench.timing import paired_slowdowns, time_matrix, usec_per_call
from repro.kernel.sysent import number_of
from repro.kernel.trap import UserContext
from repro.obs.recorder import RECORD, Recorder
from repro.obs.timetravel import record_run, replay_run
from repro.workloads import boot_world

NR_GETPID = number_of("getpid")

#: the recording configurations under test, cheapest first
CONFIGS = ("disabled", "record", "replay")

#: the macro scenario: the format workload, no chaos, fixed seed
_FORMAT = dict(seed=0, workload="format", agent_rate=0.0, site_rate=0.0)


def micro_rows(calls=2000):
    """(config, usec) for one uninterposed getpid trap.

    Replay is skipped at this level: a replayed trap consumes exactly
    one recorded decision, so a timing loop would need a log the exact
    length of its iteration count (warm-ups included) — the macro rows
    measure replay on a real workload instead.
    """
    rows = []
    for config in ("disabled", "record"):
        kernel = boot_world()
        proc = kernel._create_initial_process()
        ctx = UserContext(kernel, proc)
        if config == "record":
            Recorder(mode=RECORD).attach(kernel)
        rows.append((config, usec_per_call(lambda: ctx.trap(NR_GETPID),
                                           calls)))
    return rows


def _prepare(config, log_holder):
    """One prepared format-scenario run under *config*.

    *log_holder* is a one-slot list carrying the decisions the replay
    configuration re-executes; the record configuration refreshes it
    each round so replay always has a log from the same code path.
    """
    if config == "disabled":
        from repro.workloads.chaos import run_scenario

        def run():
            report = run_scenario(**_FORMAT)
            assert report.outcome == "exit" and report.status == 0
    elif config == "record":
        def run():
            result = record_run(**_FORMAT)
            assert result.report.outcome == "exit"
            log_holder[:] = [(result.meta, result.decisions)]
    elif config == "replay":
        if not log_holder:
            result = record_run(**_FORMAT)
            log_holder[:] = [(result.meta, result.decisions)]
        meta, decisions = log_holder[0]

        def run():
            result = replay_run(meta, decisions)
            assert result.report.outcome == "exit"
    else:
        raise ValueError(config)
    return run


def macro_rows(runs=9):
    """(config, seconds, slowdown%) for the format scenario."""
    log_holder = []
    prepares = {
        config: (lambda config=config: _prepare(config, log_holder))
        for config in CONFIGS
    }
    results = time_matrix(prepares, runs=runs)
    slowdowns = paired_slowdowns(results, base_name="disabled")
    return [(config, results[config][0], slowdowns[config])
            for config in CONFIGS]


# -- pytest entry points (the CI gate) -----------------------------------


def test_unrecorded_traps_pay_nothing(benchmark):
    """The pay-per-use gate: a trap on a kernel with no recorder must
    not be measurably slower than the same trap under record mode —
    the unrecorded path is one attribute test, the recorded path adds
    the turn token and a log append."""
    rows = dict(benchmark.pedantic(micro_rows, rounds=1, iterations=1))
    assert rows["disabled"] <= rows["record"] * 1.25
    for config, usec in rows.items():
        benchmark.extra_info[config] = round(usec, 3)


def test_record_replay_roundtrip_stays_identical(benchmark):
    """The determinism gate, run at benchmark scale: the macro
    scenario's record → replay roundtrip must stay bit-identical (the
    replay asserts its own fidelity via the consumed log)."""
    def roundtrip():
        result = record_run(**_FORMAT)
        replayed = replay_run(result.meta, result.decisions)
        assert replayed.recorder.position == len(result.decisions)
        return len(result.decisions)

    decisions = benchmark.pedantic(roundtrip, rounds=1, iterations=1)
    benchmark.extra_info["decisions"] = decisions


def print_tables(runs=9):
    """Render every table of this benchmark to stdout."""
    print("Record/replay overhead: format-dissertation scenario")
    print("%-16s %10s %10s" % ("config", "seconds", "slowdown"))
    for config, seconds, pct in macro_rows(runs=runs):
        print("%-16s %10.3f %9.1f%%" % (config, seconds, pct))
    print()
    print("Micro: one uninterposed getpid trap")
    for config, usec in micro_rows():
        print("%-16s %10.3f usec" % (config, usec))


if __name__ == "__main__":
    import sys as _host_sys

    print_tables(runs=3 if "--quick" in _host_sys.argv else 9)
