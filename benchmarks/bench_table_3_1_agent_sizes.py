"""Table 3-1: sizes of agents, measured in statements.

Paper (statements counted as semicolons of C/C++):

    agent    toolkit  agent  total
    timex       2467     35   2502
    trace       2467   1348   3815
    union       3977    166   4143

Shape targets: toolkit code dominates simple agents; trace's
agent-specific code is an order of magnitude larger than timex's
(proportional to the size of the system interface); union's
agent-specific code stays small despite changing the behaviour of ~70
calls, because it is written against the object layers.
"""

from repro.bench.loc import agent_size_report


def rows():
    return agent_size_report()


def print_table():
    print("Table 3-1: sizes of agents (Python AST statements)")
    print("%-10s %8s %8s %8s" % ("agent", "toolkit", "agent", "total"))
    for name, toolkit, agent, total in rows():
        print("%-10s %8d %8d %8d" % (name, toolkit, agent, total))


def test_agent_sizes(benchmark):
    table = benchmark(agent_size_report)
    by_name = {row[0]: row for row in table}
    # toolkit dominates the simple agents
    assert by_name["timex"][1] > 10 * by_name["timex"][2]
    # trace's agent code is proportional to the interface, >> timex's
    assert by_name["trace"][2] > 8 * by_name["timex"][2]
    # union changes ~70 calls but stays compact thanks to the object layers
    assert by_name["union"][2] < by_name["trace"][2]
    # the object-layer toolkit is bigger than the symbolic-only toolkit
    assert by_name["union"][1] > by_name["timex"][1]
    for row in table:
        benchmark.extra_info[row[0]] = {
            "toolkit": row[1], "agent": row[2], "total": row[3]
        }


if __name__ == "__main__":
    print_table()
