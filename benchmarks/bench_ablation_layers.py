"""Ablation: what each toolkit layer costs, in code and in time.

Two design questions DESIGN.md calls out:

1. **Layer depth vs. per-call overhead.**  A pass-through agent at each
   layer (numeric; symbolic; pathname+descriptor) shows what the
   successive abstraction layers add to the cost of one intercepted
   call.  The paper's symbolic-level overheads (Table 3-5: 140-210 usec)
   and union's extra layers (Table 3-2/3-3) are the two points it
   reports; this bench fills in the curve.

2. **Tracing at the numeric vs. symbolic layer.**  ntrace (layer 0)
   needs a fraction of trace's code — formatting per call is exactly
   what makes trace's size proportional to the interface — but produces
   raw output.  Both sizes and speeds are reported.
"""

from repro.agents.ntrace import NumericTraceAgent
from repro.agents.time_symbolic import TimeSymbolic
from repro.agents.trace import TraceSymbolicSyscall
from repro.bench.loc import module_statements
from repro.bench.timing import usec_per_call
from repro.kernel.sysent import bsd_numbers, number_of
from repro.kernel.trap import UserContext
from repro.toolkit.numeric import NumericSyscall
from repro.toolkit.pathnames import PathSymbolicSyscall
from repro.workloads import boot_world

NR_GETPID = number_of("getpid")
NR_STAT = number_of("stat")


class _NumericPassthrough(NumericSyscall):
    def init(self, agentargv):
        self.register_interest_many(bsd_numbers())


class _PathPassthrough(PathSymbolicSyscall):
    pass


def _context(agent_factory):
    kernel = boot_world()
    proc = kernel._create_initial_process()
    ctx = UserContext(kernel, proc)
    if agent_factory is not None:
        agent_factory().attach(ctx)
    return ctx


def layer_cost_rows(calls=1500):
    """(layer, getpid usec, stat usec) for deepening interposition."""
    rows = []
    for label, factory in (
        ("no agent", None),
        ("layer 0: numeric", _NumericPassthrough),
        ("layer 1: symbolic", TimeSymbolic),
        ("layer 2: pathname+descriptor", _PathPassthrough),
    ):
        ctx = _context(factory)
        getpid_usec = usec_per_call(lambda: ctx.trap(NR_GETPID), calls)
        stat_usec = usec_per_call(lambda: ctx.trap(NR_STAT, "/etc/passwd"), calls)
        rows.append((label, getpid_usec, stat_usec))
    return rows


def tracer_rows():
    """(tracer, statements) for the two tracer implementations."""
    import repro.agents.ntrace as ntrace_mod
    import repro.agents.trace as trace_mod

    return [
        ("ntrace (numeric layer)", module_statements(ntrace_mod)),
        ("trace (symbolic layer)", module_statements(trace_mod)),
    ]


def print_tables():
    print("Ablation A: per-call cost by interposition depth")
    print("%-30s %12s %12s" % ("configuration", "getpid usec", "stat usec"))
    for label, g, s in layer_cost_rows():
        print("%-30s %12.2f %12.2f" % (label, g, s))
    print()
    print("Ablation B: tracer code size by layer")
    for label, statements in tracer_rows():
        print("%-26s %5d statements" % (label, statements))


def test_layer_costs_monotonic(benchmark):
    rows = benchmark.pedantic(layer_cost_rows, rounds=1, iterations=1)
    getpid_costs = [g for _, g, _ in rows]
    # Each added layer costs something for an intercepted getpid; allow
    # small non-monotonic jitter between adjacent deep layers but require
    # the ends to order strictly.
    assert getpid_costs[0] < getpid_costs[1] < getpid_costs[3] * 1.2
    assert getpid_costs[0] < getpid_costs[2]
    for label, g, s in rows:
        benchmark.extra_info[label] = {"getpid": round(g, 3),
                                       "stat": round(s, 3)}


def test_numeric_tracer_is_much_smaller(benchmark):
    rows = benchmark(tracer_rows)
    sizes = dict(rows)
    assert sizes["ntrace (numeric layer)"] * 3 < sizes["trace (symbolic layer)"]


if __name__ == "__main__":
    print_tables()
