"""Table 3-4: performance of low-level operations used for interposition.

Paper (25 MHz i486, Mach 2.5 X144, gcc 1.37 -g):

    operation                                    usec
    C procedure call (1 arg, result)             1.22
    C++ virtual procedure call (1 arg, result)   1.94
    intercept and return from system call          30
    htg_unix_syscall() overhead                    37

Shape targets: plain call < virtual call << intercept-and-return, and
the htg downcall overhead is the same order as interception.  (Python
calls replace C calls; the ratios are what transfer.)
"""

from repro.bench.timing import usec_per_call
from repro.kernel.sysent import number_of
from repro.toolkit.boilerplate import Agent
from repro.workloads import boot_world

NR_GETPID = number_of("getpid")


def _plain_call_target(x):
    return x + 1


class _Base:
    def method(self, x):
        return x


class _Derived(_Base):
    def method(self, x):
        return x + 1


class _InterceptOnly(Agent):
    """Registers getpid and answers it without entering the kernel —
    measures pure intercept-and-return cost."""

    def init(self, agentargv):
        self.register_interest(NR_GETPID)

    def handle_syscall(self, number, args):
        return 1


def measurements():
    """Compute all four rows; returns {label: usec}."""
    results = {}

    results["procedure call (1 arg, result)"] = usec_per_call(
        lambda: _plain_call_target(7)
    )

    derived = _Derived()
    results["virtual procedure call (1 arg, result)"] = usec_per_call(
        lambda: derived.method(7)
    )

    # Intercept and return: a host-driven process whose getpid is
    # redirected to a handler that returns immediately.
    kernel = boot_world()
    proc = kernel._create_initial_process()
    from repro.kernel.trap import UserContext

    ctx = UserContext(kernel, proc)
    agent = _InterceptOnly()
    agent.attach(ctx)
    results["intercept and return from system call"] = usec_per_call(
        lambda: ctx.trap(NR_GETPID)
    )

    # htg overhead: the downcall's extra cost beyond the normal call.
    kernel2 = boot_world()
    proc2 = kernel2._create_initial_process()
    ctx2 = UserContext(kernel2, proc2)
    plain = usec_per_call(lambda: ctx2.trap(NR_GETPID))
    # Redirect getpid so the htg path exercises its bypass bookkeeping.
    agent2 = _InterceptOnly()
    agent2.attach(ctx2)
    via_htg = usec_per_call(lambda: ctx2.htg(NR_GETPID))
    results["htg_unix_syscall() overhead"] = max(0.0, via_htg - plain)
    results["(getpid via kernel, for reference)"] = plain
    return results


def print_table():
    print("Table 3-4: low-level operation costs")
    for label, usec in measurements().items():
        print("  %-44s %8.2f usec" % (label, usec))


def test_lowlevel_operations(benchmark):
    results = benchmark.pedantic(measurements, rounds=1, iterations=1)
    plain = results["procedure call (1 arg, result)"]
    virtual = results["virtual procedure call (1 arg, result)"]
    intercept = results["intercept and return from system call"]
    assert plain <= virtual * 1.5  # virtual dispatch is not cheaper
    assert intercept > 3 * virtual  # interception costs far more than a call
    for label, usec in results.items():
        benchmark.extra_info[label] = round(usec, 3)


if __name__ == "__main__":
    print_table()
