"""Table 3-3: time to make 8 programs under agents.

Paper (25 MHz i486, 64 fork/execve pairs, 16.0 s base):

    agent    seconds  slowdown
    none        16.0
    timex       19.0       19%
    union       29.0       82%
    trace       33.0      107%

Shape targets: slowdowns are large (heavy system call use), timex is
the least, trace is the worst (two trace-log writes per traced call),
union falls between, and every slowdown here dwarfs its Table 3-2
counterpart.
"""

from benchmarks.bench_support import prepare_workload
from repro.workloads import make_programs

AGENT_NAMES = [None, "timex", "trace", "union"]


def _bench(benchmark, agent_name):
    benchmark.pedantic(
        lambda run: run(),
        setup=lambda: ((prepare_workload(make_programs, agent_name),), {}),
        rounds=3,
        iterations=1,
    )


def test_make_none(benchmark):
    _bench(benchmark, None)


def test_make_timex(benchmark):
    _bench(benchmark, "timex")


def test_make_trace(benchmark):
    _bench(benchmark, "trace")


def test_make_union(benchmark):
    _bench(benchmark, "union")


def rows(runs=9):
    from repro.bench.timing import paired_slowdowns, time_matrix

    prepares = {
        name or "none": (
            lambda name=name: prepare_workload(make_programs, name)
        )
        for name in AGENT_NAMES
    }
    results = time_matrix(prepares, runs=runs)
    slowdowns = paired_slowdowns(results)
    return [
        (name, results[name][0], slowdowns[name])
        for name in results
    ]


if __name__ == "__main__":
    print("Table 3-3: time to make 8 programs")
    print("%-8s %10s %10s" % ("agent", "seconds", "slowdown"))
    for name, seconds, pct in rows():
        print("%-8s %10.3f %9.1f%%" % (name, seconds, pct))
