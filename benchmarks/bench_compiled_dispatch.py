"""Compiled agent-stack dispatch measured: flat chains vs the tower.

PR 7 compiles a process's emulation vector into one flat closure per
syscall number (:mod:`repro.kernel.compile`): transparent toolkit
layers collapse to their fills plus one normalization, opaque layers
with stock machinery are entered by direct method call, and every
agent's downcalls skip the flattened sub-tower below it.  This
benchmark prices the claim with the paired, interleaved protocol of
``bench_kernel_fastpath``:

* **tower** is the PR 2 configuration (namecache, trap_fast,
  zero_copy) with ``compiled`` off — the dispatch path every earlier
  benchmark measured.
* **compiled** is the default configuration: the same flags plus the
  compiled dispatch tables.

The honest split, recorded in ``docs/PERFORMANCE.md``: rows dominated
by *dispatch* (a transparent stack, a trace agent's own forwards, a
homogeneous ``trap_many`` batch) win 2-6x; rows dominated by *agent
work* (the trace agent's formatting, the monitor's counters) win what
Amdahl allows — the compiled path only removes the layer walk, never
the agent's code, which is exactly the transparency contract.
"""

from repro.kernel.fastpath import FastPathConfig
from repro.kernel.sysent import number_of
from repro.kernel.trap import UserContext
from repro.workloads import boot_world

NR_GETPID = number_of("getpid")
NR_STAT = number_of("stat")
NR_OPEN = number_of("open")
NR_CLOSE = number_of("close")
NR_READ = number_of("read")
NR_LSEEK = number_of("lseek")
NR_READV = number_of("readv")

#: the two dispatch paths under comparison
CONFIGS = ("tower", "compiled")


def fastpath_config(name):
    """``tower`` is PR 2's full configuration with ``compiled`` off."""
    if name == "tower":
        return FastPathConfig.parse("namecache,trap_fast,zero_copy")
    return FastPathConfig()


def _interleaved_usec(fns, calls, rounds=7):
    """Per-call microseconds per configuration, interleaved rounds.

    Same protocol as ``bench_kernel_fastpath``: a warm-up pass (which
    also lets the compiled tables build), then each round times every
    configuration back to back; the estimate is the best round.
    """
    import time

    for fn in fns.values():
        for _ in range(calls // 10 + 1):
            fn()
    best = {}
    for _ in range(rounds):
        for name, fn in fns.items():
            start = time.perf_counter()
            for _ in range(calls):
                fn()
            usec = (time.perf_counter() - start) / calls * 1_000_000
            if name not in best or usec < best[name]:
                best[name] = usec
    return best


# -- world builders (persistent interposed contexts) ----------------------


def _world(config):
    """A booted world plus one persistent process context."""
    kernel = boot_world(fastpaths=fastpath_config(config))
    proc = kernel._create_initial_process()
    return kernel, UserContext(kernel, proc)


def _attach(ctx, agents):
    """Attach *agents* bottom-up to the persistent context."""
    for agent in agents:
        agent.attach(ctx)
    return agents


def _null_world(config):
    from repro.toolkit.symbolic import SymbolicSyscall

    kernel, ctx = _world(config)
    _attach(ctx, [SymbolicSyscall()])
    return ctx


def _trace_world(config, transparent_below=0):
    from repro.agents.trace import TraceSymbolicSyscall
    from repro.toolkit.symbolic import SymbolicSyscall

    kernel, ctx = _world(config)
    below = [SymbolicSyscall() for _ in range(transparent_below)]
    agents = _attach(ctx, below + [TraceSymbolicSyscall("/tmp/bench.trace")])
    return ctx, agents[-1]


def _txn_world(config):
    from repro.agents.txn import TxnAgent

    kernel, ctx = _world(config)
    kernel.write_file("/probe.txt", b"x" * 512)
    _attach(ctx, [TxnAgent(scratch_dir="/tmp/bench.txn")])
    return ctx


def _stack_world(config):
    """The evaluation stack: union + txn + monitor, monitor on top."""
    from repro.agents.monitor import MonitorAgent
    from repro.agents.txn import TxnAgent
    from repro.agents.union_dirs import UnionAgent

    kernel, ctx = _world(config)
    kernel.mkdir_p("/m1")
    kernel.write_file("/m1/data.bin", b"y" * 4096)
    kernel.mkdir_p("/u")
    union = UnionAgent()
    union.pset.add_union("/u", ["/m1"])
    _attach(ctx, [union, TxnAgent(scratch_dir="/tmp/bench.txn"),
                  MonitorAgent("/tmp/bench.monitor")])
    fd = ctx.trap(NR_OPEN, "/u/data.bin", 0)
    return ctx, fd


def _vector_world(config):
    """A stock path agent over a 1 MiB file, for vectored reads."""
    from repro.toolkit.pathnames import PathSymbolicSyscall

    kernel, ctx = _world(config)
    kernel.write_file("/vec.dat", b"v" * (1 << 20))
    _attach(ctx, [PathSymbolicSyscall()])
    fd = ctx.trap(NR_OPEN, "/vec.dat", 0)
    return ctx, fd


# -- the rows -------------------------------------------------------------


def micro_rows(calls=2000, configs=CONFIGS):
    """Per-operation costs: (operation, config, usec).

    Each row's worlds are built *lazily*, immediately before that row
    is measured: attaching an agent anywhere bumps the compiled-chain
    epoch, so building every world up front would leave the early
    worlds' chains stale (they self-heal on the next trap, but a row
    whose operation never traps — the raw downcall row — would measure
    the healed-but-never-rebuilt plain path instead of the compiled one).
    """

    def _trap_getpid(config):
        ctx = _null_world(config)
        return lambda: ctx.trap(NR_GETPID)

    def _trace_getpid(config, below=0):
        ctx, _ = _trace_world(config, transparent_below=below)
        return lambda: ctx.trap(NR_GETPID)

    def _downcall(config):
        ctx, trace = _trace_world(config)
        ctx.trap(NR_GETPID)  # prime: builds the compiled tables
        trace._bind(ctx)
        return lambda: trace.syscall_down("getpid")

    def _txn_stat(config):
        ctx = _txn_world(config)
        return lambda: ctx.trap(NR_STAT, "/probe.txt")

    def _stack_read(config):
        ctx, fd = _stack_world(config)

        def op():
            ctx.trap(NR_LSEEK, fd, 0, 0)
            ctx.trap(NR_READ, fd, 512)
        return op

    def _vector_read(config):
        ctx, fd = _vector_world(config)

        def op():
            ctx.trap(NR_LSEEK, fd, 0, 0)
            ctx.trap(NR_READV, fd, (512, 512, 512, 512))
        return op

    def _batch(config):
        ctx = _null_world(config)
        payload = [()] * 32
        if ctx.kernel.fastpaths.compiled:
            return lambda: ctx.trap_many(NR_GETPID, payload)

        def tower_op():
            for _ in range(32):
                ctx.trap(NR_GETPID)
        return tower_op

    operations = (
        ("getpid: transparent agent", calls, _trap_getpid),
        ("getpid: trace agent", calls, _trace_getpid),
        ("getpid: trace over 2 layers", calls,
         lambda c: _trace_getpid(c, below=2)),
        ("downcall: trace getpid forward", calls, _downcall),
        ("stat: txn agent", calls, _txn_stat),
        ("read 512: union+txn+monitor", calls, _stack_read),
        ("readv 4x512: stock path agent", calls, _vector_read),
        # The batch row compares the trap_many kernel entry (one lock
        # acquisition per homogeneous batch) against the tower issuing
        # the same 32 traps one at a time; cost is per *call*.
        ("trap_many: getpid batch of 32", max(64, calls // 16), _batch),
    )
    rows = []
    for op, op_calls, builder in operations:
        best = _interleaved_usec({c: builder(c) for c in configs}, op_calls)
        if op.startswith("trap_many"):
            best = {c: usec / 32.0 for c, usec in best.items()}
        for config in configs:
            rows.append((op, config, best[config]))
    return rows


def ratios(rows):
    """{operation: tower_usec / compiled_usec} from micro rows."""
    by_op = {}
    for op, config, usec in rows:
        by_op.setdefault(op, {})[config] = usec
    return {op: times["tower"] / times["compiled"]
            for op, times in by_op.items()}


# -- pytest entry points (CI perf smoke) ---------------------------------


def test_compiled_dispatch_bound_micros_win(benchmark):
    """The gate on dispatch-bound rows, where the compiled chains do
    all the work: a transparent stack's trap, a trace agent interposed
    over an existing stack (its forwards flatten the sub-tower), and a
    homogeneous batch.  Local margins are 2.0-6x; the gates sit far
    below them so a shared CI host's jitter cannot trip the alarm while
    a real regression (a chain that re-grew a layer walk) still does.
    """
    rows = benchmark.pedantic(lambda: micro_rows(calls=2000),
                              rounds=1, iterations=1)
    by_ratio = ratios(rows)
    benchmark.extra_info.update(
        {op: round(ratio, 2) for op, ratio in by_ratio.items()})
    assert by_ratio["getpid: transparent agent"] >= 1.4, by_ratio
    assert by_ratio["getpid: trace over 2 layers"] >= 1.3, by_ratio
    assert by_ratio["trap_many: getpid batch of 32"] >= 2.0, by_ratio


def test_compiled_beats_tower_on_trace_micros(benchmark):
    """Every trace-agent row — and the full evaluation stack — must at
    least beat the tower.  The solo trace rows are agent-work bound
    (the trace agent's own formatting survives compilation by design),
    so the gate is *beats*, not a fixed multiple; the measured margins
    are recorded in the benchmark info for the snapshot.
    """
    rows = benchmark.pedantic(lambda: micro_rows(calls=2000),
                              rounds=1, iterations=1)
    by_ratio = ratios(rows)
    benchmark.extra_info.update(
        {op: round(ratio, 2) for op, ratio in by_ratio.items()})
    for op in ("getpid: trace agent", "downcall: trace getpid forward",
               "read 512: union+txn+monitor"):
        assert by_ratio[op] > 1.0, (op, by_ratio)


def test_compiled_off_bit_for_bit():
    """With ``compiled`` off the tower configuration must remain
    byte-identical to the seed — and the compiled configuration must
    match them both on the flagship workload's output document.
    """
    from repro.kernel.proc import WEXITSTATUS
    from repro.workloads import format_dissertation

    outputs = {}
    for flags in ("none", "namecache,trap_fast,zero_copy", None):
        world = (boot_world() if flags is None
                 else boot_world(fastpaths=flags))
        format_dissertation.setup(world)
        status = format_dissertation.run(world)
        assert WEXITSTATUS(status) == 0
        outputs[flags] = world.read_file(format_dissertation.OUTPUT)
    assert outputs["none"] == outputs["namecache,trap_fast,zero_copy"]
    assert outputs["none"] == outputs[None]
    assert len(outputs["none"]) > 10_000


def print_tables(calls=2000):
    """Render the micro table with tower/compiled ratios."""
    rows = micro_rows(calls=calls)
    by_ratio = ratios(rows)
    print("Compiled dispatch: per-operation cost by configuration")
    print("%-32s %-10s %10s %8s" % ("operation", "config", "usec", "ratio"))
    for op, config, usec in rows:
        ratio = "%.2fx" % by_ratio[op] if config == "compiled" else ""
        print("%-32s %-10s %10.3f %8s" % (op, config, usec, ratio))


if __name__ == "__main__":
    import sys as _host_sys

    print_tables(calls=500 if "--quick" in _host_sys.argv else 2000)
