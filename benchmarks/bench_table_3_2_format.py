"""Table 3-2: time to format a dissertation under agents.

Paper (VAX 6250, 716 system calls, 81.3 s base):

    agent    seconds  slowdown
    none        81.3
    timex       81.7      0.5%
    trace       84.8      2.5%
    union       86.3      3.5%

Shape targets: slowdown ordering none < timex < trace ~ union, all
small relative to the make workload (Table 3-3), because this workload
is dominated by formatting CPU rather than system calls.
"""

import pytest

from benchmarks.bench_support import prepare_workload
from repro.workloads import format_dissertation

AGENT_NAMES = [None, "timex", "trace", "union"]


def _bench(benchmark, agent_name):
    benchmark.pedantic(
        lambda run: run(),
        setup=lambda: ((prepare_workload(format_dissertation, agent_name),), {}),
        rounds=3,
        iterations=1,
    )


def test_format_none(benchmark):
    _bench(benchmark, None)


def test_format_timex(benchmark):
    _bench(benchmark, "timex")


def test_format_trace(benchmark):
    _bench(benchmark, "trace")


def test_format_union(benchmark):
    _bench(benchmark, "union")


def rows(runs=9):
    """(agent, seconds, slowdown%) rows.

    Times come from interleaved rounds; the slowdown estimate is the
    median of per-round paired ratios against the no-agent run, which
    cancels the slow host drift that dominates these small percentages.
    """
    from repro.bench.timing import paired_slowdowns, time_matrix

    prepares = {
        name or "none": (
            lambda name=name: prepare_workload(format_dissertation, name)
        )
        for name in AGENT_NAMES
    }
    results = time_matrix(prepares, runs=runs)
    slowdowns = paired_slowdowns(results)
    return [
        (name, results[name][0], slowdowns[name])
        for name in results
    ]


if __name__ == "__main__":
    print("Table 3-2: time to format the dissertation")
    print("%-8s %10s %10s" % ("agent", "seconds", "slowdown"))
    for name, seconds, pct in rows():
        print("%-8s %10.3f %9.1f%%" % (name, seconds, pct))
