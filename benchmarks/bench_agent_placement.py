"""Ablation: agent placement — same vs. separate address space.

Paper Section 3.5.1: "it should be stressed that these performance
numbers are highly dependent upon the specific interposition mechanism
used.  In particular, they are strongly shaped by agents residing in
the address spaces of their clients."

This bench quantifies that: the same pass-through agent interposed
in-space (the Mach 2.5 placement the paper measures) and in a separate
agent task reached by message-passing IPC (the placement a ptrace- or
server-based mechanism forces).  Per-intercepted-call cost and the
Table 3-2-style formatting workload are both reported.
"""

from repro.agents.time_symbolic import TimeSymbolic
from repro.bench.timing import usec_per_call
from repro.kernel.sysent import number_of
from repro.kernel.trap import UserContext
from repro.toolkit.remote import SeparateSpaceAgent
from repro.workloads import boot_world

NR_GETPID = number_of("getpid")


def _context(placement):
    kernel = boot_world()
    proc = kernel._create_initial_process()
    ctx = UserContext(kernel, proc)
    agent = None
    if placement == "in-space":
        agent = TimeSymbolic()
        agent.attach(ctx)
    elif placement == "separate-space":
        agent = SeparateSpaceAgent(TimeSymbolic())
        agent.attach(ctx)
    return ctx, agent


def placement_rows(calls=1200):
    """(placement, getpid usec) for each agent placement."""
    rows = []
    for placement in ("no agent", "in-space", "separate-space"):
        ctx, agent = _context(placement)
        rows.append((placement, usec_per_call(lambda: ctx.trap(NR_GETPID), calls)))
        if hasattr(agent, "shutdown"):
            agent.shutdown()
    return rows


def print_table():
    print("Agent placement: per-intercepted-call cost")
    print("%-18s %12s" % ("placement", "getpid usec"))
    for placement, usec in placement_rows():
        print("%-18s %12.2f" % (placement, usec))


def test_separate_space_costs_more(benchmark):
    rows = benchmark.pedantic(placement_rows, rounds=1, iterations=1)
    costs = dict(rows)
    assert costs["no agent"] < costs["in-space"] < costs["separate-space"]
    # The IPC hops dominate: separate-space is several times in-space.
    assert costs["separate-space"] > 2 * costs["in-space"]
    for placement, usec in rows:
        benchmark.extra_info[placement] = round(usec, 3)


if __name__ == "__main__":
    print_table()
