"""Shared machinery for the application-workload benchmarks.

One run = boot a fresh world, set up the workload, run it either bare
or under an agent via the agent loader path.  Booting and setup are
excluded from timing (the paper times the application run itself).
"""

from repro.kernel.proc import WEXITSTATUS
from repro.toolkit import run_under_agent
from repro.workloads import boot_world


def make_agent(name, workload=None):
    """A fresh agent instance for one run, by loader name (or None)."""
    from repro.agents import AGENTS, load_all

    load_all()
    if name is None:
        return None
    if name == "union":
        # The paper's motivating configuration: the union covers the
        # directory the workload actually runs in (source and object
        # directories appearing as one), so pathname resolution really
        # goes through the union machinery.
        agent = AGENTS["union"]()
        agent.pset.add_union(
            _workload_dir(workload), [_workload_dir(workload), "/usr/tmp"]
        )
        return agent
    if name == "trace":
        return AGENTS["trace"]("/tmp/trace.out")
    if name == "timex":
        agent = AGENTS["timex"]()
        agent.offset = 3600
        return agent
    return AGENTS[name]()


def _workload_dir(workload):
    import repro.workloads.afs_bench as afs
    import repro.workloads.format_dissertation as fmt
    import repro.workloads.make_programs as mk

    if workload is fmt:
        return "/home/mbj/diss"
    if workload is mk:
        return mk.SRC_DIR
    if workload is afs:
        return afs.BASE
    return "/view"


def prepare_workload(workload, agent_name):
    """Boot + set up; return a zero-argument callable performing one run."""
    kernel = boot_world()
    workload.setup(kernel)

    def run():
        if agent_name is None:
            status = workload.run(kernel)
        else:
            agent = make_agent(agent_name, workload)
            path, argv = workload_command(workload)
            status = run_under_agent(kernel, agent, path, argv)
        assert WEXITSTATUS(status) == 0, "workload failed (%r)" % status
        return kernel

    return run


def workload_command(workload):
    """The (path, argv) a workload's run() executes, for agent runs."""
    import repro.workloads.afs_bench as afs
    import repro.workloads.format_dissertation as fmt
    import repro.workloads.make_programs as mk

    if workload is fmt:
        return "/usr/bin/scribe", ["scribe", fmt.MANUSCRIPT, fmt.OUTPUT]
    if workload is mk:
        return "/bin/sh", ["sh", "-c", "cd %s; make" % mk.SRC_DIR]
    if workload is afs:
        return "/bin/sh", ["sh", afs.BASE + "/run_andrew.sh"]
    raise ValueError("unknown workload %r" % (workload,))
