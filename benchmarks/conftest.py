"""Shared fixtures for the paper-table benchmarks."""

import pytest

from repro.agents import load_all


@pytest.fixture(scope="session", autouse=True)
def _agents_loaded():
    load_all()
