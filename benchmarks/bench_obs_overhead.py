"""The observability layer's own pay-per-use claim, measured.

The paper's central quantitative claim is that interposition costs
nothing on calls nobody intercepts.  The observability subsystem
(``repro.obs``) makes the same promise about itself: with ``kernel.obs``
unset, every instrumentation site in the trap spine is one attribute
test.  This benchmark holds it to that:

* **Macro**: the format-dissertation workload (Table 3-2's baseline)
  run with observability disabled, with metrics only, with full
  firehose ktrace+metrics, and with causal span assembly on top —
  interleaved rounds, paired slowdowns.  "Disabled" must sit within
  noise of the seed baseline (the acceptance bar is 3%); the enabled
  configurations report what observation costs.
* **Micro**: the cost of one uninterposed getpid trap under the same
  configurations.
* **Attribution**: the in-band per-layer latency table, checked against
  the ordering ``bench_ablation_layers`` measures from the outside, and
  demonstrated for the trace and union agents on the format workload.
"""

from repro import obs
from repro.bench.timing import paired_slowdowns, time_matrix, usec_per_call
from repro.kernel.sysent import bsd_numbers, number_of
from repro.kernel.trap import UserContext
from repro.obs.export import layer_rows
from repro.workloads import boot_world, format_dissertation

NR_GETPID = number_of("getpid")

#: the observability configurations under test, cheapest first
CONFIGS = ("disabled", "profile", "metrics", "ktrace+metrics", "spans")


def _enable_for(kernel, config):
    """Apply one benchmark configuration to a freshly booted kernel."""
    if config == "metrics":
        obs.enable(kernel)
    elif config == "ktrace+metrics":
        obs.enable(kernel, ktrace_capacity=65536, trace_all=True)
    elif config == "spans":
        # Causal span assembly on top of metrics: every event is built
        # (the assembler is a consumer) and folded into the trace.
        obs.enable(kernel, spans=True)
    elif config == "profile":
        from repro.obs.profile import enable_profile

        enable_profile(kernel)


def _prepare(config):
    """One prepared format-dissertation run under *config*."""
    from repro.kernel.proc import WEXITSTATUS

    kernel = boot_world()
    format_dissertation.setup(kernel)
    _enable_for(kernel, config)

    def run():
        status = format_dissertation.run(kernel)
        assert WEXITSTATUS(status) == 0, "workload failed (%r)" % status
        return kernel

    return run


def macro_rows(runs=9):
    """(config, seconds, slowdown%) for the format workload."""
    prepares = {
        config: (lambda config=config: _prepare(config))
        for config in CONFIGS
    }
    results = time_matrix(prepares, runs=runs)
    slowdowns = paired_slowdowns(results, base_name="disabled")
    return [(config, results[config][0], slowdowns[config])
            for config in CONFIGS]


def micro_rows(calls=2000):
    """(config, usec) for one uninterposed getpid trap."""
    rows = []
    for config in CONFIGS:
        kernel = boot_world()
        _enable_for(kernel, config)
        proc = kernel._create_initial_process()
        ctx = UserContext(kernel, proc)
        rows.append((config, usec_per_call(lambda: ctx.trap(NR_GETPID),
                                           calls)))
    return rows


def attribution_rows(calls=800):
    """In-band per-layer cost rows from pass-through agents.

    Mirrors ``bench_ablation_layers.layer_cost_rows`` but measured from
    the *inside*: each pass-through agent runs getpid traps with metrics
    enabled, and the row reports the registry's mean handler time for
    that agent's layer.  The means must order the same way the external
    measurement does (numeric < symbolic < pathname+descriptor).
    """
    from repro.agents.time_symbolic import TimeSymbolic
    from repro.toolkit.numeric import NumericSyscall
    from repro.toolkit.pathnames import PathSymbolicSyscall

    class _NumericPassthrough(NumericSyscall):
        """Layer-0 pass-through for the attribution measurement."""

        def init(self, agentargv):
            """Interpose on every BSD call, taking the default action."""
            self.register_interest_many(bsd_numbers())

    rows = []
    for factory in (_NumericPassthrough, TimeSymbolic, PathSymbolicSyscall):
        kernel = boot_world()
        registry = obs.enable(kernel).metrics
        proc = kernel._create_initial_process()
        ctx = UserContext(kernel, proc)
        factory().attach(ctx)
        for _ in range(calls):
            ctx.trap(NR_GETPID)
        hist = registry.histogram(("layer.usec", factory.OBS_LAYER))
        rows.append((factory.OBS_LAYER, hist.count, hist.mean()))
    return rows


def agent_attribution_rows():
    """Per-layer attribution for the trace and union agents on the
    format workload — the runtime version of Table 3-2's agent column."""
    from benchmarks.bench_support import make_agent, workload_command
    from repro.kernel.proc import WEXITSTATUS
    from repro.toolkit import run_under_agent

    out = []
    for name in ("trace", "union"):
        kernel = boot_world()
        format_dissertation.setup(kernel)
        registry = obs.enable(kernel).metrics
        agent = make_agent(name, format_dissertation)
        path, argv = workload_command(format_dissertation)
        status = run_under_agent(kernel, agent, path, argv)
        assert WEXITSTATUS(status) == 0, status
        for layer, count, mean, total in layer_rows(registry):
            out.append((name, layer, count, mean, total))
    return out


def procfs_read_rows(calls=400):
    """(node, usec) per open+read+close of a /proc file, via the trap
    interface — the latency an in-world ``top`` iteration pays per
    sample."""
    from repro.kernel.ofile import O_RDONLY
    from repro.kernel.procfs import mount_procfs

    nr_open, nr_read, nr_close = (number_of(n)
                                  for n in ("open", "read", "close"))
    kernel = boot_world()
    mount_procfs(kernel, tools=False)
    proc = kernel._create_initial_process()
    ctx = UserContext(kernel, proc)
    rows = []
    for path in ("/proc/uptime", "/proc/kernel/stats"):
        def one_read(path=path):
            fd = ctx.trap(nr_open, path, O_RDONLY, 0)
            ctx.trap(nr_read, fd, 4096)
            ctx.trap(nr_close, fd)

        rows.append((path, usec_per_call(one_read, calls)))
    return rows


def watch_eval_rows(rules=8, evals=200):
    """(label, usec) per watch-set evaluation over a live registry."""
    from repro.bench.timing import usec_per_call as _upc
    from repro.obs.watch import WatchSet

    kernel = boot_world()
    registry = obs.enable(kernel).metrics
    proc = kernel._create_initial_process()
    ctx = UserContext(kernel, proc)
    for _ in range(200):  # populate the counters the rules read
        ctx.trap(NR_GETPID)
    watches = WatchSet.random(1993, count=rules)
    watches.attach(kernel)

    def one_eval():
        watches._next_eval = 0  # force evaluation on the next check
        watches.maybe_evaluate(kernel, proc)

    usec = _upc(one_eval, evals)
    watches.detach()
    return [("%d fuzzed rules" % rules, usec)]


# -- pytest entry points (CI smoke uses --quick semantics via rounds) ----


def test_disabled_is_free(benchmark):
    """Micro pay-per-use: a disabled-obs trap costs within noise of seed."""
    rows = dict(benchmark.pedantic(micro_rows, rounds=1, iterations=1))
    # The disabled configuration must not pay for the others' features:
    # full tracing must cost measurably more than the single None test.
    assert rows["disabled"] <= rows["ktrace+metrics"]
    for config, usec in rows.items():
        benchmark.extra_info[config] = round(usec, 3)


def test_spans_pay_per_use(benchmark):
    """Span assembly costs only when installed.

    The disabled configuration runs the exact same trap path as before
    the span layer existed (one ``is None`` test), so it must not be
    measurably slower than the spans configuration is — the cost of
    assembling a causal trace lands only on kernels that asked for it.
    """
    rows = dict(benchmark.pedantic(micro_rows, rounds=1, iterations=1))
    assert rows["disabled"] <= rows["spans"]
    # And spans really do cost more than bare metrics (every event is
    # built and folded into the trace): if this ever fails, the spans
    # configuration silently stopped assembling anything.
    assert rows["metrics"] <= rows["spans"] * 1.5
    for config, usec in rows.items():
        benchmark.extra_info[config] = round(usec, 3)


def test_procfs_unmounted_is_free(benchmark):
    """The procfs pay-per-use gate: /proc adds no trap-spine hook, so
    uninterposed traps must cost the same whether or not a procfs is
    mounted (both directions, with the usual jitter headroom)."""
    from repro.kernel.procfs import mount_procfs

    def both():
        rows = {}
        for config in ("unmounted", "mounted"):
            kernel = boot_world()
            if config == "mounted":
                mount_procfs(kernel, tools=False)
            proc = kernel._create_initial_process()
            ctx = UserContext(kernel, proc)
            rows[config] = usec_per_call(lambda: ctx.trap(NR_GETPID), 2000)
        return rows

    rows = benchmark.pedantic(both, rounds=1, iterations=1)
    assert rows["unmounted"] <= rows["mounted"] * 1.25
    assert rows["mounted"] <= rows["unmounted"] * 1.25
    for config, usec in rows.items():
        benchmark.extra_info[config] = round(usec, 3)


def test_profiler_within_record_budget(benchmark):
    """The profiler overhead gate: sampling a trap must cost no more
    than recording one does (the recorder's own gate allows +12%-class
    overhead on the macro workload; the profiler does strictly less
    work per trap — integer division plus an occasional dict bump
    versus a turn token and a log append)."""
    from repro.obs.recorder import Recorder

    def both():
        rows = {}
        for config in ("disabled", "profile", "record"):
            kernel = boot_world()
            if config == "profile":
                _enable_for(kernel, "profile")
            elif config == "record":
                Recorder(mode="record").attach(kernel)
            proc = kernel._create_initial_process()
            ctx = UserContext(kernel, proc)
            rows[config] = usec_per_call(lambda: ctx.trap(NR_GETPID), 2000)
        return rows

    rows = benchmark.pedantic(both, rounds=1, iterations=1)
    assert rows["profile"] <= rows["record"] * 1.25
    assert rows["disabled"] <= rows["profile"] * 1.25
    for config, usec in rows.items():
        benchmark.extra_info[config] = round(usec, 3)


def test_attribution_matches_ablation_ordering(benchmark):
    """In-band layer means must order as the external ablation does.

    The separations are small (the kernel call dominates a pass-through
    handler), so adjacent layers get the same jitter headroom the
    ablation benchmark's own assertion allows.
    """
    rows = benchmark.pedantic(lambda: attribution_rows(calls=2000),
                              rounds=1, iterations=1)
    means = [mean for _, _, mean in rows]
    labels = [layer for layer, _, _ in rows]
    assert labels == ["numeric", "symbolic", "pathname+descriptor"]
    assert means[0] < means[1] * 1.15
    assert means[1] < means[2] * 1.15
    assert means[0] < means[2] * 1.1
    for layer, count, mean in rows:
        benchmark.extra_info[layer] = {"calls": count, "mean": round(mean, 3)}


def print_tables(runs=9):
    """Render every table of this benchmark to stdout."""
    print("Observability overhead: format-dissertation workload")
    print("%-16s %10s %10s" % ("config", "seconds", "slowdown"))
    for config, seconds, pct in macro_rows(runs=runs):
        print("%-16s %10.3f %9.1f%%" % (config, seconds, pct))
    print()
    print("Micro: one uninterposed getpid trap")
    for config, usec in micro_rows():
        print("%-16s %10.3f usec" % (config, usec))
    print()
    print("Micro: one /proc open+read+close through the trap interface")
    for path, usec in procfs_read_rows():
        print("%-24s %10.3f usec" % (path, usec))
    print()
    print("Micro: one watch-set evaluation over a live registry")
    for label, usec in watch_eval_rows():
        print("%-24s %10.3f usec" % (label, usec))
    print()
    print("In-band layer attribution (pass-through agents, getpid)")
    for layer, count, mean in attribution_rows():
        print("%-24s %6d calls %10.2f usec mean" % (layer, count, mean))
    print()
    print("Agent attribution on format workload (trace, union)")
    for name, layer, count, mean, total in agent_attribution_rows():
        print("%-6s %-24s %6d calls %10.2f usec mean %12.0f total"
              % (name, layer, count, mean, total))


if __name__ == "__main__":
    import sys as _host_sys

    print_tables(runs=3 if "--quick" in _host_sys.argv else 9)
