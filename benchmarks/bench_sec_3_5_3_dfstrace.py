"""Section 3.5.3: agent-based vs kernel-based DFSTrace.

Paper findings on the AFS filesystem benchmarks:

* kernel-based DFSTrace (default mode): 3.0% slowdown;
  agent-based implementation: 64% slowdown — the best monolithic
  implementation of a facility needing system resources always beats
  the best interposition-based one;
* code size: 1627 statements (kernel+user collection code) vs 1584
  (agent) — agents can be as small as the equivalent monolithic change;
* the kernel implementation modified 26 kernel files (plus four
  machine-dependent files per machine type); the agent modified none.

Shape targets: kernel-based slowdown << agent-based slowdown; statement
counts within the same ballpark; zero kernel modifications for the
agent; and the two implementations produce equivalent trace records.
"""

from repro.bench.timing import slowdown, time_matrix
from repro.kernel import dfstrace as kdfs
from repro.kernel.proc import WEXITSTATUS
from repro.toolkit import run_under_agent
from repro.workloads import afs_bench, boot_world


def _prepare(mode):
    kernel = boot_world()
    afs_bench.setup(kernel)

    def run():
        if mode == "kernel":
            kdfs.enable(kernel)
        if mode == "agent":
            from repro.agents.dfs_trace import DfsTraceAgent

            agent = DfsTraceAgent("/tmp/dfstrace.log")
            status = run_under_agent(
                kernel, agent, "/bin/sh", ["sh", afs_bench.BASE + "/run_andrew.sh"]
            )
        else:
            status = afs_bench.run(kernel)
        assert WEXITSTATUS(status) == 0
        if mode == "kernel":
            kdfs.disable(kernel)
        return kernel

    return run


def timing_rows(runs=7):
    from repro.bench.timing import paired_slowdowns

    results = time_matrix(
        {mode: (lambda mode=mode: _prepare(mode)) for mode in
         ("none", "kernel", "agent")},
        runs=runs,
    )
    slowdowns = paired_slowdowns(results)
    return [
        (mode, results[mode][0], slowdowns[mode])
        for mode in results
    ]


def size_rows():
    """Statement counts for the two implementations."""
    import repro.agents.dfs_trace as agent_mod
    import repro.kernel.dfstrace as kernel_mod
    from repro.bench.loc import module_statements

    # The kernel implementation = the dfstrace module plus the hook
    # compiled into the dispatch path (a handful of statements in
    # kernel.py); the agent implementation = the agent module.
    kernel_size = module_statements(kernel_mod) + 3
    agent_size = module_statements(agent_mod)
    return [("kernel-based", kernel_size), ("agent-based", agent_size)]


def kernel_files_modified():
    """How many kernel source files each implementation touches."""
    return [("kernel-based", 2), ("agent-based", 0)]


def record_equivalence():
    """Run both collectors over the same workload; compare record streams."""
    from repro.agents.dfs_trace import DfsTraceAgent

    kernel = boot_world()
    afs_bench.setup(kernel)
    collector = kdfs.enable(kernel)
    agent = DfsTraceAgent("/tmp/dfstrace.log")
    status = run_under_agent(
        kernel, agent, "/bin/sh", ["sh", afs_bench.BASE + "/run_andrew.sh"]
    )
    assert WEXITSTATUS(status) == 0
    kdfs.disable(kernel)
    agent_records = agent.records
    kernel_records = [
        r for r in collector.records
        # The kernel also saw the agent's own log-file traffic and the
        # toolkit's exec machinery; compare on the client's operations.
        if not r.detail.startswith("/tmp/dfstrace.log")
    ]
    return kernel_records, agent_records


def print_tables():
    print("Section 3.5.3: DFSTrace comparison (Andrew-style benchmark)")
    print("%-14s %10s %10s" % ("mode", "seconds", "slowdown"))
    for mode, seconds, pct in timing_rows():
        print("%-14s %10.3f %9.1f%%" % (mode, seconds, pct))
    print()
    for name, statements in size_rows():
        print("%-14s %6d statements" % (name, statements))
    for name, files in kernel_files_modified():
        print("%-14s %6d kernel files modified" % (name, files))


def test_dfstrace_slowdowns(benchmark):
    table = benchmark.pedantic(lambda: timing_rows(runs=3), rounds=1, iterations=1)
    by_mode = {row[0]: row for row in table}
    # The monolithic implementation is much cheaper than the agent.
    assert by_mode["kernel"][2] < by_mode["agent"][2]
    assert by_mode["agent"][2] > 10.0  # agent slowdown is substantial
    for mode, seconds, pct in table:
        benchmark.extra_info[mode] = {"seconds": round(seconds, 4),
                                      "slowdown_pct": round(pct, 1)}


def test_dfstrace_sizes(benchmark):
    table = benchmark(size_rows)
    sizes = dict(table)
    # Same ballpark: within a factor of two of each other (paper: ~3%).
    assert 0.5 < sizes["agent-based"] / sizes["kernel-based"] < 2.0
    assert dict(kernel_files_modified())["agent-based"] == 0


if __name__ == "__main__":
    print_tables()
