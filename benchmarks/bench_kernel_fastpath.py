"""The kernel fast paths measured: name cache, trap dispatch, zero-copy.

PR 2 adds three flag-gated fast paths to the simulated kernel (see
:mod:`repro.kernel.fastpath`): the 4.3BSD directory name lookup cache,
precomputed trap dispatch for uninterposed calls, and a zero-copy read
path.  This benchmark holds them to the paper's own measurement
standard, and to the transparency bar interposition itself is held to:

* **Macro**: each evaluation workload (format-dissertation, make-8,
  AFS-like) timed per flag configuration — interleaved rounds, paired
  per-round slowdowns, minimum over rounds (the protocol of
  ``bench_obs_overhead``).  The honest caveat, recorded in
  ``docs/PERFORMANCE.md``: the format workload is ~98% user-mode
  formatter CPU by design, so whole-workload wins are bounded by
  Amdahl's law no matter how much faster the kernel paths get.
* **Micro**: the per-operation costs the fast paths actually target —
  one uninterposed getpid trap (trap_fast), one four-component stat
  (namecache), one 1 MiB read (zero_copy).
* **In-band**: the name cache's own hit/miss counters after a format
  run, cross-checked against the host-side timings.

The ``off`` configuration is the seed kernel: every fast path disabled,
byte-for-byte identical behaviour (``tests/test_fastpath_equivalence``
checks that claim; this module checks the prices).
"""

from repro.bench.timing import paired_slowdowns, time_matrix, usec_per_call
from repro.kernel.fastpath import FastPathConfig
from repro.kernel.sysent import number_of
from repro.kernel.trap import UserContext
from repro.workloads import afs_bench, boot_world, format_dissertation, make_programs

NR_GETPID = number_of("getpid")
NR_STAT = number_of("stat")

#: the flag configurations under test; "off" is the seed kernel
CONFIGS = ("off", "namecache", "trap_fast", "zero_copy", "all")

#: a path deep enough to make per-component costs visible
DEEP_PATH = "/usr/lib/scribe/report.fmt"

WORKLOADS = {
    "format": format_dissertation,
    "make": make_programs,
    "afs": afs_bench,
}


def fastpath_config(name):
    """The :class:`FastPathConfig` for one benchmark configuration.

    ``all`` opts into the stdio readahead as well — the benchmark wants
    the full fast-path story, while the kernel default keeps readahead
    off so workload trap counts match the seed.
    """
    if name == "off":
        return FastPathConfig.none()
    if name == "all":
        return FastPathConfig.all_on()
    return FastPathConfig.only(name)


def _prepare(workload, config):
    """One prepared run of *workload* under flag configuration *config*."""
    from repro.kernel.proc import WEXITSTATUS

    module = WORKLOADS[workload]
    kernel = boot_world(fastpaths=fastpath_config(config))
    module.setup(kernel)

    def run():
        status = module.run(kernel)
        assert WEXITSTATUS(status) == 0, "workload failed (%r)" % status
        return kernel

    return run


def macro_rows(workload="format", runs=9, configs=CONFIGS):
    """(config, min_seconds, slowdown%-vs-off) for one workload."""
    prepares = {
        config: (lambda config=config: _prepare(workload, config))
        for config in configs
    }
    results = time_matrix(prepares, runs=runs)
    slowdowns = paired_slowdowns(results, base_name="off")
    return [(config, results[config][0], slowdowns[config])
            for config in configs]


def _micro_world(config):
    """A booted world plus a process context under *config*."""
    kernel = boot_world(fastpaths=fastpath_config(config))
    kernel.write_file("/tmp/big.dat", b"x" * (1 << 20))
    proc = kernel._create_initial_process()
    return kernel, UserContext(kernel, proc)


def _interleaved_usec(fns, calls, rounds=7):
    """Per-call microseconds for each named callable, interleaved.

    The micro equivalent of ``time_matrix``: one warm-up pass, then each
    round times every configuration back to back and the per-config
    estimate is the best round.  Sequential measurement would let host
    drift (CPU frequency, the allocator's large-block strategy) bias
    whichever configuration happened to run first.
    """
    import time

    for fn in fns.values():
        for _ in range(calls // 10 + 1):
            fn()
    best = {}
    for _ in range(rounds):
        for name, fn in fns.items():
            start = time.perf_counter()
            for _ in range(calls):
                fn()
            usec = (time.perf_counter() - start) / calls * 1_000_000
            if name not in best or usec < best[name]:
                best[name] = usec
    return best


def micro_rows(calls=2000, configs=CONFIGS):
    """Per-operation costs: (operation, config, usec)."""
    from repro.programs.libc import O_RDONLY, Sys

    worlds = {config: _micro_world(config) for config in configs}

    def _read_1m(sys):
        def read_1m():
            fd = sys.open("/tmp/big.dat", O_RDONLY)
            data = sys.read(fd, 1 << 20)
            sys.close(fd)
            assert len(data) == 1 << 20
        return read_1m

    operations = (
        ("getpid trap", calls,
         {config: (lambda ctx=ctx: ctx.trap(NR_GETPID))
          for config, (kernel, ctx) in worlds.items()}),
        ("stat %s" % DEEP_PATH, calls,
         {config: (lambda ctx=ctx: ctx.trap(NR_STAT, DEEP_PATH))
          for config, (kernel, ctx) in worlds.items()}),
        ("open+read 1MiB+close", max(50, calls // 20),
         {config: _read_1m(Sys(ctx))
          for config, (kernel, ctx) in worlds.items()}),
    )
    rows = []
    for op, op_calls, fns in operations:
        best = _interleaved_usec(fns, op_calls)
        for config in configs:
            rows.append((op, config, best[config]))
    return rows


def cache_stats_after(workload="format", config="all"):
    """The name cache's own counters after one workload run."""
    kernel = _prepare(workload, config)()
    cache = kernel.namecache
    stats = cache.stats() if cache is not None else {"enabled": False}
    stats["trap_total"] = kernel.trap_total
    stats["trap_fast_total"] = kernel.trap_fast_total
    return stats


# -- pytest entry points (CI perf smoke) ---------------------------------


def test_cache_on_not_slower_format(benchmark):
    """The gate the CI perf-smoke job enforces: with every fast path on,
    the format workload must not be slower than the seed configuration.

    Paired per-round ratios over nine interleaved rounds, with a 6%
    allowance: this 0.2-second CPU-dominated workload jitters ±5% on a
    shared CI host even comparing a configuration against itself, so
    the gate is sized to catch a systematic regression (a cache that
    costs more than it saves), not round-to-round noise.  The
    per-operation gate below is the tight one.
    """
    rows = benchmark.pedantic(
        lambda: macro_rows(workload="format", runs=9,
                           configs=("off", "namecache", "all")),
        rounds=1, iterations=1)
    by_config = {config: (seconds, pct) for config, seconds, pct in rows}
    for config in ("namecache", "all"):
        seconds, pct = by_config[config]
        benchmark.extra_info[config] = {
            "seconds": round(seconds, 4), "slowdown_pct": round(pct, 2)}
        assert pct <= 6.0, (
            "%s configuration slower than seed: %+.1f%%" % (config, pct))


def test_micro_fast_paths_win(benchmark):
    """The per-operation fast paths must beat the seed configuration.

    The getpid trap (fast dispatch, ~20% locally) and the 1 MiB read
    (zero-copy, ~50%) have margins far above host jitter and are gated
    strictly.  The deep stat's win is a few percent (the walk is
    permission-check bound once lookups are dict hits either way), so it
    only has to stay within 2% of seed — the gate catches a regressed
    cache, not measurement noise.
    """
    rows = benchmark.pedantic(
        lambda: micro_rows(calls=2000, configs=("off", "all")),
        rounds=1, iterations=1)
    by_op = {}
    for op, config, usec in rows:
        by_op.setdefault(op.split()[0], {})[config] = usec
    for op, times in by_op.items():
        benchmark.extra_info[op] = {
            config: round(usec, 3) for config, usec in times.items()}
    assert by_op["getpid"]["all"] < by_op["getpid"]["off"], by_op["getpid"]
    assert by_op["open+read"]["all"] < by_op["open+read"]["off"] * 0.8, (
        by_op["open+read"])
    assert by_op["stat"]["all"] < by_op["stat"]["off"] * 1.02, by_op["stat"]


def test_cache_hit_rate_on_format():
    """The format workload's lookups must mostly hit after warm-up."""
    stats = cache_stats_after("format", "all")
    assert stats["hits"] > 0
    assert stats["hit_rate"] > 0.5, stats
    assert stats["trap_fast_total"] > 0


def print_tables(runs=9):
    """Render every table of this benchmark to stdout."""
    for workload in WORKLOADS:
        print("Fast paths: %s workload" % workload)
        print("%-12s %10s %10s" % ("config", "seconds", "vs off"))
        for config, seconds, pct in macro_rows(workload, runs=runs):
            print("%-12s %10.3f %9.1f%%" % (config, seconds, pct))
        print()
    print("Micro: per-operation cost by configuration")
    print("%-28s %-12s %10s" % ("operation", "config", "usec"))
    for op, config, usec in micro_rows():
        print("%-28s %-12s %10.3f" % (op, config, usec))
    print()
    print("Name cache counters after one format run (config=all)")
    for key, value in sorted(cache_stats_after().items()):
        print("  %-18s %s" % (key, value))


if __name__ == "__main__":
    import sys as _host_sys

    print_tables(runs=3 if "--quick" in _host_sys.argv else 9)
