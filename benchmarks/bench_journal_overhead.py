"""The write-ahead journal's pay-per-use claim, measured.

Crash consistency follows the repo's standing discipline: with
``journal=False`` (the default) every journal seam in the UFS mutation
paths is one ``is None`` attribute test, and the volume runs exactly
the seed instructions — ``tests/test_journal.py`` pins the bit-for-bit
event-stream equality; this benchmark holds the *time* side of the
claim:

* **Micro**: one link+unlink metadata pair straight at the filesystem
  layer, journal off versus on — the raw per-operation price of intent
  records and the commit mark, paid only where bought.
* **Macro**: the format-dissertation workload on a journaled versus a
  seed machine, interleaved rounds and paired slowdowns; "disabled"
  is the seed baseline by construction, and "journaled" must stay a
  modest constant factor away on a real (metadata-light) workload.
"""

from repro.bench.timing import paired_slowdowns, time_matrix, usec_per_call
from repro.kernel import Kernel
from repro.kernel.proc import WEXITSTATUS
from repro.workloads import boot_world, format_dissertation

#: the journal configurations under test, cheapest first
CONFIGS = ("disabled", "journaled")


def _make_kernel(config):
    return boot_world(journal=(config == "journaled"))


def micro_metadata_rows(calls=2000):
    """(config, usec) for one link+unlink pair at the filesystem layer."""
    rows = []
    for config in CONFIGS:
        kernel = Kernel(journal=(config == "journaled"))
        fs = kernel.rootfs
        node = fs.create_file(0o644, kernel._host.cred)
        fs.link(fs.root, "pin", node)  # keep the inode alive throughout

        def pair(fs=fs, node=node):
            fs.link(fs.root, "bench", node)
            fs.unlink(fs.root, "bench", node)

        rows.append((config, usec_per_call(pair, calls)))
    return rows


def _prepare(config):
    """One prepared format-dissertation run under *config*."""
    kernel = _make_kernel(config)
    format_dissertation.setup(kernel)

    def run():
        status = format_dissertation.run(kernel)
        assert WEXITSTATUS(status) == 0, "workload failed (%r)" % status
        return kernel

    return run


def macro_rows(runs=9):
    """(config, seconds, slowdown%) for the format workload."""
    prepares = {
        config: (lambda config=config: _prepare(config))
        for config in CONFIGS
    }
    results = time_matrix(prepares, runs=runs)
    slowdowns = paired_slowdowns(results, base_name="disabled")
    return [(config, results[config][0], slowdowns[config])
            for config in CONFIGS]


# -- pytest entry points (the CI gate) -----------------------------------


def test_journal_costs_only_where_bought(benchmark):
    """The pay-per-use gate: the journaled micro path may pay (intent
    records are real work), but the disabled path must stay at seed
    cost — cheaper than the journaled one, within generous noise."""
    rows = dict(benchmark.pedantic(micro_metadata_rows,
                                   rounds=1, iterations=1))
    assert rows["disabled"] <= rows["journaled"] * 1.25
    # And the journal must stay a bounded constant factor, not a cliff.
    assert rows["journaled"] <= rows["disabled"] * 5.0
    for config, usec in rows.items():
        benchmark.extra_info[config] = round(usec, 3)


def test_macro_workload_overhead_is_modest(benchmark):
    """A metadata-light real workload must barely notice the journal."""
    rows = benchmark.pedantic(lambda: macro_rows(runs=3),
                              rounds=1, iterations=1)
    table = {config: (seconds, pct) for config, seconds, pct in rows}
    # Paired slowdown of the journaled run over the seed baseline.
    assert table["journaled"][1] < 50.0
    for config, (seconds, pct) in table.items():
        benchmark.extra_info[config] = {"seconds": round(seconds, 3),
                                        "slowdown_pct": round(pct, 1)}


def print_tables(runs=9):
    """Render every table of this benchmark to stdout."""
    print("Journal overhead: format-dissertation workload")
    print("%-16s %10s %10s" % ("config", "seconds", "slowdown"))
    for config, seconds, pct in macro_rows(runs=runs):
        print("%-16s %10.3f %9.1f%%" % (config, seconds, pct))
    print()
    print("Micro: one link+unlink pair at the filesystem layer")
    for config, usec in micro_metadata_rows():
        print("%-16s %10.3f usec" % (config, usec))


if __name__ == "__main__":
    import sys as _host_sys
    print_tables(runs=3 if "--quick" in _host_sys.argv else 9)
