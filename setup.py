"""Packaging metadata.

Kept in setup.py (rather than PEP 621 pyproject metadata) so that
``pip install -e .`` works in offline environments without the ``wheel``
package: pip then uses the legacy ``setup.py develop`` path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Interposition Agents: an object-oriented toolkit for transparently "
        "interposing user code at the system interface (SOSP '93 reproduction)"
    ),
    long_description=open("README.md").read() if __import__("os").path.exists("README.md") else "",
    long_description_content_type="text/markdown",
    python_requires=">=3.9",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
    entry_points={
        "console_scripts": ["repro-lint=repro.lint.cli:main"],
    },
    keywords="operating-systems interposition system-calls 4.3BSD mach",
)
